//! Property-based tests of the synthesis pipeline itself: SFGL consistency,
//! scale-down monotonicity, and clone validity across reduction factors and
//! seeds.

use benchsynth::compiler::{compile, CompileOptions, OptLevel};
use benchsynth::ir::build::FunctionBuilder;
use benchsynth::ir::hll::{BinOp, Expr, HllGlobal, HllProgram};
use benchsynth::profile::{profile_program, ProfileConfig, StatisticalProfile};
use benchsynth::synth::{scale_down, synthesize, SynthesisConfig};
use proptest::prelude::*;

fn profile_of(outer: i64, inner: i64, stride: i64) -> StatisticalProfile {
    let mut p = HllProgram::new();
    p.add_global(HllGlobal::zeroed("data", 2048));
    let mut f = FunctionBuilder::new("main");
    f.for_loop("i", Expr::int(0), Expr::int(outer), |b| {
        b.for_loop("j", Expr::int(0), Expr::int(inner), |inner_b| {
            inner_b.assign_index(
                "data",
                Expr::bin(
                    BinOp::Rem,
                    Expr::mul(Expr::add(Expr::var("i"), Expr::var("j")), Expr::int(stride)),
                    Expr::int(2048),
                ),
                Expr::var("j"),
            );
            inner_b.assign_var(
                "s",
                Expr::add(Expr::var("s"), Expr::index("data", Expr::var("j"))),
            );
        });
    });
    f.ret(Some(Expr::var("s")));
    p.add_function(f.finish());
    let compiled = compile(&p, &CompileOptions::portable(OptLevel::O0)).unwrap();
    profile_program(&compiled.program, "prop", &ProfileConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn profiles_are_internally_consistent(outer in 2i64..12, inner in 2i64..20, stride in 1i64..9) {
        let profile = profile_of(outer, inner, stride);
        prop_assert!(profile.sfgl.validate().is_empty(), "{:?}", profile.sfgl.validate());
        prop_assert!(profile.mix.total() == profile.dynamic_instructions);
        prop_assert_eq!(profile.sfgl.loops.len(), 2);
    }

    #[test]
    fn scale_down_is_monotone_in_r(outer in 2i64..10, inner in 2i64..16, r1 in 1u64..20, r2 in 20u64..400) {
        let profile = profile_of(outer, inner, 3);
        let small_r = scale_down(&profile.sfgl, r1);
        let big_r = scale_down(&profile.sfgl, r2);
        for (node, count) in &big_r.sfgl.nodes {
            prop_assert!(*count <= small_r.sfgl.count(*node) || small_r.sfgl.count(*node) == 0);
        }
        let total_small: u64 = small_r.sfgl.nodes.values().sum();
        let total_big: u64 = big_r.sfgl.nodes.values().sum();
        prop_assert!(total_big <= total_small);
    }

    #[test]
    fn synthesized_clones_always_compile_and_terminate(
        outer in 2i64..10,
        inner in 2i64..16,
        r in 1u64..64,
        seed in 0u64..1000,
    ) {
        let profile = profile_of(outer, inner, 5);
        let mut config = SynthesisConfig::with_reduction(r);
        config.seed = seed;
        let clone = synthesize(&profile, &config);
        for level in [OptLevel::O0, OptLevel::O3] {
            let compiled = compile(&clone.hll, &CompileOptions::portable(level));
            prop_assert!(compiled.is_ok(), "clone failed to compile at {level}");
            let program = compiled.unwrap().program;
            prop_assert!(program.validate().is_empty());
            let out = benchsynth::uarch::exec::execute(
                &program,
                &mut benchsynth::uarch::exec::NullObserver,
                &benchsynth::uarch::exec::ExecConfig { max_instructions: 5_000_000, max_call_depth: 64 },
            );
            prop_assert!(out.completed, "clone did not terminate (r={r}, seed={seed})");
        }
    }
}
