//! End-to-end integration tests spanning the whole pipeline:
//! workload -> compile -> profile -> synthesize -> compile clone -> evaluate.

use benchsynth::compiler::{compile, CompileOptions, OptLevel, TargetIsa};
use benchsynth::ir::visa::MixCategory;
use benchsynth::profile::{profile_program, MixObserver, ProfileConfig};
use benchsynth::similarity::SimilarityReport;
use benchsynth::synth::{synthesize_with_target, SynthesisConfig};
use benchsynth::uarch::branch::{Hybrid, PredictorObserver};
use benchsynth::uarch::cache::{CacheConfig, CacheObserver};
use benchsynth::uarch::exec::{self, execute, ExecConfig};
use benchsynth::uarch::machine::MachineConfig;
use benchsynth::workloads::{suite, InputSize, Workload};

const TARGET: u64 = 20_000;

fn prepare(
    workload: &Workload,
) -> (
    benchsynth::profile::StatisticalProfile,
    benchsynth::synth::TargetedSynthesis,
) {
    let o0 = compile(&workload.program, &CompileOptions::portable(OptLevel::O0)).unwrap();
    let profile = profile_program(&o0.program, &workload.name, &ProfileConfig::default());
    let synth = synthesize_with_target(&profile, &SynthesisConfig::default(), TARGET);
    (profile, synth)
}

#[test]
fn synthetic_clones_are_shorter_and_representative_for_the_instruction_mix() {
    for w in suite(InputSize::Small).into_iter().take(5) {
        let (profile, synth) = prepare(&w);
        // Long-running originals must shrink; originals already near the
        // synthesis target (the paper's R = 1 cases) only need to stay in the
        // same ballpark.
        if profile.dynamic_instructions > TARGET * 2 {
            assert!(
                synth.synthetic_instructions < profile.dynamic_instructions,
                "{}: clone must be shorter ({} vs {})",
                w.name,
                synth.synthetic_instructions,
                profile.dynamic_instructions
            );
        } else {
            assert!(
                synth.synthetic_instructions < profile.dynamic_instructions * 3,
                "{}: clone must stay near the original's size",
                w.name
            );
        }
        // Compare the -O0 instruction-mix categories between original and clone.
        let (o, s) = (
            compile(&w.program, &CompileOptions::portable(OptLevel::O0))
                .unwrap()
                .program,
            compile(
                &synth.benchmark.hll,
                &CompileOptions::portable(OptLevel::O0),
            )
            .unwrap()
            .program,
        );
        let mix = |p| {
            let mut obs = MixObserver::default();
            execute(p, &mut obs, &ExecConfig::default());
            obs.mix().category_fractions()
        };
        let om = mix(&o);
        let sm = mix(&s);
        for cat in [MixCategory::Load, MixCategory::Store] {
            let (a, b) = (om[&cat], sm[&cat]);
            assert!(
                (a - b).abs() < 0.25,
                "{}: {cat} fraction diverges too much (original {a:.2}, synthetic {b:.2})",
                w.name
            );
        }
    }
}

#[test]
fn clones_track_cache_and_branch_behaviour_directionally() {
    let w = suite(InputSize::Small).remove(4); // dijkstra: cache-sensitive per the paper
    let (_, synth) = prepare(&w);
    let o = compile(&w.program, &CompileOptions::portable(OptLevel::O0))
        .unwrap()
        .program;
    let s = compile(
        &synth.benchmark.hll,
        &CompileOptions::portable(OptLevel::O0),
    )
    .unwrap()
    .program;
    let hit_rates = |p| {
        let mut obs = CacheObserver::new([1u64, 8, 32].map(CacheConfig::kb));
        execute(p, &mut obs, &ExecConfig::default());
        obs.sweep
            .results()
            .iter()
            .map(|(_, st)| st.hit_rate())
            .collect::<Vec<_>>()
    };
    for rates in [hit_rates(&o), hit_rates(&s)] {
        assert!(
            rates[2] >= rates[0] - 1e-9,
            "hit rate grows with cache size: {rates:?}"
        );
    }
    let accuracy = |p| {
        let mut obs = PredictorObserver::new(Hybrid::default_config());
        execute(p, &mut obs, &ExecConfig::default());
        obs.stats.accuracy()
    };
    assert!(accuracy(&o) > 0.7);
    assert!(accuracy(&s) > 0.7);
}

#[test]
fn clones_compile_and_run_on_every_isa_and_machine() {
    let w = suite(InputSize::Small).remove(0); // adpcm
    let (_, synth) = prepare(&w);
    for isa in TargetIsa::ALL {
        let compiled = compile(
            &synth.benchmark.hll,
            &CompileOptions::new(OptLevel::O2, isa),
        )
        .unwrap();
        let out = exec::run(&compiled.program);
        assert!(out.completed, "clone terminates on {isa}");
    }
    for machine in MachineConfig::table3() {
        let isa = match machine.isa {
            benchsynth::uarch::machine::MachineIsa::X86 => TargetIsa::X86,
            benchsynth::uarch::machine::MachineIsa::X86_64 => TargetIsa::X86_64,
            benchsynth::uarch::machine::MachineIsa::Ia64 => TargetIsa::Ia64,
        };
        let compiled = compile(
            &synth.benchmark.hll,
            &CompileOptions::new(OptLevel::O2, isa),
        )
        .unwrap();
        let result = machine.run(&compiled.program);
        assert!(result.time_ns > 0.0, "{} reports a time", machine.name);
    }
}

#[test]
fn clones_hide_proprietary_information_from_plagiarism_detectors() {
    for w in suite(InputSize::Small).into_iter().take(4) {
        let (_, synth) = prepare(&w);
        let original_c = benchsynth::ir::cemit::emit_c(&w.program);
        let report = SimilarityReport::compare(&original_c, &synth.benchmark.c_source);
        assert!(
            report.hides_proprietary_information(0.5),
            "{}: moss {:.2} jplag {:.2}",
            w.name,
            report.moss,
            report.jplag
        );
    }
}

#[test]
fn optimization_levels_reduce_instruction_counts_for_original_and_clone() {
    let w = suite(InputSize::Small).remove(3); // crc32
    let (_, synth) = prepare(&w);
    let count = |hll, level| {
        let c = compile(hll, &CompileOptions::new(level, TargetIsa::X86)).unwrap();
        exec::run(&c.program).dynamic_instructions
    };
    let oo0 = count(&w.program, OptLevel::O0);
    let oo2 = count(&w.program, OptLevel::O2);
    let so0 = count(&synth.benchmark.hll, OptLevel::O0);
    let so2 = count(&synth.benchmark.hll, OptLevel::O2);
    assert!(oo2 < oo0, "original shrinks with optimization");
    assert!(so2 < so0, "synthetic shrinks with optimization");
    let org_ratio = oo2 as f64 / oo0 as f64;
    let syn_ratio = so2 as f64 / so0 as f64;
    assert!(
        (org_ratio - syn_ratio).abs() < 0.35,
        "O0->O2 trends track: {org_ratio:.2} vs {syn_ratio:.2}"
    );
}
