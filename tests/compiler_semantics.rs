//! Property-based tests: the optimizing compiler preserves observable
//! behaviour for randomly generated programs, across optimization levels and
//! target ISAs.

use benchsynth::compiler::{compile, CompileOptions, OptLevel, TargetIsa};
use benchsynth::ir::build::FunctionBuilder;
use benchsynth::ir::hll::{BinOp, Expr, HllGlobal, HllProgram};
use benchsynth::uarch::exec::{execute, ExecConfig, NullObserver};
use proptest::prelude::*;

/// A tiny random-program generator: straight-line arithmetic, array traffic,
/// a counted loop and a data-dependent branch, all parameterized by the
/// proptest inputs.
fn build_program(seed_values: &[i64], loop_trip: i64, branch_mod: i64) -> HllProgram {
    let mut p = HllProgram::new();
    p.add_global(HllGlobal::zeroed("buf", 128));
    let mut f = FunctionBuilder::new("main");
    for (i, v) in seed_values.iter().enumerate() {
        f.assign_var(format!("v{i}"), Expr::int(*v));
    }
    f.assign_var("acc", Expr::int(0));
    f.for_loop("i", Expr::int(0), Expr::int(loop_trip), |b| {
        b.assign_index(
            "buf",
            Expr::bin(BinOp::And, Expr::var("i"), Expr::int(127)),
            Expr::add(Expr::var("v0"), Expr::mul(Expr::var("i"), Expr::var("v1"))),
        );
        b.if_then_else(
            Expr::eq(
                Expr::bin(BinOp::Rem, Expr::var("i"), Expr::int(branch_mod)),
                Expr::int(0),
            ),
            |t| {
                t.assign_var(
                    "acc",
                    Expr::add(
                        Expr::var("acc"),
                        Expr::index("buf", Expr::bin(BinOp::And, Expr::var("i"), Expr::int(127))),
                    ),
                );
            },
            |e| {
                e.assign_var("acc", Expr::sub(Expr::var("acc"), Expr::var("v2")));
                e.print(Expr::var("acc"));
            },
        );
        b.assign_var(
            "acc",
            Expr::bin(
                BinOp::Xor,
                Expr::var("acc"),
                Expr::bin(BinOp::Shr, Expr::var("v3"), Expr::int(1)),
            ),
        );
    });
    f.assign_var("acc", Expr::bin(BinOp::Mul, Expr::var("acc"), Expr::int(2)));
    f.ret(Some(Expr::var("acc")));
    p.add_function(f.finish());
    p
}

fn observable(p: &HllProgram, options: &CompileOptions) -> (Option<i64>, Vec<i64>) {
    let compiled = compile(p, options).expect("compiles");
    let out = execute(
        &compiled.program,
        &mut NullObserver,
        &ExecConfig {
            max_instructions: 2_000_000,
            max_call_depth: 64,
        },
    );
    assert!(out.completed);
    (
        out.return_value.map(|v| v.as_int()),
        out.printed.iter().map(|v| v.as_int()).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn optimization_preserves_observable_behaviour(
        values in proptest::collection::vec(-1000i64..1000, 4),
        trip in 1i64..40,
        branch_mod in 1i64..6,
    ) {
        let program = build_program(&values, trip, branch_mod);
        let reference = observable(&program, &CompileOptions::portable(OptLevel::O0));
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            for isa in TargetIsa::ALL {
                let got = observable(&program, &CompileOptions::new(level, isa));
                prop_assert_eq!(&got, &reference, "level {} isa {}", level, isa);
            }
        }
    }

    #[test]
    fn higher_optimization_never_increases_dynamic_instructions_much(
        values in proptest::collection::vec(-50i64..50, 4),
        trip in 5i64..30,
    ) {
        let program = build_program(&values, trip, 3);
        let count = |level| {
            let compiled = compile(&program, &CompileOptions::portable(level)).unwrap();
            benchsynth::uarch::exec::run(&compiled.program).dynamic_instructions
        };
        let o0 = count(OptLevel::O0);
        let o2 = count(OptLevel::O2);
        // O2 code may differ slightly but must not blow up; in practice it is
        // considerably smaller because scalars leave memory.
        prop_assert!(o2 <= o0, "O2 ({o2}) larger than O0 ({o0})");
    }
}
