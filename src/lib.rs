//! # benchsynth — benchmark synthesis for architecture and compiler exploration
//!
//! A Rust reproduction of *Van Ertvelde & Eeckhout, "Benchmark Synthesis for
//! Architecture and Compiler Exploration" (IISWC 2010)*: generate small,
//! representative synthetic benchmark clones in a high-level language from
//! the statistical profile of a (possibly proprietary) workload, and evaluate
//! them across compilers, ISAs and microarchitectures.
//!
//! This crate is a facade that re-exports the workspace crates under one
//! name; see the README for the architecture overview:
//!
//! * [`ir`] — HLL AST, virtual ISA, CFG analyses, C emission
//! * [`compiler`] — `-O0`…`-O3` optimization and per-ISA code generation
//! * [`uarch`] — executor, caches, branch predictors, pipeline & machine models
//! * [`profile`] — SFGL and the rest of the statistical profile
//! * [`synth`] — the benchmark synthesizer (the paper's contribution)
//! * [`workloads`] — MiBench-like kernels with small/large inputs
//! * [`similarity`] — Moss/JPlag-style plagiarism detection
//!
//! # Quickstart
//!
//! ```
//! use benchsynth::compiler::{compile, CompileOptions, OptLevel};
//! use benchsynth::profile::{profile_program, ProfileConfig};
//! use benchsynth::synth::{synthesize, SynthesisConfig};
//! use benchsynth::workloads::{suite, InputSize};
//!
//! // Pick a workload, profile it at -O0, synthesize a 10x-shorter clone.
//! let workload = suite(InputSize::Small).remove(3); // crc32/small
//! let compiled = compile(&workload.program, &CompileOptions::portable(OptLevel::O0))?;
//! let profile = profile_program(&compiled.program, &workload.name, &ProfileConfig::default());
//! let clone = synthesize(&profile, &SynthesisConfig::with_reduction(10));
//! assert!(clone.c_source.contains("mStream"));
//! # Ok::<(), benchsynth::compiler::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bsg_compiler as compiler;
pub use bsg_ir as ir;
pub use bsg_profile as profile;
pub use bsg_similarity as similarity;
pub use bsg_synth as synth;
pub use bsg_uarch as uarch;
pub use bsg_workloads as workloads;
