//! Offline stand-in for `rand`, covering exactly the API surface the
//! workspace uses: `SmallRng::seed_from_u64` and `Rng::gen_range` over
//! half-open integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `SmallRng` uses on 64-bit targets — so statistical
//! quality is adequate for the synthesizer's code-generation choices.  It is
//! deterministic for a given seed, which the synthesis pipeline relies on
//! (same profile + same seed = same clone).

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open range.  The sampled
/// type is a trait parameter (mirroring `rand`'s `SampleRange<T>`) so the
/// result type drives inference of untyped integer literals in the range.
pub trait SampleRange<T> {
    /// Draws one value using the provided 64-bit source.
    fn sample(self, next: u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, next: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (next as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i32, i64, u32, u64, usize);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Produces the next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range` (which must be non-empty).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let next = self.next_u64();
        range.sample(next)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Small, fast RNGs.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small fast generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..6);
            assert!(v < 6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values should appear");
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
