//! No-op derive macros standing in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a stub: `#[derive(Serialize, Deserialize)]` expands to nothing.  The
//! workspace never serializes through serde at runtime (reports are plain
//! text and `BENCH_interp.json` is emitted by hand), so the derives only need
//! to parse, not to generate code.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
