//! Offline stand-in for `criterion` covering the API the workspace's bench
//! targets use.  Instead of statistical sampling it runs each benchmark body
//! `sample_size` times (minimum 1) and reports the mean wall-clock time — a
//! smoke-level harness that keeps `cargo bench` useful without crates.io
//! access.  Swapping the path dependency for the real criterion restores full
//! statistics without changing any bench source.

use std::fmt::Display;
use std::time::Instant;

/// Times one benchmark body.
pub struct Bencher {
    iters: u64,
    total_nanos: u128,
}

impl Bencher {
    /// Runs `f` repeatedly, timing each invocation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters.max(1) {
            std::hint::black_box(f());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }
}

/// A named benchmark parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a parameter's display form.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }
}

fn run_one(label: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: samples,
        total_nanos: 0,
    };
    f(&mut b);
    let per_iter = b.total_nanos / u128::from(b.iters.max(1));
    println!("{label:<48} {:>12.3} ms/iter", per_iter as f64 / 1e6);
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 3 }
    }
}

impl Criterion {
    /// Sets how many times each body runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup {
    /// Sets how many times each body in this group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions sharing one `Criterion` config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),*);
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}
