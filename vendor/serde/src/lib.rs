//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives so the workspace's
//! `#[derive(Serialize, Deserialize)]` annotations compile without network
//! access.  No serde trait machinery exists here; nothing in the workspace
//! serializes through serde at runtime.  Swapping this path dependency for
//! the real crates.io `serde` restores full serialization support without
//! touching any other file.

pub use serde_derive::{Deserialize, Serialize};
