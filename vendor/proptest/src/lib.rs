//! Offline stand-in for `proptest` covering the API the workspace's
//! property tests use: the `proptest!` macro with a `proptest_config` inner
//! attribute, `prop_assert!`/`prop_assert_eq!`, integer-range strategies and
//! `proptest::collection::vec`.
//!
//! Each test runs `cases` iterations with inputs drawn from a deterministic
//! per-test RNG (seeded from the test's module path), so failures are
//! reproducible run-to-run.  There is no shrinking; a failing case reports
//! its inputs instead.  Swapping the path dependency for the real proptest
//! restores shrinking without changing any test source.

// Lets the crate's own tests spell paths the way downstream users do
// (`proptest::collection::vec`).
extern crate self as proptest;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A source of random test inputs.
pub type TestRng = SmallRng;

/// Builds the deterministic RNG for one test case.
pub fn rng_for(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test path keeps unrelated tests decorrelated.
    let mut seed: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x100000001b3);
    }
    SmallRng::seed_from_u64(seed ^ (u64::from(case) << 32))
}

/// Generates values of one input parameter.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i32, i64, u32, u64, usize);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for fixed-length vectors of another strategy's values.
    pub struct VecStrategy<S> {
        element: S,
        count: usize,
    }

    /// `count` values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, count: usize) -> VecStrategy<S> {
        VecStrategy { element, count }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.count)
                .map(|_| self.element.generate(rng))
                .collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Fails the enclosing property case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($lhs), stringify!($rhs), lhs, rhs,
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+), lhs, rhs,
            ));
        }
    }};
}

/// Fails the enclosing property case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
            ));
        }
    }};
}

/// Declares property tests: each `fn` runs `cases` times with fresh inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}  "),*) $(, $arg)*
                );
                let result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = result {
                    panic!("property failed on case {case}: {message}\n  inputs: {inputs}");
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3i64..9, y in 0u64..4, n in 1usize..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4, "y was {y}");
            prop_assert_ne!(n, 0);
        }

        #[test]
        fn vectors_have_the_requested_length(v in proptest::collection::vec(-10i64..10, 4)) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!(v.iter().all(|e| (-10..10).contains(e)));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unused)]
            fn inner(x in 0i64..1) {
                prop_assert!(x > 100);
            }
        }
        inner();
    }
}
