//! Benchmark consolidation (§II-B.e of the paper): merge the profiles of
//! several workloads and generate one synthetic benchmark representative of
//! the whole set.
//!
//! ```text
//! cargo run --release --example consolidation
//! ```

use benchsynth::compiler::{compile, CompileOptions, OptLevel};
use benchsynth::profile::{profile_program, ProfileConfig, StatisticalProfile};
use benchsynth::synth::{consolidate, synthesize_with_target, SynthesisConfig};
use benchsynth::uarch::exec;
use benchsynth::workloads::{suite, InputSize};

fn main() {
    let selected = ["adpcm/small", "crc32/small", "stringsearch/small"];
    let mut profiles: Vec<StatisticalProfile> = Vec::new();
    let mut total_original = 0u64;
    for w in suite(InputSize::Small) {
        if !selected.contains(&w.name.as_str()) {
            continue;
        }
        let o0 = compile(&w.program, &CompileOptions::portable(OptLevel::O0)).unwrap();
        let p = profile_program(&o0.program, &w.name, &ProfileConfig::default());
        println!("{:<20} {:>12} instructions", w.name, p.dynamic_instructions);
        total_original += p.dynamic_instructions;
        profiles.push(p);
    }

    let merged = consolidate(&profiles);
    let clone = synthesize_with_target(&merged, &SynthesisConfig::default(), 40_000);
    println!(
        "\nconsolidated profile: {} instructions across {} workloads",
        total_original,
        profiles.len()
    );
    println!(
        "consolidated clone:   {} instructions (R = {})",
        clone.synthetic_instructions, clone.reduction_factor
    );
    let compiled = compile(
        &clone.benchmark.hll,
        &CompileOptions::portable(OptLevel::O2),
    )
    .unwrap();
    println!(
        "clone at -O2:         {} instructions",
        exec::run(&compiled.program).dynamic_instructions
    );
    println!("\nOne distributable benchmark now stands in for all three workloads.");
}
