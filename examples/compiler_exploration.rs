//! Using synthetic clones for compiler exploration — only possible because
//! the clones are generated in a high-level language (the paper's key claim
//! versus binary-level benchmark synthesis).
//!
//! ```text
//! cargo run --release --example compiler_exploration
//! ```

use benchsynth::compiler::{compile, CompileOptions, OptLevel, TargetIsa};
use benchsynth::profile::{profile_program, ProfileConfig};
use benchsynth::synth::{synthesize_with_target, SynthesisConfig};
use benchsynth::uarch::exec;
use benchsynth::workloads::{suite, InputSize};

fn main() {
    let workload = suite(InputSize::Small).remove(10); // sha/small
    let o0 = compile(&workload.program, &CompileOptions::portable(OptLevel::O0)).unwrap();
    let profile = profile_program(&o0.program, &workload.name, &ProfileConfig::default());
    let clone = synthesize_with_target(&profile, &SynthesisConfig::default(), 25_000).benchmark;

    println!(
        "dynamic instruction count by optimization level and ISA ({}):",
        workload.name
    );
    println!(
        "{:<10} {:<8} {:>14} {:>14}",
        "ISA", "level", "original", "synthetic"
    );
    for isa in TargetIsa::ALL {
        for level in OptLevel::ALL {
            let options = CompileOptions::new(level, isa);
            let original = compile(&workload.program, &options).unwrap();
            let synthetic = compile(&clone.hll, &options).unwrap();
            println!(
                "{:<10} {:<8} {:>14} {:>14}",
                isa.to_string(),
                level.to_string(),
                exec::run(&original.program).dynamic_instructions,
                exec::run(&synthetic.program).dynamic_instructions
            );
        }
    }
    println!("\nBoth columns shrink the same way from -O0 to -O3: the clone is usable for compiler studies.");
}
