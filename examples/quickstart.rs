//! Quickstart: profile one workload, synthesize a clone, compare them.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use benchsynth::compiler::{compile, CompileOptions, OptLevel, TargetIsa};
use benchsynth::profile::{profile_program, ProfileConfig};
use benchsynth::similarity::SimilarityReport;
use benchsynth::synth::{synthesize_with_target, SynthesisConfig};
use benchsynth::uarch::exec;
use benchsynth::workloads::{suite, InputSize};

fn main() {
    // 1. Take a workload standing in for a proprietary application.
    let workload = suite(InputSize::Small).remove(3); // crc32/small
    println!("original workload: {}", workload.name);

    // 2. Compile it at a low optimization level and profile the execution.
    let o0 = compile(&workload.program, &CompileOptions::portable(OptLevel::O0)).expect("compiles");
    let profile = profile_program(&o0.program, &workload.name, &ProfileConfig::default());
    println!(
        "  dynamic instructions (original, -O0): {}",
        profile.dynamic_instructions
    );
    println!(
        "  basic blocks: {}, loops: {}",
        profile.sfgl.nodes.len(),
        profile.sfgl.loops.len()
    );

    // 3. Synthesize a clone targeting ~20k instructions.
    let result = synthesize_with_target(&profile, &SynthesisConfig::default(), 20_000);
    println!("  reduction factor R = {}", result.reduction_factor);
    println!(
        "  dynamic instructions (synthetic, -O0): {}",
        result.synthetic_instructions
    );
    println!("  reduction: {:.1}x", result.instruction_reduction());

    // 4. The clone compiles and runs at any optimization level / ISA.
    for level in [OptLevel::O0, OptLevel::O2] {
        let compiled = compile(
            &result.benchmark.hll,
            &CompileOptions::new(level, TargetIsa::X86_64),
        )
        .unwrap();
        let out = exec::run(&compiled.program);
        println!(
            "  synthetic at {level}: {} instructions",
            out.dynamic_instructions
        );
    }

    // 5. And it does not resemble the original source.
    let original_c = benchsynth::ir::cemit::emit_c(&workload.program);
    let report = SimilarityReport::compare(&original_c, &result.benchmark.c_source);
    println!(
        "  Moss similarity: {:.1}%, JPlag similarity: {:.1}%",
        report.moss * 100.0,
        report.jplag * 100.0
    );
    println!(
        "\n--- synthetic clone (C source) ---\n{}",
        result.benchmark.c_source
    );
}
