//! The paper's headline use case: a company distributes a synthetic clone of
//! a proprietary workload to a hardware vendor, who then explores
//! microarchitectures using only the clone.
//!
//! ```text
//! cargo run --release --example proprietary_proxy
//! ```

use benchsynth::compiler::{compile, CompileOptions, OptLevel};
use benchsynth::profile::{profile_program, ProfileConfig};
use benchsynth::synth::{synthesize_with_target, SynthesisConfig};
use benchsynth::uarch::pipeline::{simulate, PipelineConfig};
use benchsynth::workloads::{suite, InputSize};

fn main() {
    // The "proprietary" application: dijkstra stands in for routing software.
    let workload = suite(InputSize::Small).remove(4);
    println!(
        "proprietary workload: {} (never leaves the company)",
        workload.name
    );

    // The company profiles it in-house and ships only the clone.
    let o0 = compile(&workload.program, &CompileOptions::portable(OptLevel::O0)).unwrap();
    let profile = profile_program(&o0.program, &workload.name, &ProfileConfig::default());
    let clone = synthesize_with_target(&profile, &SynthesisConfig::default(), 30_000);
    println!(
        "clone shipped to the vendor: {} C statements, R = {}",
        clone.benchmark.stats.statements, clone.reduction_factor
    );

    // The vendor explores L1 cache sizes using the clone, and the company
    // checks (internally) that the original would rank the designs the same.
    println!(
        "\n{:<10} {:>16} {:>16}",
        "L1 size", "CPI (original)", "CPI (clone)"
    );
    for kb in [4u64, 8, 16, 32, 64] {
        let config = PipelineConfig::ptlsim_2wide(kb);
        let cpi_original = simulate(&o0.program, config).cpi();
        let clone_prog = compile(
            &clone.benchmark.hll,
            &CompileOptions::portable(OptLevel::O0),
        )
        .unwrap();
        let cpi_clone = simulate(&clone_prog.program, config).cpi();
        println!("{:>6} KB {:>16.3} {:>16.3}", kb, cpi_original, cpi_clone);
    }
    println!("\nThe vendor never sees the original; the clone drives the same design choice.");
}
