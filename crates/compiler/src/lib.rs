//! # bsg-compiler — an optimizing compiler from the benchmark-synthesis HLL to the virtual ISA
//!
//! The IISWC 2010 benchmark-synthesis paper generates its synthetic clones in
//! C precisely so that the *compiler* becomes part of the design space being
//! explored: the same clone is compiled at `-O0` … `-O3` with GCC on x86,
//! x86_64 and IA-64 machines.  This crate plays the role of that toolchain
//! for the reproduction: it lowers HLL programs ([`bsg_ir::hll`]) to the
//! virtual ISA ([`bsg_ir::visa`]) at four optimization levels and for three
//! target ISAs, so that original workloads and synthetic clones experience
//! the same first-order compiler effects the paper measures:
//!
//! * `O0` keeps every scalar variable in the stack frame (load before every
//!   use, store after every def), exactly like GCC `-O0`.  This is the level
//!   at which workloads are profiled (§II-A of the paper).
//! * `O1` promotes scalars to registers and runs copy propagation, constant
//!   folding, strength reduction and dead-code elimination — the dynamic
//!   instruction count drops by roughly a third, reproducing Figure 5.
//! * `O2` adds common-subexpression / redundant-load elimination,
//!   loop-invariant code motion and instruction scheduling.
//! * `O3` adds function inlining (and re-schedules).
//!
//! Code generation then specializes the program for a target ISA:
//! x86 folds adjacent loads into memory operands (CISC) and has only a few
//! allocatable registers (more spill traffic), x86_64 has twice as many
//! registers, and IA-64 is a wide in-order EPIC target whose performance is
//! far more sensitive to the scheduling quality delivered by the optimizer —
//! which is what lets the reproduction show the Itanium-specific compiler
//! sensitivity of Figure 11.
//!
//! # Example
//!
//! ```
//! use bsg_compiler::{compile, CompileOptions, OptLevel, TargetIsa};
//! use bsg_ir::build::FunctionBuilder;
//! use bsg_ir::hll::{Expr, HllProgram};
//!
//! let mut f = FunctionBuilder::new("main");
//! f.assign_var("x", Expr::int(3));
//! f.assign_var("y", Expr::add(Expr::var("x"), Expr::int(4)));
//! f.ret(Some(Expr::var("y")));
//! let hll = HllProgram::with_main(f.finish());
//!
//! let o0 = compile(&hll, &CompileOptions::new(OptLevel::O0, TargetIsa::X86))?;
//! let o2 = compile(&hll, &CompileOptions::new(OptLevel::O2, TargetIsa::X86))?;
//! assert!(o2.program.static_inst_count() <= o0.program.static_inst_count());
//! # Ok::<(), bsg_compiler::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod lower;
pub mod passes;
pub mod regalloc;

use bsg_ir::hll::HllProgram;
use bsg_ir::Program;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Compiler optimization levels, mirroring GCC's `-O0`…`-O3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// No optimization; scalars live in memory.
    O0,
    /// Register promotion, copy propagation, constant folding, strength
    /// reduction, dead-code elimination.
    O1,
    /// `O1` plus CSE / redundant-load elimination, loop-invariant code motion
    /// and list scheduling.
    O2,
    /// `O2` plus function inlining.
    O3,
}

impl OptLevel {
    /// All levels in ascending order.
    pub const ALL: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
        };
        write!(f, "{s}")
    }
}

/// Target instruction-set architectures (Table III of the paper uses x86,
/// x86_64 and IA-64 machines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetIsa {
    /// 32-bit x86: 6 allocatable registers, memory operands folded into ALU ops.
    X86,
    /// x86-64: 14 allocatable registers, memory operands folded into ALU ops.
    X86_64,
    /// IA-64 (EPIC): 24 allocatable registers, pure load/store, statically scheduled.
    Ia64,
}

impl TargetIsa {
    /// All ISAs.
    pub const ALL: [TargetIsa; 3] = [TargetIsa::X86, TargetIsa::X86_64, TargetIsa::Ia64];

    /// Number of allocatable integer registers for the register allocator.
    pub fn allocatable_regs(self) -> usize {
        match self {
            TargetIsa::X86 => 6,
            TargetIsa::X86_64 => 14,
            TargetIsa::Ia64 => 24,
        }
    }

    /// Returns `true` if ALU instructions may take a memory operand (CISC).
    pub fn has_memory_operands(self) -> bool {
        matches!(self, TargetIsa::X86 | TargetIsa::X86_64)
    }

    /// Returns `true` for statically scheduled (EPIC) targets.
    pub fn is_epic(self) -> bool {
        matches!(self, TargetIsa::Ia64)
    }
}

impl fmt::Display for TargetIsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TargetIsa::X86 => "x86",
            TargetIsa::X86_64 => "x86_64",
            TargetIsa::Ia64 => "ia64",
        };
        write!(f, "{s}")
    }
}

/// Options controlling a compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Optimization level.
    pub opt_level: OptLevel,
    /// Target ISA.
    pub isa: TargetIsa,
    /// When `false`, skip ISA-specific code generation (register allocation,
    /// memory-operand folding); the result is the portable optimized VISA
    /// program.  Profiling in the paper is done on the `-O0` binary, which in
    /// this reproduction corresponds to `O0` with codegen enabled.
    pub codegen: bool,
}

impl CompileOptions {
    /// Options with codegen enabled for the given level and ISA.
    pub fn new(opt_level: OptLevel, isa: TargetIsa) -> Self {
        CompileOptions {
            opt_level,
            isa,
            codegen: true,
        }
    }

    /// Portable compilation (no ISA-specific codegen).
    pub fn portable(opt_level: OptLevel) -> Self {
        CompileOptions {
            opt_level,
            isa: TargetIsa::X86,
            codegen: false,
        }
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions::new(OptLevel::O0, TargetIsa::X86)
    }
}

impl bsg_ir::canon::Canon for OptLevel {
    fn canon(&self, w: &mut dyn bsg_ir::canon::CanonWrite) {
        w.write(&[match self {
            OptLevel::O0 => 0,
            OptLevel::O1 => 1,
            OptLevel::O2 => 2,
            OptLevel::O3 => 3,
        }]);
    }
}

impl bsg_ir::canon::Canon for TargetIsa {
    fn canon(&self, w: &mut dyn bsg_ir::canon::CanonWrite) {
        w.write(&[match self {
            TargetIsa::X86 => 0,
            TargetIsa::X86_64 => 1,
            TargetIsa::Ia64 => 2,
        }]);
    }
}

impl bsg_ir::canon::Canon for CompileOptions {
    fn canon(&self, w: &mut dyn bsg_ir::canon::CanonWrite) {
        self.opt_level.canon(w);
        self.isa.canon(w);
        self.codegen.canon(w);
    }
}

impl bsg_ir::codec::Decanon for OptLevel {
    fn decanon(r: &mut bsg_ir::codec::CanonReader<'_>) -> Option<Self> {
        match r.byte()? {
            0 => Some(OptLevel::O0),
            1 => Some(OptLevel::O1),
            2 => Some(OptLevel::O2),
            3 => Some(OptLevel::O3),
            _ => None,
        }
    }
}

impl bsg_ir::codec::Decanon for TargetIsa {
    fn decanon(r: &mut bsg_ir::codec::CanonReader<'_>) -> Option<Self> {
        match r.byte()? {
            0 => Some(TargetIsa::X86),
            1 => Some(TargetIsa::X86_64),
            2 => Some(TargetIsa::Ia64),
            _ => None,
        }
    }
}

impl bsg_ir::codec::Decanon for CompileOptions {
    fn decanon(r: &mut bsg_ir::codec::CanonReader<'_>) -> Option<Self> {
        Some(CompileOptions {
            opt_level: bsg_ir::codec::Decanon::decanon(r)?,
            isa: bsg_ir::codec::Decanon::decanon(r)?,
            codegen: bsg_ir::codec::Decanon::decanon(r)?,
        })
    }
}

/// Errors reported while lowering an HLL program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A statement references a function that is not defined.
    UnknownFunction(String),
    /// An expression indexes a global array that is not declared.
    UnknownGlobal(String),
    /// A call passes the wrong number of arguments.
    ArityMismatch {
        /// Callee name.
        function: String,
        /// Arguments supplied at the call site.
        supplied: usize,
        /// Parameters the function declares.
        expected: usize,
    },
    /// `break` or `continue` appeared outside of a loop.
    StrayLoopControl(&'static str),
    /// The program has no entry function.
    MissingEntry(String),
    /// The lowered program failed structural validation (internal error).
    Invalid(Vec<String>),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownFunction(n) => write!(f, "call to unknown function `{n}`"),
            CompileError::UnknownGlobal(n) => write!(f, "reference to unknown global array `{n}`"),
            CompileError::ArityMismatch {
                function,
                supplied,
                expected,
            } => write!(
                f,
                "call to `{function}` with {supplied} arguments, expected {expected}"
            ),
            CompileError::StrayLoopControl(kw) => write!(f, "`{kw}` outside of a loop"),
            CompileError::MissingEntry(n) => write!(f, "entry function `{n}` is not defined"),
            CompileError::Invalid(errors) => {
                write!(
                    f,
                    "lowered program failed validation: {}",
                    errors.join("; ")
                )
            }
        }
    }
}

impl Error for CompileError {}

/// Statistics gathered while compiling, used by the ablation benches and by
/// tests that check each pass actually fires.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileStats {
    /// Instructions folded by constant folding.
    pub constants_folded: usize,
    /// Copies propagated.
    pub copies_propagated: usize,
    /// Instructions removed by dead-code elimination.
    pub dead_insts_removed: usize,
    /// Redundant expressions / loads removed by CSE.
    pub cse_removed: usize,
    /// Instructions hoisted by loop-invariant code motion.
    pub licm_hoisted: usize,
    /// Multiplications converted to shifts.
    pub strength_reduced: usize,
    /// Call sites inlined.
    pub calls_inlined: usize,
    /// Instructions reordered by the scheduler.
    pub insts_scheduled: usize,
    /// Loads folded into memory operands by codegen.
    pub loads_folded: usize,
    /// Spill loads/stores inserted by the register allocator.
    pub spill_insts_inserted: usize,
}

impl CompileStats {
    /// Merges another statistics record into this one.
    pub fn merge(&mut self, other: &CompileStats) {
        self.constants_folded += other.constants_folded;
        self.copies_propagated += other.copies_propagated;
        self.dead_insts_removed += other.dead_insts_removed;
        self.cse_removed += other.cse_removed;
        self.licm_hoisted += other.licm_hoisted;
        self.strength_reduced += other.strength_reduced;
        self.calls_inlined += other.calls_inlined;
        self.insts_scheduled += other.insts_scheduled;
        self.loads_folded += other.loads_folded;
        self.spill_insts_inserted += other.spill_insts_inserted;
    }
}

/// The result of a compilation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledProgram {
    /// The executable VISA program.
    pub program: Program,
    /// Options the program was compiled with.
    pub options: CompileOptions,
    /// Optimization statistics.
    pub stats: CompileStats,
}

/// Compiles an HLL program at the given optimization level and target ISA.
///
/// # Errors
///
/// Returns a [`CompileError`] if the program references unknown functions or
/// globals, calls a function with the wrong arity, uses `break`/`continue`
/// outside a loop, or lacks the entry function.
pub fn compile(
    hll: &HllProgram,
    options: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    let mut stats = CompileStats::default();
    // 1. Lowering.  O0 keeps scalars in memory; O1+ promotes them to registers.
    let mode = if options.opt_level == OptLevel::O0 {
        lower::LowerMode::StackScalars
    } else {
        lower::LowerMode::RegisterScalars
    };
    let mut program = lower::lower(hll, mode)?;

    // 2. Machine-independent optimization.
    passes::run_pipeline(&mut program, options.opt_level, &mut stats);

    // 3. ISA-specific code generation.
    if options.codegen {
        codegen::generate(&mut program, options, &mut stats);
    }

    let errors = program.validate();
    if !errors.is_empty() {
        return Err(CompileError::Invalid(errors));
    }
    Ok(CompiledProgram {
        program,
        options: *options,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_ir::build::FunctionBuilder;
    use bsg_ir::hll::{Expr, HllGlobal, HllProgram};

    fn small_program() -> HllProgram {
        let mut p = HllProgram::new();
        p.add_global(HllGlobal::zeroed("buf", 64));
        let mut f = FunctionBuilder::new("main");
        f.assign_var("acc", Expr::int(0));
        f.for_loop("i", Expr::int(0), Expr::int(16), |b| {
            b.assign_index(
                "buf",
                Expr::var("i"),
                Expr::mul(Expr::var("i"), Expr::int(2)),
            );
            b.assign_var(
                "acc",
                Expr::add(Expr::var("acc"), Expr::index("buf", Expr::var("i"))),
            );
        });
        f.ret(Some(Expr::var("acc")));
        p.add_function(f.finish());
        p
    }

    #[test]
    fn compiles_at_every_level_and_isa() {
        let hll = small_program();
        for level in OptLevel::ALL {
            for isa in TargetIsa::ALL {
                let out = compile(&hll, &CompileOptions::new(level, isa)).expect("compiles");
                assert!(out.program.validate().is_empty());
                assert!(out.program.static_inst_count() > 0);
            }
        }
    }

    #[test]
    fn higher_levels_produce_fewer_static_instructions() {
        let hll = small_program();
        let o0 = compile(&hll, &CompileOptions::portable(OptLevel::O0)).unwrap();
        let o2 = compile(&hll, &CompileOptions::portable(OptLevel::O2)).unwrap();
        assert!(
            o2.program.static_inst_count() < o0.program.static_inst_count(),
            "O2 ({}) should be smaller than O0 ({})",
            o2.program.static_inst_count(),
            o0.program.static_inst_count()
        );
    }

    #[test]
    fn unknown_global_is_reported() {
        let mut f = FunctionBuilder::new("main");
        f.assign_index("missing", Expr::int(0), Expr::int(1));
        let hll = HllProgram::with_main(f.finish());
        let err = compile(&hll, &CompileOptions::default()).unwrap_err();
        assert!(matches!(err, CompileError::UnknownGlobal(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn opt_level_and_isa_display() {
        assert_eq!(OptLevel::O2.to_string(), "-O2");
        assert_eq!(TargetIsa::Ia64.to_string(), "ia64");
        assert!(TargetIsa::X86.has_memory_operands());
        assert!(!TargetIsa::Ia64.has_memory_operands());
        assert!(TargetIsa::Ia64.is_epic());
        assert!(TargetIsa::X86.allocatable_regs() < TargetIsa::X86_64.allocatable_regs());
    }
}
