//! Lowering from the HLL AST to the virtual ISA.
//!
//! Two lowering modes model the two ends of the compiler spectrum the paper
//! relies on:
//!
//! * [`LowerMode::StackScalars`] (used for `-O0`): every scalar variable
//!   lives in the function's stack frame.  Each read issues a load and each
//!   write issues a store, exactly like unoptimized GCC output.  This is the
//!   form workloads are *profiled* in (§II-A).
//! * [`LowerMode::RegisterScalars`] (used for `-O1` and above): scalars are
//!   promoted to virtual registers, removing the great majority of loads and
//!   stores — the dominant effect behind the paper's Figure 5 and Figure 6
//!   optimization-level trends.

use crate::CompileError;
use bsg_ir::hll::{Expr, HllFunction, HllProgram, LValue, Stmt};
use bsg_ir::program::{Function, Global, GlobalInit, Program};
use bsg_ir::types::{BlockId, FuncId, GlobalId, Reg, Ty};
use bsg_ir::visa::{Address, BinOp, Inst, Operand, Terminator, UnOp};
use std::collections::HashMap;

/// How scalar variables are materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LowerMode {
    /// Scalars live in the stack frame (GCC `-O0` behaviour).
    StackScalars,
    /// Scalars are promoted to virtual registers (`-O1` and above).
    RegisterScalars,
}

/// Lowers a whole HLL program.
///
/// # Errors
///
/// See [`CompileError`]; lowering validates name resolution, call arity and
/// loop-control placement.
pub fn lower(hll: &HllProgram, mode: LowerMode) -> Result<Program, CompileError> {
    let mut program = Program::new();

    // Globals keep their declaration order so `GlobalId(i)` == i-th HLL global.
    let mut global_map: HashMap<String, (GlobalId, Ty)> = HashMap::new();
    for g in &hll.globals {
        let init = if g.iota {
            GlobalInit::Iota
        } else if g.init.is_empty() {
            GlobalInit::Zero
        } else {
            GlobalInit::Values(g.init.clone())
        };
        let id = program.add_global(Global {
            name: g.name.clone(),
            elems: g.elems,
            ty: g.ty,
            init,
        });
        global_map.insert(g.name.clone(), (id, g.ty));
    }

    // Function signature table (name -> id, arity) in declaration order.
    let mut func_map: HashMap<String, (FuncId, usize)> = HashMap::new();
    for (i, f) in hll.functions.iter().enumerate() {
        func_map.insert(f.name.clone(), (FuncId(i as u32), f.params.len()));
    }
    let Some(&(entry, _)) = func_map.get(&hll.entry) else {
        return Err(CompileError::MissingEntry(hll.entry.clone()));
    };

    for f in &hll.functions {
        let lowered = FuncLowerer::new(f, mode, &global_map, &func_map).lower()?;
        program.add_function(lowered);
    }
    program.entry = entry;
    Ok(program)
}

/// Where a scalar variable lives.
#[derive(Debug, Clone, Copy)]
enum VarPlace {
    Frame(i64),
    Register(Reg),
}

struct FuncLowerer<'a> {
    src: &'a HllFunction,
    mode: LowerMode,
    globals: &'a HashMap<String, (GlobalId, Ty)>,
    funcs: &'a HashMap<String, (FuncId, usize)>,
    func: Function,
    vars: HashMap<String, VarPlace>,
    var_types: HashMap<String, Ty>,
    cur: BlockId,
    /// (continue target, break target) for each enclosing loop.
    loop_stack: Vec<(BlockId, BlockId)>,
}

impl<'a> FuncLowerer<'a> {
    fn new(
        src: &'a HllFunction,
        mode: LowerMode,
        globals: &'a HashMap<String, (GlobalId, Ty)>,
        funcs: &'a HashMap<String, (FuncId, usize)>,
    ) -> Self {
        FuncLowerer {
            src,
            mode,
            globals,
            funcs,
            func: Function::new(src.name.clone()),
            vars: HashMap::new(),
            var_types: HashMap::new(),
            cur: BlockId(0),
            loop_stack: Vec::new(),
        }
    }

    fn lower(mut self) -> Result<Function, CompileError> {
        // Record declared float variables.
        for v in &self.src.float_vars {
            self.var_types.insert(v.clone(), Ty::Float);
        }
        // Parameters arrive in fresh registers; in stack mode they are
        // immediately spilled to their frame slot (like GCC -O0 prologues).
        let param_regs: Vec<Reg> = self
            .src
            .params
            .iter()
            .map(|_| self.func.fresh_reg())
            .collect();
        self.func.params = param_regs.clone();
        for (name, reg) in self.src.params.iter().zip(param_regs) {
            match self.mode {
                LowerMode::StackScalars => {
                    let slot = self.func.fresh_frame_slot();
                    self.vars.insert(name.clone(), VarPlace::Frame(slot));
                    let ty = self.var_ty(name);
                    self.emit(Inst::Store {
                        src: reg.into(),
                        addr: Address::frame(slot),
                        ty,
                    });
                }
                LowerMode::RegisterScalars => {
                    self.vars.insert(name.clone(), VarPlace::Register(reg));
                }
            }
        }
        let body = self.src.body.clone();
        self.lower_stmts(&body)?;
        // Fall-through return.  (Blocks created by `add_block` already end in
        // `Return(None)`, so only the current block needs checking.)
        if !matches!(self.func.block(self.cur).term, Terminator::Return(_)) {
            self.func.block_mut(self.cur).term = Terminator::Return(None);
        }
        Ok(self.func)
    }

    // ---- helpers -----------------------------------------------------------

    fn emit(&mut self, inst: Inst) {
        self.func.block_mut(self.cur).insts.push(inst);
    }

    fn set_term(&mut self, term: Terminator) {
        self.func.block_mut(self.cur).term = term;
    }

    fn start_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    fn var_ty(&self, name: &str) -> Ty {
        self.var_types.get(name).copied().unwrap_or(Ty::Int)
    }

    fn var_place(&mut self, name: &str) -> VarPlace {
        if let Some(p) = self.vars.get(name) {
            return *p;
        }
        let place = match self.mode {
            LowerMode::StackScalars => VarPlace::Frame(self.func.fresh_frame_slot()),
            LowerMode::RegisterScalars => VarPlace::Register(self.func.fresh_reg()),
        };
        self.vars.insert(name.to_string(), place);
        place
    }

    /// Materializes an operand into a register (needed for branch conditions
    /// and address index registers).
    #[allow(clippy::wrong_self_convention)] // consumes the operand, not self
    fn into_reg(&mut self, op: Operand) -> Reg {
        match op {
            Operand::Reg(r) => r,
            other => {
                let r = self.func.fresh_reg();
                self.emit(Inst::Mov { dst: r, src: other });
                r
            }
        }
    }

    fn read_var(&mut self, name: &str) -> (Operand, Ty) {
        let ty = self.var_ty(name);
        match self.var_place(name) {
            VarPlace::Frame(slot) => {
                let dst = self.func.fresh_reg();
                self.emit(Inst::Load {
                    dst,
                    addr: Address::frame(slot),
                    ty,
                });
                (dst.into(), ty)
            }
            VarPlace::Register(r) => (r.into(), ty),
        }
    }

    fn write_var(&mut self, name: &str, value: Operand, value_ty: Ty) {
        // Declared float variables keep their float type; otherwise adopt the
        // type of the first assigned value.
        self.var_types.entry(name.to_string()).or_insert(value_ty);
        let ty = self.var_ty(name);
        match self.var_place(name) {
            VarPlace::Frame(slot) => {
                self.emit(Inst::Store {
                    src: value,
                    addr: Address::frame(slot),
                    ty,
                });
            }
            VarPlace::Register(r) => {
                self.emit(Inst::Mov { dst: r, src: value });
            }
        }
    }

    fn global(&self, name: &str) -> Result<(GlobalId, Ty), CompileError> {
        self.globals
            .get(name)
            .copied()
            .ok_or_else(|| CompileError::UnknownGlobal(name.to_string()))
    }

    fn global_address(&mut self, name: &str, index: &Expr) -> Result<(Address, Ty), CompileError> {
        let (gid, ty) = self.global(name)?;
        let addr = match self.lower_expr(index)? {
            (Operand::ImmInt(i), _) => Address::global(gid, i),
            (op, _) => {
                let r = self.into_reg(op);
                Address::global_indexed(gid, 0, r, 1)
            }
        };
        Ok((addr, ty))
    }

    // ---- statements --------------------------------------------------------

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Assign { target, value } => {
                let (v, vty) = self.lower_expr(value)?;
                self.store_lvalue(target, v, vty)?;
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let (c, _) = self.lower_expr(cond)?;
                let cond_reg = self.into_reg(c);
                let then_bb = self.start_block();
                let merge_bb = self.start_block();
                let else_bb = if else_branch.is_empty() {
                    merge_bb
                } else {
                    self.start_block()
                };
                self.set_term(Terminator::Branch {
                    cond: cond_reg,
                    taken: then_bb,
                    not_taken: else_bb,
                });

                self.switch_to(then_bb);
                self.lower_stmts(then_branch)?;
                self.finish_branch_into(merge_bb);

                if !else_branch.is_empty() {
                    self.switch_to(else_bb);
                    self.lower_stmts(else_branch)?;
                    self.finish_branch_into(merge_bb);
                }
                self.switch_to(merge_bb);
            }
            Stmt::While { cond, body } => {
                let header = self.start_block();
                let body_bb = self.start_block();
                let exit = self.start_block();
                self.set_term(Terminator::Jump(header));

                self.switch_to(header);
                let (c, _) = self.lower_expr(cond)?;
                let cond_reg = self.into_reg(c);
                self.set_term(Terminator::Branch {
                    cond: cond_reg,
                    taken: body_bb,
                    not_taken: exit,
                });

                self.loop_stack.push((header, exit));
                self.switch_to(body_bb);
                self.lower_stmts(body)?;
                self.finish_branch_into(header);
                self.loop_stack.pop();

                self.switch_to(exit);
            }
            Stmt::For {
                var,
                init,
                limit,
                step,
                body,
            } => {
                // var = init;
                let (init_op, init_ty) = self.lower_expr(init)?;
                self.write_var(var, init_op, init_ty);

                let header = self.start_block();
                let body_bb = self.start_block();
                let latch = self.start_block();
                let exit = self.start_block();
                self.set_term(Terminator::Jump(header));

                // header: if (var < limit) goto body else exit
                self.switch_to(header);
                let (v, vty) = self.read_var(var);
                let (l, lty) = self.lower_expr(limit)?;
                let cmp_ty = if vty == Ty::Float || lty == Ty::Float {
                    Ty::Float
                } else {
                    Ty::Int
                };
                let cond = self.func.fresh_reg();
                self.emit(Inst::Bin {
                    op: BinOp::Lt,
                    ty: cmp_ty,
                    dst: cond,
                    lhs: v,
                    rhs: l,
                });
                self.set_term(Terminator::Branch {
                    cond,
                    taken: body_bb,
                    not_taken: exit,
                });

                // body
                self.loop_stack.push((latch, exit));
                self.switch_to(body_bb);
                self.lower_stmts(body)?;
                self.finish_branch_into(latch);
                self.loop_stack.pop();

                // latch: var = var + step; goto header
                self.switch_to(latch);
                let (v2, v2ty) = self.read_var(var);
                let (s, sty) = self.lower_expr(step)?;
                let add_ty = if v2ty == Ty::Float || sty == Ty::Float {
                    Ty::Float
                } else {
                    Ty::Int
                };
                let next = self.func.fresh_reg();
                self.emit(Inst::Bin {
                    op: BinOp::Add,
                    ty: add_ty,
                    dst: next,
                    lhs: v2,
                    rhs: s,
                });
                self.write_var(var, next.into(), add_ty);
                self.set_term(Terminator::Jump(header));

                self.switch_to(exit);
            }
            Stmt::Call { name, args, dst } => {
                let ret = self.lower_call(name, args, dst.is_some())?;
                if let (Some(d), Some(r)) = (dst, ret) {
                    self.store_lvalue(d, r.into(), Ty::Int)?;
                }
            }
            Stmt::Return(v) => {
                let op = match v {
                    Some(e) => Some(self.lower_expr(e)?.0),
                    None => None,
                };
                self.set_term(Terminator::Return(op));
                let dead = self.start_block();
                self.switch_to(dead);
            }
            Stmt::Print(e) => {
                let (op, _) = self.lower_expr(e)?;
                self.emit(Inst::Print { src: op });
            }
            Stmt::Break => {
                let Some(&(_, exit)) = self.loop_stack.last() else {
                    return Err(CompileError::StrayLoopControl("break"));
                };
                self.set_term(Terminator::Jump(exit));
                let dead = self.start_block();
                self.switch_to(dead);
            }
            Stmt::Continue => {
                let Some(&(cont, _)) = self.loop_stack.last() else {
                    return Err(CompileError::StrayLoopControl("continue"));
                };
                self.set_term(Terminator::Jump(cont));
                let dead = self.start_block();
                self.switch_to(dead);
            }
        }
        Ok(())
    }

    /// Ends the current block with a jump to `target` unless it already has an
    /// explicit terminator (e.g. the branch body ended with `return`/`break`).
    fn finish_branch_into(&mut self, target: BlockId) {
        if matches!(self.func.block(self.cur).term, Terminator::Return(None))
            && !self.block_explicitly_returns(self.cur)
        {
            self.set_term(Terminator::Jump(target));
        }
    }

    /// A `Return(None)` terminator is ambiguous: it is both the default
    /// placeholder of a freshly created block and an explicit `return;`.
    /// Lowering always follows an explicit return with a fresh dead block and
    /// switches to it, so the *current* block at `finish_branch_into` time can
    /// only carry a placeholder.  This helper documents that invariant.
    fn block_explicitly_returns(&self, _b: BlockId) -> bool {
        false
    }

    fn store_lvalue(
        &mut self,
        target: &LValue,
        value: Operand,
        vty: Ty,
    ) -> Result<(), CompileError> {
        match target {
            LValue::Var(name) => {
                self.write_var(name, value, vty);
                Ok(())
            }
            LValue::Index(array, idx) => {
                let (addr, gty) = self.global_address(array, idx)?;
                self.emit(Inst::Store {
                    src: value,
                    addr,
                    ty: gty,
                });
                Ok(())
            }
        }
    }

    fn lower_call(
        &mut self,
        name: &str,
        args: &[Expr],
        want_result: bool,
    ) -> Result<Option<Reg>, CompileError> {
        let Some(&(fid, arity)) = self.funcs.get(name) else {
            return Err(CompileError::UnknownFunction(name.to_string()));
        };
        if args.len() != arity {
            return Err(CompileError::ArityMismatch {
                function: name.to_string(),
                supplied: args.len(),
                expected: arity,
            });
        }
        let mut arg_ops = Vec::with_capacity(args.len());
        for a in args {
            arg_ops.push(self.lower_expr(a)?.0);
        }
        let dst = if want_result {
            Some(self.func.fresh_reg())
        } else {
            None
        };
        self.emit(Inst::Call {
            func: fid,
            args: arg_ops,
            dst,
        });
        Ok(dst)
    }

    // ---- expressions -------------------------------------------------------

    fn lower_expr(&mut self, e: &Expr) -> Result<(Operand, Ty), CompileError> {
        match e {
            Expr::Int(v) => Ok((Operand::ImmInt(*v), Ty::Int)),
            Expr::Float(v) => Ok((Operand::ImmFloat(*v), Ty::Float)),
            Expr::Var(name) => Ok(self.read_var(name)),
            Expr::Index(array, idx) => {
                let (addr, gty) = self.global_address(array, idx)?;
                let dst = self.func.fresh_reg();
                self.emit(Inst::Load { dst, addr, ty: gty });
                Ok((dst.into(), gty))
            }
            Expr::Bin(op, lhs, rhs) => {
                let (l, lty) = self.lower_expr(lhs)?;
                let (r, rty) = self.lower_expr(rhs)?;
                let ty = if lty == Ty::Float || rty == Ty::Float {
                    Ty::Float
                } else {
                    Ty::Int
                };
                let dst = self.func.fresh_reg();
                self.emit(Inst::Bin {
                    op: *op,
                    ty,
                    dst,
                    lhs: l,
                    rhs: r,
                });
                let result_ty = if op.is_comparison() { Ty::Int } else { ty };
                Ok((dst.into(), result_ty))
            }
            Expr::Un(op, inner) => {
                let (v, vty) = self.lower_expr(inner)?;
                let (inst_ty, result_ty) = match op {
                    UnOp::ToFloat => (Ty::Float, Ty::Float),
                    UnOp::ToInt => (Ty::Int, Ty::Int),
                    UnOp::Sqrt | UnOp::Sin | UnOp::Cos | UnOp::Log => (Ty::Float, Ty::Float),
                    UnOp::Not | UnOp::LogicalNot => (Ty::Int, Ty::Int),
                    UnOp::Neg | UnOp::Abs => (vty, vty),
                };
                let dst = self.func.fresh_reg();
                self.emit(Inst::Un {
                    op: *op,
                    ty: inst_ty,
                    dst,
                    src: v,
                });
                Ok((dst.into(), result_ty))
            }
            Expr::Call(name, args) => {
                let reg = self
                    .lower_call(name, args, true)?
                    .expect("call with result");
                Ok((reg.into(), Ty::Int))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_ir::build::FunctionBuilder;
    use bsg_ir::hll::HllGlobal;
    use bsg_ir::visa::InstClass;

    fn lower_main(build: impl FnOnce(&mut FunctionBuilder), mode: LowerMode) -> Program {
        let mut f = FunctionBuilder::new("main");
        build(&mut f);
        let mut p = HllProgram::new();
        p.add_global(HllGlobal::zeroed("buf", 32));
        p.add_function(f.finish());
        lower(&p, mode).expect("lowering succeeds")
    }

    fn count_class(p: &Program, class: InstClass) -> usize {
        p.functions
            .iter()
            .flat_map(|f| f.blocks.iter())
            .flat_map(|b| b.insts.iter())
            .filter(|i| i.class() == class)
            .count()
    }

    #[test]
    fn stack_mode_emits_loads_and_stores_for_scalars() {
        let build = |f: &mut FunctionBuilder| {
            f.assign_var("x", Expr::int(1));
            f.assign_var("y", Expr::add(Expr::var("x"), Expr::var("x")));
            f.ret(Some(Expr::var("y")));
        };
        let stack = lower_main(build, LowerMode::StackScalars);
        let reg = lower_main(build, LowerMode::RegisterScalars);
        assert!(count_class(&stack, InstClass::Load) >= 3);
        assert!(count_class(&stack, InstClass::Store) >= 2);
        assert_eq!(count_class(&reg, InstClass::Load), 0);
        assert_eq!(count_class(&reg, InstClass::Store), 0);
    }

    #[test]
    fn for_loop_structure_has_header_body_latch_exit() {
        let p = lower_main(
            |f| {
                f.for_loop("i", Expr::int(0), Expr::int(4), |b| {
                    b.assign_index("buf", Expr::var("i"), Expr::var("i"));
                });
                f.ret(None);
            },
            LowerMode::RegisterScalars,
        );
        let main = &p.functions[0];
        // entry + header + body + latch + exit = at least 5 blocks
        assert!(main.blocks.len() >= 5);
        let forest = bsg_ir::cfg::LoopForest::compute(main);
        assert_eq!(forest.loops.len(), 1);
        assert!(p.validate().is_empty());
    }

    #[test]
    fn break_and_continue_target_the_right_blocks() {
        let p = lower_main(
            |f| {
                f.for_loop("i", Expr::int(0), Expr::int(10), |b| {
                    b.if_then(Expr::eq(Expr::var("i"), Expr::int(3)), |t| {
                        t.brk();
                    });
                    b.if_then(Expr::eq(Expr::var("i"), Expr::int(1)), |t| {
                        t.cont();
                    });
                    b.assign_index("buf", Expr::var("i"), Expr::int(7));
                });
                f.ret(None);
            },
            LowerMode::RegisterScalars,
        );
        assert!(p.validate().is_empty(), "{:?}", p.validate());
        let forest = bsg_ir::cfg::LoopForest::compute(&p.functions[0]);
        assert_eq!(forest.loops.len(), 1);
    }

    #[test]
    fn stray_break_is_an_error() {
        let mut f = FunctionBuilder::new("main");
        f.body().brk();
        let p = HllProgram::with_main(f.finish());
        assert_eq!(
            lower(&p, LowerMode::RegisterScalars),
            Err(CompileError::StrayLoopControl("break"))
        );
    }

    #[test]
    fn unknown_function_and_arity_errors() {
        let mut f = FunctionBuilder::new("main");
        f.call("nope", vec![]);
        let p = HllProgram::with_main(f.finish());
        assert!(matches!(
            lower(&p, LowerMode::RegisterScalars),
            Err(CompileError::UnknownFunction(_))
        ));

        let mut callee = FunctionBuilder::new("callee");
        callee.param("a");
        callee.ret(Some(Expr::var("a")));
        let mut caller = FunctionBuilder::new("main");
        caller.call("callee", vec![]);
        let mut p2 = HllProgram::with_main(caller.finish());
        p2.add_function(callee.finish());
        assert!(matches!(
            lower(&p2, LowerMode::RegisterScalars),
            Err(CompileError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn missing_entry_is_an_error() {
        let mut p = HllProgram::new();
        p.entry = "main".to_string();
        p.add_function(HllFunction::new("helper"));
        assert!(matches!(
            lower(&p, LowerMode::StackScalars),
            Err(CompileError::MissingEntry(_))
        ));
    }

    #[test]
    fn params_are_spilled_at_o0_but_not_at_o1() {
        let mut callee = FunctionBuilder::new("callee");
        callee.param("a");
        callee.ret(Some(Expr::add(Expr::var("a"), Expr::int(1))));
        let mut main = FunctionBuilder::new("main");
        main.call_assign("r", "callee", vec![Expr::int(41)]);
        main.ret(Some(Expr::var("r")));
        let mut p = HllProgram::with_main(main.finish());
        p.add_function(callee.finish());

        let stack = lower(&p, LowerMode::StackScalars).unwrap();
        let reg = lower(&p, LowerMode::RegisterScalars).unwrap();
        let callee_stack = &stack.functions[stack.function_by_name("callee").unwrap().index()];
        let callee_reg = &reg.functions[reg.function_by_name("callee").unwrap().index()];
        assert!(callee_stack.frame_words >= 1);
        assert_eq!(callee_reg.frame_words, 0);
        assert!(stack.validate().is_empty());
        assert!(reg.validate().is_empty());
    }

    #[test]
    fn float_expressions_get_float_instruction_types() {
        let p = lower_main(
            |f| {
                f.float_var("x");
                f.assign_var("x", Expr::mul(Expr::float(1.5), Expr::float(2.0)));
                f.assign_var("x", Expr::un(UnOp::Sqrt, Expr::var("x")));
                f.ret(None);
            },
            LowerMode::RegisterScalars,
        );
        assert!(count_class(&p, InstClass::FpMul) >= 1);
        assert!(
            count_class(&p, InstClass::FpDiv) >= 1,
            "sqrt classifies as long-latency fp"
        );
    }

    #[test]
    fn while_loop_and_print_lower() {
        let p = lower_main(
            |f| {
                f.assign_var("i", Expr::int(0));
                f.while_loop(Expr::lt(Expr::var("i"), Expr::int(3)), |b| {
                    b.print(Expr::var("i"));
                    b.assign_var("i", Expr::add(Expr::var("i"), Expr::int(1)));
                });
                f.ret(Some(Expr::var("i")));
            },
            LowerMode::StackScalars,
        );
        assert!(p.validate().is_empty());
        assert!(
            count_class(&p, InstClass::Other) >= 1,
            "print lowers to an Other-class inst"
        );
        let forest = bsg_ir::cfg::LoopForest::compute(&p.functions[0]);
        assert_eq!(forest.loops.len(), 1);
    }
}
