//! Register allocation, modeled as spill-slot assignment.
//!
//! The executor places no limit on virtual registers, so "allocation" here
//! serves a single purpose: reproducing the *memory traffic* a real register
//! allocator generates when a function's live values exceed the target ISA's
//! register file (x86's 6 allocatable registers versus x86-64's 14 versus
//! IA-64's large file — Table III machines).  Virtual registers selected for
//! spilling are rewritten so every definition is followed by a store to a
//! dedicated frame slot and every use is preceded by a reload.  The program
//! is unchanged semantically; only its load/store mix changes, which is
//! exactly the ISA effect visible in the paper's instruction-mix and
//! execution-time figures.

use bsg_ir::cfg;
use bsg_ir::program::Function;
use bsg_ir::types::Reg;
use bsg_ir::visa::{Address, Inst};
use bsg_ir::Program;
use std::collections::{HashMap, HashSet};

/// Spills enough registers in every function that the number of values live
/// across block boundaries fits in `allocatable_regs`.  Returns the number of
/// spill loads/stores inserted.
pub fn allocate(program: &mut Program, allocatable_regs: usize) -> usize {
    let mut inserted = 0;
    for f in &mut program.functions {
        inserted += allocate_function(f, allocatable_regs);
    }
    inserted
}

fn allocate_function(f: &mut Function, k: usize) -> usize {
    let globals = cross_block_live_registers(f);
    if globals.len() <= k {
        return 0;
    }
    // Keep the most frequently used values in registers; spill the rest.
    let mut use_counts: HashMap<Reg, usize> = HashMap::new();
    for block in &f.blocks {
        for inst in &block.insts {
            for u in inst.uses() {
                *use_counts.entry(u).or_insert(0) += 1;
            }
            if let Some(d) = inst.def() {
                *use_counts.entry(d).or_insert(0) += 1;
            }
        }
        for u in block.term.uses() {
            *use_counts.entry(u).or_insert(0) += 1;
        }
    }
    let mut candidates: Vec<Reg> = globals.iter().copied().collect();
    candidates.sort_by_key(|r| (use_counts.get(r).copied().unwrap_or(0), r.0));
    let spill_count = globals.len() - k;
    let spilled: Vec<Reg> = candidates.into_iter().take(spill_count).collect();
    spill_registers(f, &spilled)
}

/// Registers that are live on entry to at least one block (i.e. live ranges
/// crossing a block boundary).  Block-local temporaries are never spilled.
fn cross_block_live_registers(f: &Function) -> HashSet<Reg> {
    let adj = cfg::adjacency(f);
    let n = f.blocks.len();
    let mut ue_var = vec![HashSet::<Reg>::new(); n];
    let mut defs = vec![HashSet::<Reg>::new(); n];
    for (bi, block) in f.blocks.iter().enumerate() {
        for inst in &block.insts {
            for u in inst.uses() {
                if !defs[bi].contains(&u) {
                    ue_var[bi].insert(u);
                }
            }
            if let Some(d) = inst.def() {
                defs[bi].insert(d);
            }
        }
        for u in block.term.uses() {
            if !defs[bi].contains(&u) {
                ue_var[bi].insert(u);
            }
        }
    }
    let mut live_in = vec![HashSet::<Reg>::new(); n];
    let mut live_out = vec![HashSet::<Reg>::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..n).rev() {
            let mut out = HashSet::new();
            for s in &adj.succs[bi] {
                out.extend(live_in[s.index()].iter().copied());
            }
            let mut inn = ue_var[bi].clone();
            for r in &out {
                if !defs[bi].contains(r) {
                    inn.insert(*r);
                }
            }
            if out != live_out[bi] || inn != live_in[bi] {
                live_out[bi] = out;
                live_in[bi] = inn;
                changed = true;
            }
        }
    }
    let mut cross = HashSet::new();
    for li in &live_in {
        cross.extend(li.iter().copied());
    }
    // Parameters are live on entry by definition.
    cross.extend(f.params.iter().copied());
    cross
}

/// Rewrites the function so each register in `spilled` is stored to its frame
/// slot after every definition and reloaded before every use.  Returns the
/// number of loads/stores inserted.
fn spill_registers(f: &mut Function, spilled: &[Reg]) -> usize {
    if spilled.is_empty() {
        return 0;
    }
    let mut slots: HashMap<Reg, i64> = HashMap::new();
    for &r in spilled {
        slots.insert(r, f.fresh_frame_slot());
    }
    let mut inserted = 0;

    // Parameters that are spilled must be stored on entry.
    let entry = f.entry;
    let mut entry_stores = Vec::new();
    for &p in &f.params {
        if let Some(&slot) = slots.get(&p) {
            entry_stores.push(Inst::Store {
                src: p.into(),
                addr: Address::frame(slot),
                ty: bsg_ir::types::Ty::Int,
            });
            inserted += 1;
        }
    }

    for (bi, block) in f.blocks.iter_mut().enumerate() {
        let mut new_insts: Vec<Inst> = Vec::with_capacity(block.insts.len() * 2);
        if bi == entry.index() {
            new_insts.extend(entry_stores.iter().cloned());
        }
        for inst in block.insts.drain(..) {
            // Reload every spilled register this instruction reads.
            let mut reloaded = HashSet::new();
            for u in inst.uses() {
                if let Some(&slot) = slots.get(&u) {
                    if reloaded.insert(u) {
                        new_insts.push(Inst::Load {
                            dst: u,
                            addr: Address::frame(slot),
                            ty: bsg_ir::types::Ty::Int,
                        });
                        inserted += 1;
                    }
                }
            }
            let def = inst.def();
            new_insts.push(inst);
            // Store every spilled register this instruction writes.
            if let Some(d) = def {
                if let Some(&slot) = slots.get(&d) {
                    new_insts.push(Inst::Store {
                        src: d.into(),
                        addr: Address::frame(slot),
                        ty: bsg_ir::types::Ty::Int,
                    });
                    inserted += 1;
                }
            }
        }
        // Terminator uses need reloads at the end of the block.
        for u in block.term.uses() {
            if let Some(&slot) = slots.get(&u) {
                new_insts.push(Inst::Load {
                    dst: u,
                    addr: Address::frame(slot),
                    ty: bsg_ir::types::Ty::Int,
                });
                inserted += 1;
            }
        }
        block.insts = new_insts;
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_ir::program::{Function, Program};
    use bsg_ir::types::Ty;
    use bsg_ir::visa::{BinOp, Operand, Terminator};

    /// A function with `n` values live across a loop boundary.
    fn pressure_function(n: u32) -> Program {
        let mut p = Program::new();
        let mut f = Function::new("main");
        let regs: Vec<Reg> = (0..n).map(|_| f.fresh_reg()).collect();
        let acc = f.fresh_reg();
        let cond = f.fresh_reg();
        let b1 = f.add_block();
        let b2 = f.add_block();
        for (i, &r) in regs.iter().enumerate() {
            f.blocks[0].insts.push(Inst::Mov {
                dst: r,
                src: Operand::ImmInt(i as i64),
            });
        }
        f.blocks[0].insts.push(Inst::Mov {
            dst: acc,
            src: Operand::ImmInt(0),
        });
        f.blocks[0].term = Terminator::Jump(b1);
        for &r in &regs {
            f.blocks[b1.index()].insts.push(Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: acc,
                lhs: acc.into(),
                rhs: r.into(),
            });
        }
        f.blocks[b1.index()].insts.push(Inst::Bin {
            op: BinOp::Lt,
            ty: Ty::Int,
            dst: cond,
            lhs: acc.into(),
            rhs: Operand::ImmInt(1000),
        });
        f.blocks[b1.index()].term = Terminator::Branch {
            cond,
            taken: b1,
            not_taken: b2,
        };
        f.blocks[b2.index()].term = Terminator::Return(Some(acc.into()));
        p.add_function(f);
        p
    }

    #[test]
    fn no_spills_when_pressure_fits() {
        let mut p = pressure_function(4);
        assert_eq!(allocate(&mut p, 14), 0);
    }

    #[test]
    fn spills_scale_with_register_pressure_and_stay_valid() {
        let mut p6 = pressure_function(20);
        let mut p14 = pressure_function(20);
        let spills_x86 = allocate(&mut p6, 6);
        let spills_x86_64 = allocate(&mut p14, 14);
        assert!(
            spills_x86 > spills_x86_64,
            "{spills_x86} vs {spills_x86_64}"
        );
        assert!(spills_x86_64 > 0);
        assert!(p6.validate().is_empty());
        assert!(p14.validate().is_empty());
        // Frame slots were allocated for the spilled values.
        assert!(p6.functions[0].frame_words >= 14);
    }

    #[test]
    fn hot_registers_are_kept_in_registers() {
        // `acc` has by far the most uses; it must not be among the spilled
        // registers, i.e. the loop must not reload it on every add.
        let mut p = pressure_function(20);
        allocate(&mut p, 6);
        let f = &p.functions[0];
        let acc = Reg(20);
        let loop_block = &f.blocks[1];
        let reloads_of_acc = loop_block
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Load { dst, .. } if *dst == acc))
            .count();
        assert_eq!(
            reloads_of_acc, 0,
            "the hottest value should stay in a register"
        );
    }

    #[test]
    fn spilled_parameters_are_stored_on_entry() {
        let mut p = Program::new();
        let mut f = Function::new("f");
        let params: Vec<Reg> = (0..10).map(|_| f.fresh_reg()).collect();
        f.params = params.clone();
        let b1 = f.add_block();
        f.blocks[0].term = Terminator::Jump(b1);
        let acc = f.fresh_reg();
        for &r in &params {
            f.blocks[b1.index()].insts.push(Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: acc,
                lhs: acc.into(),
                rhs: r.into(),
            });
        }
        f.blocks[b1.index()].term = Terminator::Return(Some(acc.into()));
        p.add_function(f);
        let inserted = allocate(&mut p, 4);
        assert!(inserted > 0);
        assert!(p.validate().is_empty());
        let entry_stores = p.functions[0].blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Store { .. }))
            .count();
        assert!(
            entry_stores >= 1,
            "spilled parameters are stored in the prologue"
        );
    }
}
