//! Dead-code elimination based on global (whole-function) register liveness.

use bsg_ir::cfg;
use bsg_ir::program::Function;
use bsg_ir::types::Reg;
use bsg_ir::visa::Inst;
use bsg_ir::Program;
use std::collections::HashSet;

/// Removes pure instructions whose results are never used.  Returns the
/// number of instructions removed.
pub fn eliminate_dead_code(program: &mut Program) -> usize {
    let mut removed = 0;
    for f in &mut program.functions {
        loop {
            let n = eliminate_in_function(f);
            removed += n;
            if n == 0 {
                break;
            }
        }
    }
    removed
}

fn eliminate_in_function(f: &mut Function) -> usize {
    let adj = cfg::adjacency(f);
    let n = f.blocks.len();

    // Per-block upward-exposed uses and defs.
    let mut ue_var = vec![HashSet::<Reg>::new(); n];
    let mut defs = vec![HashSet::<Reg>::new(); n];
    for (bi, block) in f.blocks.iter().enumerate() {
        for inst in &block.insts {
            for u in inst.uses() {
                if !defs[bi].contains(&u) {
                    ue_var[bi].insert(u);
                }
            }
            if let Some(d) = inst.def() {
                defs[bi].insert(d);
            }
        }
        for u in block.term.uses() {
            if !defs[bi].contains(&u) {
                ue_var[bi].insert(u);
            }
        }
    }

    // Backward dataflow to a fixed point.
    let mut live_in = vec![HashSet::<Reg>::new(); n];
    let mut live_out = vec![HashSet::<Reg>::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..n).rev() {
            let mut out = HashSet::new();
            for s in &adj.succs[bi] {
                out.extend(live_in[s.index()].iter().copied());
            }
            let mut inn = ue_var[bi].clone();
            for r in &out {
                if !defs[bi].contains(r) {
                    inn.insert(*r);
                }
            }
            if out != live_out[bi] || inn != live_in[bi] {
                live_out[bi] = out;
                live_in[bi] = inn;
                changed = true;
            }
        }
    }

    // Backward sweep within each block.
    let mut removed = 0;
    for (bi, block) in f.blocks.iter_mut().enumerate() {
        let mut live = live_out[bi].clone();
        for u in block.term.uses() {
            live.insert(u);
        }
        let mut keep = vec![true; block.insts.len()];
        for (ii, inst) in block.insts.iter().enumerate().rev() {
            let dead_def = match inst.def() {
                Some(d) => !live.contains(&d),
                None => false,
            };
            let useless_self_move =
                matches!(inst, Inst::Mov { dst, src } if src.as_reg() == Some(*dst));
            if (dead_def && !inst.has_side_effect()) || useless_self_move {
                keep[ii] = false;
                removed += 1;
                continue;
            }
            if let Some(d) = inst.def() {
                live.remove(&d);
            }
            for u in inst.uses() {
                live.insert(u);
            }
        }
        let mut idx = 0;
        block.insts.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_ir::program::{Function, Global, Program};
    use bsg_ir::types::{BlockId, GlobalId, Ty};
    use bsg_ir::visa::{Address, BinOp, Operand, Terminator};

    #[test]
    fn removes_unused_pure_instructions_but_keeps_side_effects() {
        let mut p = Program::new();
        p.add_global(Global::zeroed("g", 8));
        let mut f = Function::new("main");
        let r0 = f.fresh_reg();
        let r1 = f.fresh_reg();
        let r2 = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Mov {
                dst: r0,
                src: Operand::ImmInt(1),
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: r1,
                lhs: r0.into(),
                rhs: Operand::ImmInt(2),
            }, // dead
            Inst::Store {
                src: r0.into(),
                addr: Address::global(GlobalId(0), 0),
                ty: Ty::Int,
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: r2,
                lhs: r0.into(),
                rhs: Operand::ImmInt(3),
            },
            Inst::Mov {
                dst: r2,
                src: r2.into(),
            }, // self move
        ];
        f.blocks[0].term = Terminator::Return(Some(r2.into()));
        p.add_function(f);
        let removed = eliminate_dead_code(&mut p);
        assert_eq!(removed, 2);
        assert_eq!(p.functions[0].blocks[0].insts.len(), 3);
        let _ = r1;
    }

    #[test]
    fn liveness_crosses_block_boundaries() {
        let mut p = Program::new();
        let mut f = Function::new("main");
        let r0 = f.fresh_reg();
        let r1 = f.fresh_reg();
        let b1 = f.add_block();
        f.blocks[0].insts = vec![
            Inst::Mov {
                dst: r0,
                src: Operand::ImmInt(5),
            },
            Inst::Mov {
                dst: r1,
                src: Operand::ImmInt(9),
            },
        ];
        f.blocks[0].term = Terminator::Jump(b1);
        f.blocks[b1.index()].term = Terminator::Return(Some(r0.into()));
        p.add_function(f);
        let removed = eliminate_dead_code(&mut p);
        assert_eq!(removed, 1, "r1 is dead across blocks, r0 is live");
        assert_eq!(p.functions[0].blocks[0].insts.len(), 1);
        assert!(matches!(p.functions[0].blocks[0].insts[0], Inst::Mov { dst, .. } if dst == r0));
        let _ = BlockId(0);
    }

    #[test]
    fn cascading_dead_chains_are_fully_removed() {
        let mut p = Program::new();
        let mut f = Function::new("main");
        let r0 = f.fresh_reg();
        let r1 = f.fresh_reg();
        let r2 = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Mov {
                dst: r0,
                src: Operand::ImmInt(1),
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: r1,
                lhs: r0.into(),
                rhs: Operand::ImmInt(1),
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: r2,
                lhs: r1.into(),
                rhs: Operand::ImmInt(1),
            },
        ];
        f.blocks[0].term = Terminator::Return(None);
        p.add_function(f);
        let removed = eliminate_dead_code(&mut p);
        assert_eq!(removed, 3, "the whole chain is dead");
        assert!(p.functions[0].blocks[0].insts.is_empty());
    }

    #[test]
    fn loop_carried_values_stay_live() {
        // bb0: r0 = 0; jump bb1
        // bb1: r0 = r0 + 1; branch r0 ? bb1 : bb2
        // bb2: return r0
        let mut p = Program::new();
        let mut f = Function::new("main");
        let r0 = f.fresh_reg();
        let b1 = f.add_block();
        let b2 = f.add_block();
        f.blocks[0].insts = vec![Inst::Mov {
            dst: r0,
            src: Operand::ImmInt(0),
        }];
        f.blocks[0].term = Terminator::Jump(b1);
        f.blocks[b1.index()].insts = vec![Inst::Bin {
            op: BinOp::Add,
            ty: Ty::Int,
            dst: r0,
            lhs: r0.into(),
            rhs: Operand::ImmInt(1),
        }];
        f.blocks[b1.index()].term = Terminator::Branch {
            cond: r0,
            taken: b1,
            not_taken: b2,
        };
        f.blocks[b2.index()].term = Terminator::Return(Some(r0.into()));
        p.add_function(f);
        assert_eq!(eliminate_dead_code(&mut p), 0);
    }
}
