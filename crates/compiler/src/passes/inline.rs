//! Function inlining (applied at `-O3`).
//!
//! Only small, single-block, call-free callees are inlined.  That covers the
//! helper-function idiom common in the MiBench-like workloads (bit tricks,
//! small fixed-point helpers) while keeping the transformation simple enough
//! to be obviously semantics-preserving: the callee body is spliced in with
//! its registers and frame slots renamed into the caller's namespace.

use bsg_ir::types::{FuncId, Reg};
use bsg_ir::visa::{Address, Inst, MemBase, Operand, Terminator};
use bsg_ir::Program;

/// Maximum number of instructions in an inlinable callee.
pub const MAX_INLINE_INSTS: usize = 24;

/// Inlines eligible call sites; returns the number of calls inlined.
pub fn inline_small_functions(program: &mut Program) -> usize {
    let mut inlined = 0;
    let num_functions = program.functions.len();
    for caller_idx in 0..num_functions {
        while let Some((block_idx, inst_idx, callee_id)) = find_inlinable_call(program, caller_idx)
        {
            splice(program, caller_idx, block_idx, inst_idx, callee_id);
            inlined += 1;
        }
    }
    inlined
}

/// Returns `true` if `callee` may be inlined at all.
fn eligible(program: &Program, callee: FuncId, caller_idx: usize) -> bool {
    if callee.index() == caller_idx {
        return false;
    }
    let f = program.function(callee);
    f.blocks.len() == 1
        && f.blocks[0].insts.len() <= MAX_INLINE_INSTS
        && matches!(f.blocks[0].term, Terminator::Return(_))
        && f.blocks[0]
            .insts
            .iter()
            .all(|i| !matches!(i, Inst::Call { .. }))
}

fn find_inlinable_call(program: &Program, caller_idx: usize) -> Option<(usize, usize, FuncId)> {
    let caller = &program.functions[caller_idx];
    for (bi, block) in caller.blocks.iter().enumerate() {
        for (ii, inst) in block.insts.iter().enumerate() {
            if let Inst::Call { func, .. } = inst {
                if eligible(program, *func, caller_idx) {
                    return Some((bi, ii, *func));
                }
            }
        }
    }
    None
}

fn splice(
    program: &mut Program,
    caller_idx: usize,
    block_idx: usize,
    inst_idx: usize,
    callee_id: FuncId,
) {
    let callee = program.function(callee_id).clone();
    let caller = &mut program.functions[caller_idx];

    let reg_base = caller.num_regs;
    let frame_base = caller.frame_words as i64;
    caller.num_regs += callee.num_regs;
    caller.frame_words += callee.frame_words;

    let rename_reg = |r: Reg| Reg(r.0 + reg_base);
    let rename_addr = |a: Address| Address {
        base: a.base,
        offset: if a.base == MemBase::Frame {
            a.offset + frame_base
        } else {
            a.offset
        },
        index: a.index.map(rename_reg),
        scale: a.scale,
    };
    let rename_operand = |op: Operand| match op {
        Operand::Reg(r) => Operand::Reg(rename_reg(r)),
        Operand::Mem(a) => Operand::Mem(rename_addr(a)),
        other => other,
    };
    let rename_inst = |inst: &Inst| -> Inst {
        match inst {
            Inst::Bin {
                op,
                ty,
                dst,
                lhs,
                rhs,
            } => Inst::Bin {
                op: *op,
                ty: *ty,
                dst: rename_reg(*dst),
                lhs: rename_operand(*lhs),
                rhs: rename_operand(*rhs),
            },
            Inst::Un { op, ty, dst, src } => Inst::Un {
                op: *op,
                ty: *ty,
                dst: rename_reg(*dst),
                src: rename_operand(*src),
            },
            Inst::Mov { dst, src } => Inst::Mov {
                dst: rename_reg(*dst),
                src: rename_operand(*src),
            },
            Inst::Load { dst, addr, ty } => Inst::Load {
                dst: rename_reg(*dst),
                addr: rename_addr(*addr),
                ty: *ty,
            },
            Inst::Store { src, addr, ty } => Inst::Store {
                src: rename_operand(*src),
                addr: rename_addr(*addr),
                ty: *ty,
            },
            Inst::Call { func, args, dst } => Inst::Call {
                func: *func,
                args: args.iter().map(|a| rename_operand(*a)).collect(),
                dst: dst.map(rename_reg),
            },
            Inst::Print { src } => Inst::Print {
                src: rename_operand(*src),
            },
            Inst::Nop => Inst::Nop,
        }
    };

    // Build the replacement sequence: parameter copies, renamed body, result copy.
    let block = &mut caller.blocks[block_idx];
    let call = block.insts[inst_idx].clone();
    let Inst::Call { args, dst, .. } = call else {
        unreachable!("find_inlinable_call found a call")
    };

    let mut seq = Vec::new();
    for (param, arg) in callee.params.iter().zip(&args) {
        seq.push(Inst::Mov {
            dst: rename_reg(*param),
            src: *arg,
        });
    }
    for inst in &callee.blocks[0].insts {
        seq.push(rename_inst(inst));
    }
    if let Some(d) = dst {
        let src = match &callee.blocks[0].term {
            Terminator::Return(Some(op)) => rename_operand(*op),
            _ => Operand::ImmInt(0),
        };
        seq.push(Inst::Mov { dst: d, src });
    }

    block.insts.splice(inst_idx..=inst_idx, seq);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_ir::program::{Function, Program};
    use bsg_ir::types::Ty;
    use bsg_ir::visa::BinOp;

    /// callee(a) { return a * 2 + 1 }
    fn make_callee() -> Function {
        let mut f = Function::new("callee");
        let a = f.fresh_reg();
        let t0 = f.fresh_reg();
        let t1 = f.fresh_reg();
        f.params = vec![a];
        f.blocks[0].insts = vec![
            Inst::Bin {
                op: BinOp::Mul,
                ty: Ty::Int,
                dst: t0,
                lhs: a.into(),
                rhs: Operand::ImmInt(2),
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: t1,
                lhs: t0.into(),
                rhs: Operand::ImmInt(1),
            },
        ];
        f.blocks[0].term = Terminator::Return(Some(t1.into()));
        f
    }

    fn make_program(callee: Function) -> Program {
        let mut p = Program::new();
        let mut main = Function::new("main");
        let r = main.fresh_reg();
        main.blocks[0].insts = vec![Inst::Call {
            func: FuncId(1),
            args: vec![Operand::ImmInt(20)],
            dst: Some(r),
        }];
        main.blocks[0].term = Terminator::Return(Some(r.into()));
        p.add_function(main);
        p.add_function(callee);
        p
    }

    #[test]
    fn inlines_single_block_callee_and_remains_valid() {
        let mut p = make_program(make_callee());
        let inlined = inline_small_functions(&mut p);
        assert_eq!(inlined, 1);
        assert!(p.validate().is_empty(), "{:?}", p.validate());
        let main = &p.functions[0];
        assert!(
            main.blocks[0]
                .insts
                .iter()
                .all(|i| !matches!(i, Inst::Call { .. })),
            "the call must be gone"
        );
        // param mov + 2 body insts + result mov
        assert_eq!(main.blocks[0].insts.len(), 4);
        assert!(main.num_regs >= 4);
    }

    #[test]
    fn multi_block_callees_are_not_inlined() {
        let mut callee = make_callee();
        callee.add_block();
        let mut p = make_program(callee);
        assert_eq!(inline_small_functions(&mut p), 0);
    }

    #[test]
    fn recursive_calls_are_not_inlined() {
        let mut p = Program::new();
        let mut f = Function::new("main");
        let r = f.fresh_reg();
        f.blocks[0].insts = vec![Inst::Call {
            func: FuncId(0),
            args: vec![],
            dst: Some(r),
        }];
        f.blocks[0].term = Terminator::Return(Some(r.into()));
        p.add_function(f);
        assert_eq!(inline_small_functions(&mut p), 0);
    }

    #[test]
    fn oversized_callees_are_not_inlined() {
        let mut callee = Function::new("callee");
        let a = callee.fresh_reg();
        callee.params = vec![a];
        let mut prev = a;
        for _ in 0..(MAX_INLINE_INSTS + 1) {
            let next = callee.fresh_reg();
            callee.blocks[0].insts.push(Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: next,
                lhs: prev.into(),
                rhs: Operand::ImmInt(1),
            });
            prev = next;
        }
        callee.blocks[0].term = Terminator::Return(Some(prev.into()));
        let mut p = make_program(callee);
        assert_eq!(inline_small_functions(&mut p), 0);
    }

    #[test]
    fn frame_slots_are_renumbered() {
        let mut callee = Function::new("callee");
        let a = callee.fresh_reg();
        let t = callee.fresh_reg();
        callee.params = vec![a];
        let slot = callee.fresh_frame_slot();
        callee.blocks[0].insts = vec![
            Inst::Store {
                src: a.into(),
                addr: Address::frame(slot),
                ty: Ty::Int,
            },
            Inst::Load {
                dst: t,
                addr: Address::frame(slot),
                ty: Ty::Int,
            },
        ];
        callee.blocks[0].term = Terminator::Return(Some(t.into()));

        let mut p = make_program(callee);
        // Give the caller an existing frame slot so the offset is visible.
        p.functions[0].frame_words = 3;
        inline_small_functions(&mut p);
        let main = &p.functions[0];
        assert_eq!(main.frame_words, 4);
        let store = main.blocks[0]
            .insts
            .iter()
            .find(|i| matches!(i, Inst::Store { .. }))
            .unwrap();
        if let Inst::Store { addr, .. } = store {
            assert_eq!(addr.offset, 3, "callee slot 0 becomes caller slot 3");
        }
    }
}
