//! Block-local scalar optimizations: copy propagation, constant folding,
//! strength reduction and common-subexpression / redundant-load elimination.
//!
//! All four walk one basic block at a time and never move instructions, so
//! they are trivially control-flow safe; the cross-block opportunities they
//! miss are largely irrelevant for the first-order effects the paper's
//! figures depend on (the dominant effect is register promotion at `-O1`).

use bsg_ir::eval::{eval_bin, eval_un};
use bsg_ir::types::{Reg, Ty, Value};
use bsg_ir::visa::{Address, BinOp, Inst, Operand, Terminator};
use bsg_ir::Program;
use std::collections::HashMap;

/// Rewrites uses of registers that are plain copies of another register or of
/// an immediate.  Also folds branches whose condition became a known
/// constant.  Returns the number of operands rewritten.
pub fn propagate_copies(program: &mut Program) -> usize {
    let mut rewritten = 0;
    for f in &mut program.functions {
        for block in &mut f.blocks {
            // reg -> operand it is currently a copy of
            let mut copies: HashMap<Reg, Operand> = HashMap::new();

            let resolve =
                |copies: &HashMap<Reg, Operand>, op: &mut Operand, count: &mut usize| match op {
                    Operand::Reg(r) => {
                        if let Some(replacement) = copies.get(r) {
                            *op = *replacement;
                            *count += 1;
                        }
                    }
                    Operand::Mem(addr) => {
                        if let Some(idx) = addr.index {
                            match copies.get(&idx) {
                                Some(Operand::Reg(r2)) => {
                                    addr.index = Some(*r2);
                                    *count += 1;
                                }
                                Some(Operand::ImmInt(c)) => {
                                    addr.offset += *c * addr.scale;
                                    addr.index = None;
                                    *count += 1;
                                }
                                _ => {}
                            }
                        }
                    }
                    _ => {}
                };
            let resolve_addr =
                |copies: &HashMap<Reg, Operand>, addr: &mut Address, count: &mut usize| {
                    if let Some(idx) = addr.index {
                        match copies.get(&idx) {
                            Some(Operand::Reg(r2)) => {
                                addr.index = Some(*r2);
                                *count += 1;
                            }
                            Some(Operand::ImmInt(c)) => {
                                addr.offset += *c * addr.scale;
                                addr.index = None;
                                *count += 1;
                            }
                            _ => {}
                        }
                    }
                };
            let invalidate = |copies: &mut HashMap<Reg, Operand>, def: Reg| {
                copies.remove(&def);
                copies.retain(|_, v| v.as_reg() != Some(def));
            };

            for inst in &mut block.insts {
                // First rewrite the uses with the facts gathered so far.
                match inst {
                    Inst::Bin { lhs, rhs, .. } => {
                        resolve(&copies, lhs, &mut rewritten);
                        resolve(&copies, rhs, &mut rewritten);
                    }
                    Inst::Un { src, .. } | Inst::Mov { src, .. } | Inst::Print { src } => {
                        resolve(&copies, src, &mut rewritten)
                    }
                    Inst::Load { addr, .. } => resolve_addr(&copies, addr, &mut rewritten),
                    Inst::Store { src, addr, .. } => {
                        resolve(&copies, src, &mut rewritten);
                        resolve_addr(&copies, addr, &mut rewritten);
                    }
                    Inst::Call { args, .. } => {
                        for a in args {
                            resolve(&copies, a, &mut rewritten);
                        }
                    }
                    Inst::Nop => {}
                }
                // Then update the copy facts with this instruction's def.
                if let Some(def) = inst.def() {
                    invalidate(&mut copies, def);
                    if let Inst::Mov { dst, src } = inst {
                        if !matches!(src, Operand::Mem(_)) && src.as_reg() != Some(*dst) {
                            copies.insert(*dst, *src);
                        }
                    }
                }
            }

            // Branch folding / condition rewriting with the end-of-block facts.
            if let Terminator::Branch {
                cond,
                taken,
                not_taken,
            } = block.term.clone()
            {
                match copies.get(&cond) {
                    Some(Operand::ImmInt(v)) => {
                        block.term = Terminator::Jump(if *v != 0 { taken } else { not_taken });
                        rewritten += 1;
                    }
                    Some(Operand::Reg(r)) => {
                        block.term = Terminator::Branch {
                            cond: *r,
                            taken,
                            not_taken,
                        };
                        rewritten += 1;
                    }
                    _ => {}
                }
            }
            if let Terminator::Return(Some(op)) = &mut block.term {
                let mut c = 0;
                resolve(&copies, op, &mut c);
                rewritten += c;
            }
        }
    }
    rewritten
}

/// Folds instructions whose operands are all immediates, plus a handful of
/// integer algebraic identities (`x+0`, `x*1`, `x*0`, `x&0`, ...).
/// Returns the number of instructions folded.
pub fn fold_constants(program: &mut Program) -> usize {
    let mut folded = 0;
    for f in &mut program.functions {
        for block in &mut f.blocks {
            for inst in &mut block.insts {
                let replacement = match inst {
                    Inst::Bin {
                        op,
                        ty,
                        dst,
                        lhs,
                        rhs,
                    } => match (operand_value(lhs), operand_value(rhs)) {
                        (Some(a), Some(b)) => Some(Inst::Mov {
                            dst: *dst,
                            src: value_operand(eval_bin(*op, *ty, a, b)),
                        }),
                        _ => algebraic_identity(*op, *ty, *dst, lhs, rhs),
                    },
                    Inst::Un { op, ty, dst, src } => operand_value(src).map(|v| Inst::Mov {
                        dst: *dst,
                        src: value_operand(eval_un(*op, *ty, v)),
                    }),
                    _ => None,
                };
                if let Some(new_inst) = replacement {
                    *inst = new_inst;
                    folded += 1;
                }
            }
        }
    }
    folded
}

/// Rewrites integer multiplications by powers of two into shifts.
/// Returns the number of instructions rewritten.
pub fn reduce_strength(program: &mut Program) -> usize {
    let mut reduced = 0;
    for f in &mut program.functions {
        for block in &mut f.blocks {
            for inst in &mut block.insts {
                if let Inst::Bin {
                    op: op @ BinOp::Mul,
                    ty: Ty::Int,
                    lhs,
                    rhs,
                    ..
                } = inst
                {
                    // Normalize the constant to the right-hand side.
                    if matches!(lhs, Operand::ImmInt(_)) && !matches!(rhs, Operand::ImmInt(_)) {
                        std::mem::swap(lhs, rhs);
                    }
                    if let Operand::ImmInt(c) = rhs {
                        if *c > 1 && (*c as u64).is_power_of_two() {
                            *rhs = Operand::ImmInt((*c as u64).trailing_zeros() as i64);
                            *op = BinOp::Shl;
                            reduced += 1;
                        }
                    }
                }
            }
        }
    }
    reduced
}

/// Local common-subexpression and redundant-load elimination.
/// Returns the number of instructions replaced by register copies.
pub fn eliminate_common_subexpressions(program: &mut Program) -> usize {
    #[derive(Hash, PartialEq, Eq, Clone)]
    enum Key {
        Bin(BinOp, Ty, OperandKey, OperandKey),
        Un(bsg_ir::visa::UnOp, Ty, OperandKey),
        Load(MemKey),
    }
    #[derive(Hash, PartialEq, Eq, Clone, Copy)]
    enum OperandKey {
        Reg(u32),
        Int(i64),
        Float(u64),
    }
    #[derive(Hash, PartialEq, Eq, Clone, Copy)]
    struct MemKey {
        base: bsg_ir::visa::MemBase,
        offset: i64,
        index: Option<u32>,
        scale: i64,
    }

    fn operand_key(op: &Operand) -> Option<OperandKey> {
        match op {
            Operand::Reg(r) => Some(OperandKey::Reg(r.0)),
            Operand::ImmInt(v) => Some(OperandKey::Int(*v)),
            Operand::ImmFloat(v) => Some(OperandKey::Float(v.to_bits())),
            Operand::Mem(_) => None,
        }
    }
    fn mem_key(a: &Address) -> MemKey {
        MemKey {
            base: a.base,
            offset: a.offset,
            index: a.index.map(|r| r.0),
            scale: a.scale,
        }
    }
    fn key_mentions(key: &Key, reg: Reg) -> bool {
        let opk = OperandKey::Reg(reg.0);
        match key {
            Key::Bin(_, _, a, b) => *a == opk || *b == opk,
            Key::Un(_, _, a) => *a == opk,
            Key::Load(m) => m.index == Some(reg.0),
        }
    }

    let mut removed = 0;
    for f in &mut program.functions {
        for block in &mut f.blocks {
            let mut available: HashMap<Key, Reg> = HashMap::new();
            for inst in &mut block.insts {
                // Compute this instruction's key before considering its def.
                let key = match inst {
                    Inst::Bin {
                        op, ty, lhs, rhs, ..
                    } => {
                        match (operand_key(lhs), operand_key(rhs)) {
                            (Some(mut a), Some(mut b)) => {
                                if op.is_commutative() {
                                    // Canonical order for commutative operators.
                                    let ord = |k: &OperandKey| match k {
                                        OperandKey::Reg(r) => (0u8, *r as i64, 0u64),
                                        OperandKey::Int(v) => (1, *v, 0),
                                        OperandKey::Float(bits) => (2, 0, *bits),
                                    };
                                    if ord(&b) < ord(&a) {
                                        std::mem::swap(&mut a, &mut b);
                                    }
                                }
                                Some(Key::Bin(*op, *ty, a, b))
                            }
                            _ => None,
                        }
                    }
                    Inst::Un { op, ty, src, .. } => operand_key(src).map(|k| Key::Un(*op, *ty, k)),
                    Inst::Load { addr, .. } => Some(Key::Load(mem_key(addr))),
                    _ => None,
                };

                let mut cacheable: Option<(Key, Reg)> = None;
                if let (Some(k), Some(dst)) = (key, inst.def()) {
                    if let Some(&prev) = available.get(&k) {
                        if prev != dst {
                            *inst = Inst::Mov {
                                dst,
                                src: prev.into(),
                            };
                            removed += 1;
                        }
                    } else {
                        cacheable = Some((k, dst));
                    }
                }

                // Memory writes and calls invalidate cached loads.
                if inst.writes_memory() || matches!(inst, Inst::Call { .. }) {
                    available.retain(|k, _| !matches!(k, Key::Load(_)));
                }
                // A redefined register invalidates both cached results held in
                // it and cached expressions computed from its old value.
                if let Some(d) = inst.def() {
                    available.retain(|k, v| *v != d && !key_mentions(k, d));
                }
                // Record the new fact last so self-referential defs like
                // `r1 = r1 + r2` are never cached.
                if let Some((k, dst)) = cacheable {
                    if !key_mentions(&k, dst) {
                        available.insert(k, dst);
                    }
                }
            }
        }
    }

    removed
}

fn operand_value(op: &Operand) -> Option<Value> {
    match op {
        Operand::ImmInt(v) => Some(Value::Int(*v)),
        Operand::ImmFloat(v) => Some(Value::Float(*v)),
        _ => None,
    }
}

fn value_operand(v: Value) -> Operand {
    match v {
        Value::Int(i) => Operand::ImmInt(i),
        Value::Float(f) => Operand::ImmFloat(f),
    }
}

fn algebraic_identity(op: BinOp, ty: Ty, dst: Reg, lhs: &Operand, rhs: &Operand) -> Option<Inst> {
    if ty != Ty::Int {
        return None; // NaN / signed-zero semantics make float identities unsafe.
    }
    let lhs_const = match lhs {
        Operand::ImmInt(v) => Some(*v),
        _ => None,
    };
    let rhs_const = match rhs {
        Operand::ImmInt(v) => Some(*v),
        _ => None,
    };
    let mov = |src: Operand| Some(Inst::Mov { dst, src });
    match (op, lhs_const, rhs_const) {
        (BinOp::Add, Some(0), None) => mov(*rhs),
        (BinOp::Add, None, Some(0))
        | (BinOp::Sub, None, Some(0))
        | (BinOp::Shl, None, Some(0))
        | (BinOp::Shr, None, Some(0))
        | (BinOp::Or, None, Some(0))
        | (BinOp::Xor, None, Some(0)) => mov(*lhs),
        (BinOp::Mul, Some(1), None) => mov(*rhs),
        (BinOp::Mul, None, Some(1)) | (BinOp::Div, None, Some(1)) => mov(*lhs),
        (BinOp::Mul, Some(0), None)
        | (BinOp::Mul, None, Some(0))
        | (BinOp::And, None, Some(0))
        | (BinOp::And, Some(0), None) => mov(Operand::ImmInt(0)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_ir::program::{Function, Global};
    use bsg_ir::types::GlobalId;
    use bsg_ir::visa::UnOp;

    fn single_block_program(build: impl FnOnce(&mut Function) -> Vec<Inst>) -> Program {
        let mut p = Program::new();
        p.add_global(Global::zeroed("g", 64));
        let mut f = Function::new("main");
        let insts = build(&mut f);
        f.blocks[0].insts = insts;
        p.add_function(f);
        p
    }

    #[test]
    fn copies_feed_constant_folding() {
        let mut p = single_block_program(|f| {
            let r0 = f.fresh_reg();
            let r1 = f.fresh_reg();
            let r2 = f.fresh_reg();
            vec![
                Inst::Mov {
                    dst: r0,
                    src: Operand::ImmInt(6),
                },
                Inst::Mov {
                    dst: r1,
                    src: r0.into(),
                },
                Inst::Bin {
                    op: BinOp::Mul,
                    ty: Ty::Int,
                    dst: r2,
                    lhs: r1.into(),
                    rhs: Operand::ImmInt(7),
                },
                Inst::Print { src: r2.into() },
            ]
        });
        let copies = propagate_copies(&mut p);
        assert!(copies >= 2);
        let folded = fold_constants(&mut p);
        assert_eq!(folded, 1);
        assert!(matches!(
            p.functions[0].blocks[0].insts[2],
            Inst::Mov {
                src: Operand::ImmInt(42),
                ..
            }
        ));
    }

    #[test]
    fn branch_on_constant_condition_is_folded_to_a_jump() {
        let mut p = single_block_program(|f| {
            let c = f.fresh_reg();
            vec![Inst::Mov {
                dst: c,
                src: Operand::ImmInt(0),
            }]
        });
        let b1 = p.functions[0].add_block();
        let b2 = p.functions[0].add_block();
        let cond = Reg(0);
        p.functions[0].blocks[0].term = Terminator::Branch {
            cond,
            taken: b1,
            not_taken: b2,
        };
        propagate_copies(&mut p);
        assert_eq!(p.functions[0].blocks[0].term, Terminator::Jump(b2));
    }

    #[test]
    fn strength_reduction_rewrites_power_of_two_multiplies_only() {
        let mut p = single_block_program(|f| {
            let r0 = f.fresh_reg();
            let r1 = f.fresh_reg();
            let r2 = f.fresh_reg();
            let r3 = f.fresh_reg();
            vec![
                Inst::Bin {
                    op: BinOp::Mul,
                    ty: Ty::Int,
                    dst: r1,
                    lhs: r0.into(),
                    rhs: Operand::ImmInt(8),
                },
                Inst::Bin {
                    op: BinOp::Mul,
                    ty: Ty::Int,
                    dst: r2,
                    lhs: Operand::ImmInt(16),
                    rhs: r0.into(),
                },
                Inst::Bin {
                    op: BinOp::Mul,
                    ty: Ty::Int,
                    dst: r3,
                    lhs: r0.into(),
                    rhs: Operand::ImmInt(6),
                },
            ]
        });
        assert_eq!(reduce_strength(&mut p), 2);
        assert!(matches!(
            p.functions[0].blocks[0].insts[0],
            Inst::Bin {
                op: BinOp::Shl,
                rhs: Operand::ImmInt(3),
                ..
            }
        ));
        assert!(matches!(
            p.functions[0].blocks[0].insts[1],
            Inst::Bin {
                op: BinOp::Shl,
                rhs: Operand::ImmInt(4),
                ..
            }
        ));
        assert!(matches!(
            p.functions[0].blocks[0].insts[2],
            Inst::Bin { op: BinOp::Mul, .. }
        ));
    }

    #[test]
    fn algebraic_identities() {
        let mut p = single_block_program(|f| {
            let r0 = f.fresh_reg();
            let r1 = f.fresh_reg();
            let r2 = f.fresh_reg();
            vec![
                Inst::Bin {
                    op: BinOp::Add,
                    ty: Ty::Int,
                    dst: r1,
                    lhs: r0.into(),
                    rhs: Operand::ImmInt(0),
                },
                Inst::Bin {
                    op: BinOp::Mul,
                    ty: Ty::Int,
                    dst: r2,
                    lhs: r0.into(),
                    rhs: Operand::ImmInt(0),
                },
                Inst::Bin {
                    op: BinOp::Add,
                    ty: Ty::Float,
                    dst: r2,
                    lhs: r0.into(),
                    rhs: Operand::ImmFloat(0.0),
                },
            ]
        });
        assert_eq!(fold_constants(&mut p), 2, "float identity must not fold");
    }

    #[test]
    fn cse_removes_repeated_expressions_and_loads() {
        let g = GlobalId(0);
        let mut p = single_block_program(|f| {
            let a = f.fresh_reg();
            let b = f.fresh_reg();
            let x = f.fresh_reg();
            let y = f.fresh_reg();
            let l1 = f.fresh_reg();
            let l2 = f.fresh_reg();
            let l3 = f.fresh_reg();
            vec![
                Inst::Bin {
                    op: BinOp::Add,
                    ty: Ty::Int,
                    dst: x,
                    lhs: a.into(),
                    rhs: b.into(),
                },
                Inst::Bin {
                    op: BinOp::Add,
                    ty: Ty::Int,
                    dst: y,
                    lhs: b.into(),
                    rhs: a.into(),
                },
                Inst::Load {
                    dst: l1,
                    addr: Address::global(g, 3),
                    ty: Ty::Int,
                },
                Inst::Load {
                    dst: l2,
                    addr: Address::global(g, 3),
                    ty: Ty::Int,
                },
                Inst::Store {
                    src: x.into(),
                    addr: Address::global(g, 0),
                    ty: Ty::Int,
                },
                Inst::Load {
                    dst: l3,
                    addr: Address::global(g, 3),
                    ty: Ty::Int,
                },
            ]
        });
        let removed = eliminate_common_subexpressions(&mut p);
        assert_eq!(removed, 2, "commutative add and one redundant load");
        assert!(matches!(
            p.functions[0].blocks[0].insts[1],
            Inst::Mov { .. }
        ));
        assert!(matches!(
            p.functions[0].blocks[0].insts[3],
            Inst::Mov { .. }
        ));
        // The load after the store must NOT be removed.
        assert!(matches!(
            p.functions[0].blocks[0].insts[5],
            Inst::Load { .. }
        ));
    }

    #[test]
    fn cse_invalidates_when_an_operand_is_redefined() {
        let mut p = single_block_program(|f| {
            let a = f.fresh_reg();
            let x = f.fresh_reg();
            let y = f.fresh_reg();
            vec![
                Inst::Bin {
                    op: BinOp::Add,
                    ty: Ty::Int,
                    dst: x,
                    lhs: a.into(),
                    rhs: Operand::ImmInt(1),
                },
                Inst::Bin {
                    op: BinOp::Add,
                    ty: Ty::Int,
                    dst: a,
                    lhs: a.into(),
                    rhs: Operand::ImmInt(5),
                },
                Inst::Bin {
                    op: BinOp::Add,
                    ty: Ty::Int,
                    dst: y,
                    lhs: a.into(),
                    rhs: Operand::ImmInt(1),
                },
            ]
        });
        assert_eq!(eliminate_common_subexpressions(&mut p), 0);
        let _ = (Reg(0), UnOp::Neg);
    }

    #[test]
    fn constant_unary_folds() {
        let mut p = single_block_program(|f| {
            let r = f.fresh_reg();
            vec![Inst::Un {
                op: UnOp::Neg,
                ty: Ty::Int,
                dst: r,
                src: Operand::ImmInt(5),
            }]
        });
        assert_eq!(fold_constants(&mut p), 1);
        assert!(matches!(
            p.functions[0].blocks[0].insts[0],
            Inst::Mov {
                src: Operand::ImmInt(-5),
                ..
            }
        ));
    }
}
