//! Local instruction scheduling (list scheduling within basic blocks).
//!
//! Reordering independent instructions does not change what a block computes,
//! but it does change the distance between dependent instructions.  Out-of-
//! order machines are largely insensitive to that distance; the in-order EPIC
//! model of `bsg-uarch` is very sensitive to it — which is exactly the
//! Itanium-vs-x86 compiler-sensitivity effect in Figure 11 of the paper.

use bsg_ir::visa::{Inst, InstClass};
use bsg_ir::Program;
use std::collections::HashMap;

/// Schedules every block of every function; returns the number of
/// instructions whose position changed.
pub fn schedule_blocks(program: &mut Program) -> usize {
    let mut moved = 0;
    for f in &mut program.functions {
        for block in &mut f.blocks {
            let order = schedule_order(&block.insts);
            let changed = order.iter().enumerate().filter(|(i, &o)| *i != o).count();
            if changed > 0 {
                let new_insts: Vec<Inst> = order.iter().map(|&i| block.insts[i].clone()).collect();
                block.insts = new_insts;
                moved += changed;
            }
        }
    }
    moved
}

/// Issue latency used as the scheduling priority (critical-path height).
fn latency(class: InstClass) -> u32 {
    match class {
        InstClass::Load => 3,
        InstClass::IntMul => 3,
        InstClass::IntDiv => 12,
        InstClass::FpAdd => 3,
        InstClass::FpMul => 4,
        InstClass::FpDiv => 12,
        _ => 1,
    }
}

/// Computes a dependence-respecting order of the block's instructions.
fn schedule_order(insts: &[Inst]) -> Vec<usize> {
    let n = insts.len();
    if n <= 2 {
        return (0..n).collect();
    }

    // Build dependence edges i -> j (i must precede j).
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let add_edge =
        |from: usize, to: usize, preds: &mut Vec<Vec<usize>>, succs: &mut Vec<Vec<usize>>| {
            if !preds[to].contains(&from) {
                preds[to].push(from);
                succs[from].push(to);
            }
        };

    let is_barrier = |i: &Inst| matches!(i, Inst::Call { .. } | Inst::Print { .. });

    let mut last_def: HashMap<u32, usize> = HashMap::new();
    let mut last_uses: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut last_store: Option<usize> = None;
    let mut loads_since_store: Vec<usize> = Vec::new();
    let mut last_barrier: Option<usize> = None;
    let mut since_barrier: Vec<usize> = Vec::new();

    for (j, inst) in insts.iter().enumerate() {
        // Register dependences.
        for u in inst.uses() {
            if let Some(&d) = last_def.get(&u.0) {
                add_edge(d, j, &mut preds, &mut succs); // RAW
            }
        }
        if let Some(d) = inst.def() {
            if let Some(&prev) = last_def.get(&d.0) {
                add_edge(prev, j, &mut preds, &mut succs); // WAW
            }
            if let Some(users) = last_uses.get(&d.0) {
                for &u in users {
                    if u != j {
                        add_edge(u, j, &mut preds, &mut succs); // WAR
                    }
                }
            }
        }
        // Memory dependences: stores order with all memory ops; loads only with stores.
        let reads = inst.reads_memory();
        let writes = inst.writes_memory();
        if reads || writes {
            if let Some(s) = last_store {
                add_edge(s, j, &mut preds, &mut succs);
            }
        }
        if writes {
            for &l in &loads_since_store {
                add_edge(l, j, &mut preds, &mut succs);
            }
        }
        // Barriers (calls, prints) order with everything around them.
        if let Some(b) = last_barrier {
            add_edge(b, j, &mut preds, &mut succs);
        }
        if is_barrier(inst) {
            for &k in &since_barrier {
                add_edge(k, j, &mut preds, &mut succs);
            }
        }

        // Update trackers.
        for u in inst.uses() {
            last_uses.entry(u.0).or_default().push(j);
        }
        if let Some(d) = inst.def() {
            last_def.insert(d.0, j);
            last_uses.insert(d.0, vec![]);
        }
        if writes {
            last_store = Some(j);
            loads_since_store.clear();
        }
        if reads && !writes {
            loads_since_store.push(j);
        }
        if is_barrier(inst) {
            last_barrier = Some(j);
            since_barrier.clear();
        } else {
            since_barrier.push(j);
        }
    }

    // Critical-path height of each node.
    let mut height = vec![0u32; n];
    for i in (0..n).rev() {
        let own = latency(insts[i].class());
        let max_succ = succs[i].iter().map(|&s| height[s]).max().unwrap_or(0);
        height[i] = own + max_succ;
    }

    // Greedy list scheduling: among ready instructions pick the one with the
    // greatest height (ties broken by original position for determinism).
    let mut remaining_preds: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut scheduled = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<usize> = None;
        for i in 0..n {
            if scheduled[i] || remaining_preds[i] != 0 {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) if height[i] > height[b] => Some(i),
                other => other,
            };
        }
        let pick = best.expect("dependence graph is acyclic");
        scheduled[pick] = true;
        order.push(pick);
        for &s in &succs[pick] {
            remaining_preds[s] -= 1;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_ir::program::{Function, Global, Program};
    use bsg_ir::types::{GlobalId, Ty};
    use bsg_ir::visa::{Address, BinOp, Operand, Terminator};

    fn program_with_block(insts: Vec<Inst>, num_regs: u32) -> Program {
        let mut p = Program::new();
        p.add_global(Global::zeroed("g", 64));
        let mut f = Function::new("main");
        f.num_regs = num_regs;
        f.blocks[0].insts = insts;
        f.blocks[0].term = Terminator::Return(None);
        p.add_function(f);
        p
    }

    #[test]
    fn hoists_long_latency_producers_ahead_of_independent_work() {
        use bsg_ir::types::Reg;
        let g = GlobalId(0);
        // r0 = load g[0]; r1 = 1; r2 = 2; r3 = r0 + 1   (load should stay first,
        // and the adds that do not depend on it cannot move above their defs)
        let insts = vec![
            Inst::Mov {
                dst: Reg(1),
                src: Operand::ImmInt(1),
            },
            Inst::Mov {
                dst: Reg(2),
                src: Operand::ImmInt(2),
            },
            Inst::Load {
                dst: Reg(0),
                addr: Address::global(g, 0),
                ty: Ty::Int,
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: Reg(3),
                lhs: Reg(0).into(),
                rhs: Operand::ImmInt(1),
            },
        ];
        let mut p = program_with_block(insts, 4);
        schedule_blocks(&mut p);
        let b = &p.functions[0].blocks[0];
        // The load has the tallest critical path, so it is scheduled first.
        assert!(matches!(b.insts[0], Inst::Load { .. }));
        // Its dependent add is still after it.
        let load_pos = b
            .insts
            .iter()
            .position(|i| matches!(i, Inst::Load { .. }))
            .unwrap();
        let add_pos = b
            .insts
            .iter()
            .position(|i| matches!(i, Inst::Bin { dst: Reg(3), .. }))
            .unwrap();
        assert!(add_pos > load_pos);
        assert_eq!(b.insts.len(), 4);
    }

    #[test]
    fn stores_and_loads_do_not_reorder_across_each_other() {
        use bsg_ir::types::Reg;
        let g = GlobalId(0);
        let insts = vec![
            Inst::Store {
                src: Operand::ImmInt(7),
                addr: Address::global(g, 0),
                ty: Ty::Int,
            },
            Inst::Load {
                dst: Reg(0),
                addr: Address::global(g, 0),
                ty: Ty::Int,
            },
            Inst::Store {
                src: Reg(0).into(),
                addr: Address::global(g, 1),
                ty: Ty::Int,
            },
        ];
        let mut p = program_with_block(insts.clone(), 1);
        schedule_blocks(&mut p);
        assert_eq!(
            p.functions[0].blocks[0].insts, insts,
            "memory order must be preserved"
        );
    }

    #[test]
    fn prints_are_barriers() {
        use bsg_ir::types::Reg;
        let insts = vec![
            Inst::Mov {
                dst: Reg(0),
                src: Operand::ImmInt(1),
            },
            Inst::Print { src: Reg(0).into() },
            Inst::Mov {
                dst: Reg(1),
                src: Operand::ImmInt(2),
            },
            Inst::Print { src: Reg(1).into() },
        ];
        let mut p = program_with_block(insts.clone(), 2);
        schedule_blocks(&mut p);
        assert_eq!(p.functions[0].blocks[0].insts, insts);
    }

    #[test]
    fn war_and_waw_hazards_are_respected() {
        use bsg_ir::types::Reg;
        let insts = vec![
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: Reg(1),
                lhs: Reg(0).into(),
                rhs: Operand::ImmInt(1),
            },
            Inst::Mov {
                dst: Reg(0),
                src: Operand::ImmInt(5),
            }, // WAR with the read of r0 above
            Inst::Mov {
                dst: Reg(1),
                src: Operand::ImmInt(9),
            }, // WAW with the first def
            Inst::Print { src: Reg(1).into() },
        ];
        let mut p = program_with_block(insts, 2);
        schedule_blocks(&mut p);
        let b = &p.functions[0].blocks[0];
        let first_def = b
            .insts
            .iter()
            .position(|i| matches!(i, Inst::Bin { .. }))
            .unwrap();
        let redefine_r0 = b
            .insts
            .iter()
            .position(|i| matches!(i, Inst::Mov { dst: Reg(0), .. }))
            .unwrap();
        let redefine_r1 = b
            .insts
            .iter()
            .position(|i| {
                matches!(
                    i,
                    Inst::Mov {
                        dst: Reg(1),
                        src: Operand::ImmInt(9)
                    }
                )
            })
            .unwrap();
        assert!(redefine_r0 > first_def);
        assert!(redefine_r1 > first_def);
    }

    #[test]
    fn tiny_blocks_are_left_alone() {
        use bsg_ir::types::Reg;
        let insts = vec![Inst::Mov {
            dst: Reg(0),
            src: Operand::ImmInt(1),
        }];
        let mut p = program_with_block(insts.clone(), 1);
        assert_eq!(schedule_blocks(&mut p), 0);
        assert_eq!(p.functions[0].blocks[0].insts, insts);
    }
}
