//! Machine-independent optimization passes and the per-level pass pipeline.
//!
//! | level | passes |
//! |-------|--------|
//! | `O0`  | none (scalars stay in memory; this is the profiling form)        |
//! | `O1`  | copy propagation, constant folding, strength reduction, DCE      |
//! | `O2`  | `O1` + local CSE / redundant-load elimination, LICM, scheduling  |
//! | `O3`  | `O2` + function inlining                                          |
//!
//! Every pass preserves observable behaviour (the value returned by the entry
//! function and the sequence of printed values); the property-based tests in
//! this crate and in the workspace-level `tests/` directory check exactly
//! that by running random programs before and after optimization.

pub mod dce;
pub mod inline;
pub mod licm;
pub mod local;
pub mod schedule;

use crate::{CompileStats, OptLevel};
use bsg_ir::Program;

/// Runs the pass pipeline for `level` on `program`, accumulating statistics.
pub fn run_pipeline(program: &mut Program, level: OptLevel, stats: &mut CompileStats) {
    if level == OptLevel::O0 {
        return;
    }

    if level >= OptLevel::O3 {
        stats.calls_inlined += inline::inline_small_functions(program);
    }

    // A couple of rounds lets copy propagation feed constant folding feed DCE.
    for _ in 0..2 {
        stats.copies_propagated += local::propagate_copies(program);
        stats.constants_folded += local::fold_constants(program);
        stats.strength_reduced += local::reduce_strength(program);
        if level >= OptLevel::O2 {
            stats.cse_removed += local::eliminate_common_subexpressions(program);
        }
        stats.dead_insts_removed += dce::eliminate_dead_code(program);
    }

    if level >= OptLevel::O2 {
        stats.licm_hoisted += licm::hoist_loop_invariants(program);
        // LICM can expose more copies / dead code.
        stats.copies_propagated += local::propagate_copies(program);
        stats.dead_insts_removed += dce::eliminate_dead_code(program);
        stats.insts_scheduled += schedule::schedule_blocks(program);
    }
}

/// Counts dynamic-free static instructions; convenience shared by pass tests.
#[cfg(test)]
pub(crate) fn static_insts(p: &Program) -> usize {
    p.static_inst_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_ir::build::FunctionBuilder;
    use bsg_ir::hll::{Expr, HllGlobal, HllProgram};

    fn lowered() -> Program {
        let mut p = HllProgram::new();
        p.add_global(HllGlobal::zeroed("buf", 128));
        let mut f = FunctionBuilder::new("main");
        f.assign_var("a", Expr::int(10));
        f.assign_var("b", Expr::mul(Expr::var("a"), Expr::int(4)));
        f.for_loop("i", Expr::int(0), Expr::int(32), |b| {
            b.assign_index(
                "buf",
                Expr::var("i"),
                Expr::add(Expr::var("b"), Expr::var("i")),
            );
            // The repeated `b + i` sub-expression is what local CSE removes.
            b.assign_var(
                "c",
                Expr::add(
                    Expr::add(Expr::var("b"), Expr::var("i")),
                    Expr::add(Expr::var("b"), Expr::var("i")),
                ),
            );
            b.assign_var("acc", Expr::add(Expr::var("acc"), Expr::var("c")));
        });
        f.ret(Some(Expr::var("acc")));
        p.add_function(f.finish());
        crate::lower::lower(&p, crate::lower::LowerMode::RegisterScalars).unwrap()
    }

    #[test]
    fn pipeline_reduces_static_instruction_count_monotonically_enough() {
        let base = lowered();
        let mut o1 = base.clone();
        let mut o2 = base.clone();
        let mut s1 = CompileStats::default();
        let mut s2 = CompileStats::default();
        run_pipeline(&mut o1, OptLevel::O1, &mut s1);
        run_pipeline(&mut o2, OptLevel::O2, &mut s2);
        assert!(static_insts(&o1) <= static_insts(&base));
        assert!(
            static_insts(&o2) <= static_insts(&o1) + 2,
            "scheduling must not add instructions"
        );
        assert!(o1.validate().is_empty());
        assert!(o2.validate().is_empty());
        assert!(
            s2.cse_removed + s2.licm_hoisted > 0,
            "O2-only passes should fire: {s2:?}"
        );
    }

    #[test]
    fn o0_pipeline_is_identity() {
        let base = lowered();
        let mut p = base.clone();
        let mut stats = CompileStats::default();
        run_pipeline(&mut p, OptLevel::O0, &mut stats);
        assert_eq!(p, base);
        assert_eq!(stats, CompileStats::default());
    }
}
