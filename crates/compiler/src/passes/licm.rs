//! Loop-invariant code motion.
//!
//! Because every VISA operation is total (division by zero yields zero, see
//! [`bsg_ir::eval`]), hoisting a pure instruction out of a loop can never
//! introduce a trap; the only correctness obligations are data-flow ones,
//! which are enforced by the `hoistable` conditions below.

use bsg_ir::cfg::{Dominators, LoopForest};
use bsg_ir::program::{Block, Function};
use bsg_ir::types::{BlockId, Reg};
use bsg_ir::visa::{Inst, Terminator};
use bsg_ir::Program;
use std::collections::{HashMap, HashSet};

/// Hoists loop-invariant pure instructions into freshly created preheaders.
/// Returns the number of instructions hoisted.
pub fn hoist_loop_invariants(program: &mut Program) -> usize {
    let mut hoisted = 0;
    for f in &mut program.functions {
        hoisted += hoist_in_function(f);
    }
    hoisted
}

fn hoist_in_function(f: &mut Function) -> usize {
    let forest = LoopForest::compute(f);
    if forest.loops.is_empty() {
        return 0;
    }
    let mut total = 0;
    // Process innermost loops first so their preheaders land inside the outer
    // loop (outer-loop hoisting of the same instruction can then happen on a
    // later optimization round).
    let mut order: Vec<usize> = (0..forest.loops.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(forest.loops[i].depth));
    for li in order {
        let l = &forest.loops[li];
        // Iterate loop blocks in a deterministic (sorted) order so that the
        // order of independent hoisted instructions — and therefore the
        // compiled program — is reproducible run to run.
        let blocks: Vec<BlockId> = l.blocks.iter().copied().collect();
        total += hoist_one_loop(f, l.header, &blocks, &l.latches);
    }
    total
}

fn hoist_one_loop(
    f: &mut Function,
    header: BlockId,
    loop_blocks: &[BlockId],
    latches: &[BlockId],
) -> usize {
    // The loop must not contain stores, calls or prints if we want to hoist
    // loads; for simplicity (and conservatively) any such instruction also
    // blocks hoisting of loads only.
    let loop_has_memory_writes = loop_blocks.iter().any(|b| {
        f.block(*b)
            .insts
            .iter()
            .any(|i| i.writes_memory() || matches!(i, Inst::Call { .. } | Inst::Print { .. }))
    });

    // Def counts and positions for the whole function.
    let mut def_count: HashMap<Reg, usize> = HashMap::new();
    let mut def_site: HashMap<Reg, (BlockId, usize)> = HashMap::new();
    let mut use_sites: HashMap<Reg, Vec<(BlockId, usize)>> = HashMap::new();
    for (bid, block) in f.iter_blocks() {
        for (ii, inst) in block.insts.iter().enumerate() {
            if let Some(d) = inst.def() {
                *def_count.entry(d).or_insert(0) += 1;
                def_site.insert(d, (bid, ii));
            }
            for u in inst.uses() {
                use_sites.entry(u).or_default().push((bid, ii));
            }
        }
        for u in block.term.uses() {
            use_sites.entry(u).or_default().push((bid, usize::MAX));
        }
    }
    let doms = Dominators::compute(f);

    // Registers defined anywhere inside the loop.
    let defined_in_loop: HashSet<Reg> = loop_blocks
        .iter()
        .flat_map(|b| f.block(*b).insts.iter().filter_map(Inst::def))
        .collect();

    let mut hoisted_regs: HashSet<Reg> = HashSet::new();
    let mut hoisted_insts: Vec<Inst> = Vec::new();
    let mut removed: HashSet<(BlockId, usize)> = HashSet::new();

    // Iterate to a fixed point so chains of invariant instructions hoist.
    loop {
        let mut progress = false;
        for &bid in loop_blocks {
            for (ii, inst) in f.block(bid).insts.iter().enumerate() {
                if removed.contains(&(bid, ii)) {
                    continue;
                }
                if !is_candidate(inst, loop_has_memory_writes) {
                    continue;
                }
                let Some(dst) = inst.def() else { continue };
                if def_count.get(&dst).copied().unwrap_or(0) != 1 {
                    continue;
                }
                // Every register the instruction reads must be invariant:
                // either never defined inside the loop, or already hoisted.
                let invariant_inputs = inst
                    .uses()
                    .all(|u| !defined_in_loop.contains(&u) || hoisted_regs.contains(&u));
                if !invariant_inputs {
                    continue;
                }
                // The single def must dominate every use (so no path observes
                // the old — undefined/stale — value of the register).
                let dominates_uses = use_sites.get(&dst).map(|uses| {
                    uses.iter().all(|&(ub, ui)| {
                        if ub == bid {
                            ui > ii
                        } else {
                            doms.dominates(bid, ub)
                        }
                    })
                });
                if dominates_uses != Some(true) && use_sites.contains_key(&dst) {
                    continue;
                }
                hoisted_regs.insert(dst);
                hoisted_insts.push(inst.clone());
                removed.insert((bid, ii));
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }

    if hoisted_insts.is_empty() {
        return 0;
    }

    // Physically remove the hoisted instructions.
    for &bid in loop_blocks {
        let to_remove: Vec<usize> = removed
            .iter()
            .filter(|(b, _)| *b == bid)
            .map(|&(_, i)| i)
            .collect();
        if to_remove.is_empty() {
            continue;
        }
        let block = f.block_mut(bid);
        let mut idx = 0;
        block.insts.retain(|_| {
            let keep = !to_remove.contains(&idx);
            idx += 1;
            keep
        });
    }

    // Create the preheader and redirect non-back edges into the header.
    let count = hoisted_insts.len();
    let preheader = f.add_block();
    f.blocks[preheader.index()] = Block {
        insts: hoisted_insts,
        term: Terminator::Jump(header),
    };
    let latch_set: HashSet<BlockId> = latches.iter().copied().collect();
    let block_count = f.blocks.len();
    for bi in 0..block_count {
        let bid = BlockId(bi as u32);
        if bid == preheader || latch_set.contains(&bid) {
            continue;
        }
        f.blocks[bi]
            .term
            .map_targets(|t| if t == header { preheader } else { t });
    }
    if f.entry == header {
        f.entry = preheader;
    }
    count
}

fn is_candidate(inst: &Inst, loop_has_memory_writes: bool) -> bool {
    match inst {
        Inst::Bin { .. } | Inst::Un { .. } | Inst::Mov { .. } => !inst.reads_memory(),
        Inst::Load { .. } => !loop_has_memory_writes,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_ir::program::{Global, Program};
    use bsg_ir::types::{GlobalId, Ty};
    use bsg_ir::visa::{Address, BinOp, Operand};

    /// Builds:
    /// ```text
    /// bb0: r0 = 0; r1 = 100; jump bb1
    /// bb1(header): r2 = r1 * 3        <- invariant
    ///              r3 = load g[2]     <- invariant (no stores in loop)
    ///              r0 = r0 + r2
    ///              r4 = r0 < r1
    ///              branch r4 ? bb1 : bb2
    /// bb2: return r0
    /// ```
    fn loop_program(with_store: bool) -> Program {
        let mut p = Program::new();
        p.add_global(Global::zeroed("g", 16));
        let mut f = Function::new("main");
        let r0 = f.fresh_reg();
        let r1 = f.fresh_reg();
        let r2 = f.fresh_reg();
        let r3 = f.fresh_reg();
        let r4 = f.fresh_reg();
        let b1 = f.add_block();
        let b2 = f.add_block();
        f.blocks[0].insts = vec![
            Inst::Mov {
                dst: r0,
                src: Operand::ImmInt(0),
            },
            Inst::Mov {
                dst: r1,
                src: Operand::ImmInt(100),
            },
        ];
        f.blocks[0].term = Terminator::Jump(b1);
        let mut body = vec![
            Inst::Bin {
                op: BinOp::Mul,
                ty: Ty::Int,
                dst: r2,
                lhs: r1.into(),
                rhs: Operand::ImmInt(3),
            },
            Inst::Load {
                dst: r3,
                addr: Address::global(GlobalId(0), 2),
                ty: Ty::Int,
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: r0,
                lhs: r0.into(),
                rhs: r2.into(),
            },
            Inst::Bin {
                op: BinOp::Lt,
                ty: Ty::Int,
                dst: r4,
                lhs: r0.into(),
                rhs: r1.into(),
            },
        ];
        if with_store {
            body.push(Inst::Store {
                src: r0.into(),
                addr: Address::global(GlobalId(0), 3),
                ty: Ty::Int,
            });
        }
        f.blocks[b1.index()].insts = body;
        f.blocks[b1.index()].term = Terminator::Branch {
            cond: r4,
            taken: b1,
            not_taken: b2,
        };
        f.blocks[b2.index()].term = Terminator::Return(Some(r0.into()));
        p.add_function(f);
        p
    }

    #[test]
    fn hoists_invariant_computation_and_load() {
        let mut p = loop_program(false);
        let hoisted = hoist_loop_invariants(&mut p);
        assert_eq!(hoisted, 2, "the multiply and the load are invariant");
        assert!(p.validate().is_empty(), "{:?}", p.validate());
        // The preheader is the new block and must jump to the old header.
        let f = &p.functions[0];
        let pre = &f.blocks[3];
        assert_eq!(pre.insts.len(), 2);
        assert_eq!(pre.term, Terminator::Jump(BlockId(1)));
        // The entry now reaches the header through the preheader.
        assert_eq!(f.blocks[0].term, Terminator::Jump(BlockId(3)));
        // The back edge still points at the header.
        assert!(matches!(
            f.blocks[1].term,
            Terminator::Branch {
                taken: BlockId(1),
                ..
            }
        ));
    }

    #[test]
    fn stores_in_the_loop_block_load_hoisting_but_not_arithmetic() {
        let mut p = loop_program(true);
        let hoisted = hoist_loop_invariants(&mut p);
        assert_eq!(hoisted, 1, "only the multiply may move past the store");
        assert!(p.validate().is_empty());
    }

    #[test]
    fn variant_computation_is_not_hoisted() {
        let mut p = loop_program(false);
        // Make r2 depend on r0 (loop-variant).
        if let Inst::Bin { lhs, .. } = &mut p.functions[0].blocks[1].insts[0] {
            *lhs = Operand::Reg(Reg(0));
        }
        let hoisted = hoist_loop_invariants(&mut p);
        assert_eq!(hoisted, 1, "only the load remains invariant");
    }

    #[test]
    fn function_without_loops_is_untouched() {
        let mut p = Program::new();
        let mut f = Function::new("main");
        let r = f.fresh_reg();
        f.blocks[0].insts = vec![Inst::Mov {
            dst: r,
            src: Operand::ImmInt(1),
        }];
        f.blocks[0].term = Terminator::Return(Some(r.into()));
        p.add_function(f);
        let before = p.clone();
        assert_eq!(hoist_loop_invariants(&mut p), 0);
        assert_eq!(p, before);
    }
}
