//! ISA-specific code generation.
//!
//! Three target-dependent effects are modeled, each of which the paper's
//! cross-ISA experiments (Figures 6 and 11) depend on:
//!
//! 1. **Memory-operand folding** (x86 / x86-64): an adjacent load whose only
//!    consumer is the next ALU instruction is folded into that instruction as
//!    a CISC memory operand.  The memory access still happens (the cache
//!    simulator sees it), but the dynamic instruction count drops.
//! 2. **Register-file size** (all ISAs): values live across basic blocks that
//!    do not fit in the allocatable register file are spilled
//!    (see [`crate::regalloc`]), adding loads and stores.  x86 has the
//!    smallest file, IA-64 the largest.
//! 3. **Static scheduling** (IA-64 only, `-O2` and above): blocks are
//!    list-scheduled again after spill code insertion, modeling the EPIC
//!    compiler's responsibility for latency hiding.  In-order execution of
//!    *unscheduled* IA-64 code is what makes Itanium so sensitive to the
//!    optimization level in Figure 11.

use crate::passes::schedule;
use crate::{CompileOptions, CompileStats, OptLevel};
use bsg_ir::types::Reg;
use bsg_ir::visa::{Inst, Operand};
use bsg_ir::Program;
use std::collections::HashMap;

/// Applies ISA-specific code generation in place.
pub fn generate(program: &mut Program, options: &CompileOptions, stats: &mut CompileStats) {
    if options.isa.has_memory_operands() && options.opt_level >= OptLevel::O1 {
        stats.loads_folded += fold_memory_operands(program);
    }
    stats.spill_insts_inserted +=
        crate::regalloc::allocate(program, options.isa.allocatable_regs());
    if options.isa.is_epic() && options.opt_level >= OptLevel::O2 {
        stats.insts_scheduled += schedule::schedule_blocks(program);
    }
}

/// Folds `load r, [addr]; op ..., r, ...` pairs into a single instruction with
/// a memory operand when `r` has no other use.  Returns the number of loads
/// folded away.
pub fn fold_memory_operands(program: &mut Program) -> usize {
    let mut folded = 0;
    for f in &mut program.functions {
        // Count every use and def of each register across the function.
        let mut uses: HashMap<Reg, usize> = HashMap::new();
        let mut defs: HashMap<Reg, usize> = HashMap::new();
        for block in &f.blocks {
            for inst in &block.insts {
                for u in inst.uses() {
                    *uses.entry(u).or_insert(0) += 1;
                }
                if let Some(d) = inst.def() {
                    *defs.entry(d).or_insert(0) += 1;
                }
            }
            for u in block.term.uses() {
                *uses.entry(u).or_insert(0) += 1;
            }
        }

        for block in &mut f.blocks {
            let mut i = 0;
            while i + 1 < block.insts.len() {
                let foldable = match (&block.insts[i], &block.insts[i + 1]) {
                    (Inst::Load { dst, addr, .. }, Inst::Bin { lhs, rhs, .. }) => {
                        let single_use = uses.get(dst).copied().unwrap_or(0) == 1
                            && defs.get(dst).copied().unwrap_or(0) == 1;
                        let consumed_here =
                            lhs.as_reg() == Some(*dst) || rhs.as_reg() == Some(*dst);
                        // Never create an instruction with two memory operands.
                        let has_mem = lhs.is_mem() || rhs.is_mem();
                        if single_use && consumed_here && !has_mem {
                            Some((*dst, *addr))
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                if let Some((dst, addr)) = foldable {
                    if let Inst::Bin { lhs, rhs, .. } = &mut block.insts[i + 1] {
                        if lhs.as_reg() == Some(dst) {
                            *lhs = Operand::Mem(addr);
                        } else {
                            *rhs = Operand::Mem(addr);
                        }
                    }
                    block.insts.remove(i);
                    folded += 1;
                    // Do not advance: the instruction now at `i` may itself be a load.
                } else {
                    i += 1;
                }
            }
        }
    }
    folded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions, OptLevel, TargetIsa};
    use bsg_ir::build::FunctionBuilder;
    use bsg_ir::hll::{Expr, HllGlobal, HllProgram};
    use bsg_ir::program::{Function, Global};
    use bsg_ir::types::{GlobalId, Ty};
    use bsg_ir::visa::{Address, BinOp, Terminator};

    #[test]
    fn folds_single_use_adjacent_loads_only() {
        let mut p = Program::new();
        p.add_global(Global::zeroed("g", 8));
        let mut f = Function::new("main");
        let a = f.fresh_reg();
        let b = f.fresh_reg();
        let c = f.fresh_reg();
        let d = f.fresh_reg();
        f.blocks[0].insts = vec![
            // foldable: a is only used by the add
            Inst::Load {
                dst: a,
                addr: Address::global(GlobalId(0), 0),
                ty: Ty::Int,
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: c,
                lhs: a.into(),
                rhs: Operand::ImmInt(1),
            },
            // not foldable: b is used twice
            Inst::Load {
                dst: b,
                addr: Address::global(GlobalId(0), 1),
                ty: Ty::Int,
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: d,
                lhs: b.into(),
                rhs: b.into(),
            },
        ];
        f.blocks[0].term = Terminator::Return(Some(d.into()));
        p.add_function(f);
        assert_eq!(fold_memory_operands(&mut p), 1);
        let insts = &p.functions[0].blocks[0].insts;
        assert_eq!(insts.len(), 3);
        assert!(matches!(
            insts[0],
            Inst::Bin {
                lhs: Operand::Mem(_),
                ..
            }
        ));
        assert!(p.validate().is_empty());
    }

    fn looped_program() -> HllProgram {
        let mut p = HllProgram::new();
        p.add_global(HllGlobal::zeroed("data", 256));
        let mut f = FunctionBuilder::new("main");
        f.for_loop("i", Expr::int(0), Expr::int(64), |b| {
            b.assign_var(
                "acc",
                Expr::add(Expr::var("acc"), Expr::index("data", Expr::var("i"))),
            );
        });
        f.ret(Some(Expr::var("acc")));
        p.add_function(f.finish());
        p
    }

    #[test]
    fn x86_codegen_folds_loads_but_ia64_does_not() {
        let hll = looped_program();
        let x86 = compile(&hll, &CompileOptions::new(OptLevel::O2, TargetIsa::X86)).unwrap();
        let ia64 = compile(&hll, &CompileOptions::new(OptLevel::O2, TargetIsa::Ia64)).unwrap();
        assert!(x86.stats.loads_folded > 0);
        assert_eq!(ia64.stats.loads_folded, 0);
    }

    #[test]
    fn epic_schedules_at_o2_but_not_o0() {
        let hll = looped_program();
        let o2 = compile(&hll, &CompileOptions::new(OptLevel::O2, TargetIsa::Ia64)).unwrap();
        let o0 = compile(&hll, &CompileOptions::new(OptLevel::O0, TargetIsa::Ia64)).unwrap();
        assert_eq!(o0.stats.insts_scheduled, 0);
        // Scheduling may or may not move instructions in this tiny kernel, but
        // the pass must at least have run without breaking the program.
        assert!(o2.program.validate().is_empty());
    }
}
