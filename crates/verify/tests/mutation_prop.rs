//! Mutation self-test: the verifier accepts every valid generated image
//! (zero false positives) and rejects 100% of kit-corrupted mutants (the
//! analysis has teeth).  `verify_image` must *return* `Err` on mutants —
//! a panic would fail the test, which is the point: corrupted images are
//! exactly what the verifier exists to report on gracefully.

use bsg_uarch::image::ExecImage;
use bsg_uarch::verify::{corrupt_image, verify_image, ALL_CORRUPTIONS};
use bsg_verify::gen::{o0_frame_program, Gen};
use proptest::prelude::*;
use rand::Rng;

fn assert_accepts_and_mutants_rejected(
    what: &str,
    program: &bsg_ir::Program,
) -> Result<(), String> {
    let fused = ExecImage::new(program);
    let unfused = ExecImage::unfused(program);
    for (form, image) in [("fused", &fused), ("unfused", &unfused)] {
        if let Err(e) = verify_image(image) {
            return Err(format!("false positive on {what} ({form}): {e}"));
        }
    }
    for c in ALL_CORRUPTIONS {
        if let Some(mutant) = corrupt_image(&fused, c) {
            if verify_image(&mutant).is_ok() {
                return Err(format!("mutant survived on {what}: {c:?}"));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    #[test]
    fn random_images_verify_and_all_mutants_die(seed in 0u64..1_000_000) {
        let mut g = Gen::from_seed(seed, 0);
        g.nglobals = g.rng.gen_range(0u32..3);
        let program = g.program();
        assert_accepts_and_mutants_rejected(&format!("seed {seed}"), &program)?;
    }

    #[test]
    fn o0_frame_images_verify_and_all_mutants_die(seed in 0u64..1_000_000) {
        let program = o0_frame_program(seed);
        assert_accepts_and_mutants_rejected(&format!("o0 seed {seed}"), &program)?;
    }
}

#[test]
fn every_corruption_applies_somewhere() {
    // Each corruption must actually fire on at least one generated image —
    // otherwise the proptest above could pass vacuously for that corruption.
    let mut applied = [false; ALL_CORRUPTIONS.len()];
    for seed in 0..40u64 {
        let mut g = Gen::from_seed(seed, 0);
        g.nglobals = g.rng.gen_range(0u32..3);
        for program in [g.program(), o0_frame_program(seed)] {
            let image = ExecImage::new(&program);
            for (i, c) in ALL_CORRUPTIONS.into_iter().enumerate() {
                if corrupt_image(&image, c).is_some() {
                    applied[i] = true;
                }
            }
        }
    }
    for (i, c) in ALL_CORRUPTIONS.into_iter().enumerate() {
        assert!(applied[i], "{c:?} never applied to any generated image");
    }
}
