//! Acceptance: every registry workload's images pass the static verifier at
//! both the profiling (`-O0`) and optimized (`-O2`) levels — the same sweep
//! the `bsg-verify --registry` CLI runs over the full suite in CI, kept here
//! over the small inputs so plain `cargo test` exercises it too.

use bsg_compiler::{compile, CompileOptions, OptLevel, TargetIsa};
use bsg_uarch::image::ExecImage;
use bsg_uarch::verify::verify_image;
use bsg_workloads::{suite, InputSize};

#[test]
fn small_suite_verifies_at_o0_and_o2() {
    for w in suite(InputSize::Small) {
        for level in [OptLevel::O0, OptLevel::O2] {
            let compiled = compile(&w.program, &CompileOptions::new(level, TargetIsa::X86))
                .unwrap_or_else(|e| panic!("{} fails to compile at {level}: {e}", w.name));
            for (form, image) in [
                ("fused", ExecImage::new(&compiled.program)),
                ("unfused", ExecImage::unfused(&compiled.program)),
            ] {
                let report = verify_image(&image)
                    .unwrap_or_else(|e| panic!("false positive: {}@{level} ({form}): {e}", w.name));
                assert!(report.steps > 0, "{}@{level}: empty image", w.name);
                if form == "fused" {
                    assert_eq!(
                        report.fused,
                        image.num_fused(),
                        "{}@{level}: replay check visited a different number of \
                         fused steps than the image reports",
                        w.name
                    );
                }
            }
        }
    }
}
