//! The unsafe-ledger gate as a plain test: the workspace must audit clean,
//! and the audit must actually catch violations (checked against synthetic
//! bad files under the cargo-provided temp dir).

use bsg_uarch::verify::checked_invariants;
use bsg_verify::{audit, citable_invariants, ledger_is_fully_checked};
use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    audit::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
}

#[test]
fn ledger_matches_verifier() {
    ledger_is_fully_checked().expect("ledger/verifier drift");
}

#[test]
fn workspace_audits_clean() {
    let citable = citable_invariants();
    let report = audit::audit_workspace(&workspace_root(), &citable);
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
    assert!(
        report.errors.is_empty(),
        "unsafe-ledger audit failed:\n{report}"
    );
    // The two audited get_unchecked blocks in exec.rs plus the signal(2)
    // registration in bsg-server's signal module are the only unsafe in
    // non-vendor code; growing this number requires a ledger tag (the
    // audit enforces it) and a conscious bump here.
    let non_vendor = report
        .sites
        .iter()
        .filter(|s| !s.file.components().any(|c| c.as_os_str() == "vendor"))
        .count();
    assert_eq!(non_vendor, 3, "unexpected unsafe site count:\n{report:?}");
}

#[test]
fn signal_handlers_are_atomic_flag_only() {
    let errors = audit::audit_signal_handlers(&workspace_root());
    assert!(
        errors.is_empty(),
        "process-ledger audit failed:\n{errors:#?}"
    );
}

#[test]
fn signal_handler_audit_catches_unsafe_handler_bodies() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("audit_gate_signal_bad");
    let src = dir.join("src");
    fs::create_dir_all(&src).unwrap();
    // A handler that allocates (not async-signal-safe) next to a clean one
    // and a fn-pointer type alias that must not be mistaken for a body.
    fs::write(
        src.join("sig.rs"),
        "type H = extern \"C\" fn(i32);\n\
         static F: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);\n\
         extern \"C\" fn good(_s: i32) {\n    F.store(true, std::sync::atomic::Ordering::Relaxed);\n}\n\
         extern \"C\" fn bad(_s: i32) {\n    println!(\"not signal safe\");\n}\n",
    )
    .unwrap();
    let errors = audit::audit_signal_handlers(&dir);
    assert_eq!(errors.len(), 1, "{errors:#?}");
    assert!(
        errors[0].contains("println") && errors[0].contains("signal-flag-only"),
        "{errors:#?}"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn audit_catches_untagged_and_unchecked_citations() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("audit_gate_bad");
    let src = dir.join("src");
    fs::create_dir_all(&src).unwrap();
    // An untagged unsafe block, plus one citing an invariant nobody checks.
    fs::write(
        src.join("lib.rs"),
        "#![forbid(unsafe_code)]\nfn a(s: &[u8]) -> u8 {\n    unsafe { *s.get_unchecked(0) }\n}\n\
         fn b(s: &[u8]) -> u8 {\n    // SAFETY(ledger: not-a-real-invariant): bogus\n    \
         unsafe { *s.get_unchecked(0) }\n}\n",
    )
    .unwrap();
    // A crate root with no unsafe_code lint at all.
    fs::write(src.join("main.rs"), "fn main() {}\n").unwrap();
    let report = audit::audit_workspace(&dir, checked_invariants());
    assert_eq!(report.sites.len(), 2, "{report}");
    let text = format!("{report}");
    assert!(
        text.contains("without a `// SAFETY(ledger:"),
        "untagged unsafe not flagged: {text}"
    );
    assert!(
        text.contains("`not-a-real-invariant`"),
        "unchecked citation not flagged: {text}"
    );
    assert!(
        text.contains("main.rs") && text.contains("crate root lacks"),
        "missing crate-root lint not flagged: {text}"
    );
    fs::remove_dir_all(&dir).ok();
}
