//! Random valid-program generators, shared between the differential property
//! suite (`crates/uarch/tests/differential_prop.rs`) and the `bsg-verify`
//! sweeps.
//!
//! The generators only ever produce *valid* programs (register ids below
//! `num_regs`, call targets and branch targets in range, non-empty globals),
//! matching the invariants `ExecImage` validates at build time — which is
//! exactly what the verifier's zero-false-positive acceptance criterion
//! needs: every generated program must decode to an image `verify_image`
//! accepts.  Programs may loop forever or recurse unboundedly; executions of
//! them therefore carry instruction budgets (the verifier itself never runs
//! them).

use bsg_ir::program::{Function, Global, GlobalInit, Program};
use bsg_ir::types::{BlockId, FuncId, Reg, Ty, Value};
use bsg_ir::visa::{Address, BinOp, Inst, MemBase, Operand, Terminator, UnOp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Every binary operator the generators draw from.
pub const BIN_OPS: [BinOp; 16] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
];

/// Every unary operator the generators draw from.
pub const UN_OPS: [UnOp; 10] = [
    UnOp::Neg,
    UnOp::Not,
    UnOp::LogicalNot,
    UnOp::ToFloat,
    UnOp::ToInt,
    UnOp::Sqrt,
    UnOp::Sin,
    UnOp::Cos,
    UnOp::Log,
    UnOp::Abs,
];

/// A seeded generator of random valid VISA programs: loops, calls, mixed
/// int/float register pressure, frame and global traffic, folded memory
/// operands.
pub struct Gen {
    /// Generator state (public so callers can pre-draw, e.g. a random global
    /// count, from the same stream — the differential suite does).
    pub rng: SmallRng,
    /// How many globals [`Gen::program`] declares.
    pub nglobals: u32,
}

impl Gen {
    /// A generator seeded from `seed` with `nglobals` globals.
    pub fn from_seed(seed: u64, nglobals: u32) -> Self {
        Gen {
            rng: SmallRng::seed_from_u64(seed),
            nglobals,
        }
    }

    /// A random register below `num_regs`.
    pub fn reg(&mut self, num_regs: u32) -> Reg {
        Reg(self.rng.gen_range(0u32..num_regs))
    }

    /// A random (global or frame, optionally indexed) address.
    pub fn address(&mut self, num_regs: u32) -> Address {
        let base = if self.nglobals > 0 && self.rng.gen_range(0u32..3) > 0 {
            MemBase::Global(bsg_ir::types::GlobalId(
                self.rng.gen_range(0u32..self.nglobals),
            ))
        } else {
            MemBase::Frame
        };
        Address {
            base,
            offset: self.rng.gen_range(-4i64..24),
            index: if self.rng.gen_range(0u32..2) == 0 {
                Some(self.reg(num_regs))
            } else {
                None
            },
            scale: self.rng.gen_range(1i64..4),
        }
    }

    /// A random operand (register-biased).
    pub fn operand(&mut self, num_regs: u32) -> Operand {
        match self.rng.gen_range(0u32..8) {
            0..=3 => Operand::Reg(self.reg(num_regs)),
            4 => Operand::ImmInt(self.rng.gen_range(-40i64..40)),
            5 => Operand::ImmFloat(self.rng.gen_range(-8i64..8) as f64 * 0.75),
            _ => Operand::Mem(self.address(num_regs)),
        }
    }

    /// A random type (int-biased 2:1).
    pub fn ty(&mut self) -> Ty {
        if self.rng.gen_range(0u32..3) == 0 {
            Ty::Float
        } else {
            Ty::Int
        }
    }

    /// A random instruction valid for a function with `num_regs` registers
    /// in a program with `nfuncs` functions.
    pub fn inst(&mut self, num_regs: u32, nfuncs: u32) -> Inst {
        match self.rng.gen_range(0u32..10) {
            0..=2 => Inst::Bin {
                op: BIN_OPS[self.rng.gen_range(0usize..BIN_OPS.len())],
                ty: self.ty(),
                dst: self.reg(num_regs),
                lhs: self.operand(num_regs),
                rhs: self.operand(num_regs),
            },
            3 => Inst::Un {
                op: UN_OPS[self.rng.gen_range(0usize..UN_OPS.len())],
                ty: self.ty(),
                dst: self.reg(num_regs),
                src: self.operand(num_regs),
            },
            4 | 5 => Inst::Mov {
                dst: self.reg(num_regs),
                src: match self.rng.gen_range(0u32..3) {
                    0 => Operand::Reg(self.reg(num_regs)),
                    1 => Operand::ImmInt(self.rng.gen_range(-100i64..100)),
                    _ => Operand::ImmFloat(self.rng.gen_range(-50i64..50) as f64 / 4.0),
                },
            },
            6 => Inst::Load {
                dst: self.reg(num_regs),
                addr: self.address(num_regs),
                ty: self.ty(),
            },
            7 => Inst::Store {
                src: self.operand(num_regs),
                addr: self.address(num_regs),
                ty: self.ty(),
            },
            8 => Inst::Call {
                func: FuncId(self.rng.gen_range(0u32..nfuncs)),
                args: (0..self.rng.gen_range(0usize..4))
                    .map(|_| self.operand(num_regs))
                    .collect(),
                dst: if self.rng.gen_range(0u32..2) == 0 {
                    Some(self.reg(num_regs))
                } else {
                    None
                },
            },
            _ => {
                if self.rng.gen_range(0u32..2) == 0 {
                    Inst::Print {
                        src: self.operand(num_regs),
                    }
                } else {
                    Inst::Nop
                }
            }
        }
    }

    /// A complete random program: globals with mixed initializers, 1–3
    /// functions of 1–4 blocks each, every block non-empty.
    pub fn program(&mut self) -> Program {
        let mut p = Program::new();
        for g in 0..self.nglobals {
            let elems = self.rng.gen_range(1usize..12);
            let init = match self.rng.gen_range(0u32..4) {
                0 => GlobalInit::Zero,
                1 => GlobalInit::Iota,
                2 => GlobalInit::Random {
                    seed: self.rng.gen_range(1u64..1000),
                    modulus: 64,
                },
                _ => GlobalInit::Values(
                    (0..self.rng.gen_range(0usize..elems + 1))
                        .map(|i| {
                            if self.rng.gen_range(0u32..3) == 0 {
                                Value::Float(i as f64 * 1.25)
                            } else {
                                Value::Int(i as i64 * 3 - 4)
                            }
                        })
                        .collect(),
                ),
            };
            let ty = if self.rng.gen_range(0u32..3) == 0 {
                Ty::Float
            } else {
                Ty::Int
            };
            p.add_global(Global {
                name: format!("g{g}"),
                elems,
                ty,
                init,
            });
        }
        let nfuncs = self.rng.gen_range(1u32..4);
        for fi in 0..nfuncs {
            let mut f = Function::new(format!("f{fi}"));
            let num_regs = self.rng.gen_range(1u32..8);
            for _ in 0..num_regs {
                f.fresh_reg();
            }
            f.frame_words = self.rng.gen_range(0u32..8);
            let nparams = self.rng.gen_range(0u32..num_regs.min(3) + 1);
            f.params = (0..nparams).map(Reg).collect();
            let nblocks = self.rng.gen_range(1u32..5);
            for _ in 1..nblocks {
                f.add_block();
            }
            for bi in 0..nblocks {
                // At least one instruction per block: a cycle of empty
                // blocks joined by Jump terminators would execute zero
                // budgeted instructions and never terminate (on any engine —
                // jumps are free by design).
                let ninsts = self.rng.gen_range(1usize..6);
                let insts: Vec<Inst> = (0..ninsts).map(|_| self.inst(num_regs, nfuncs)).collect();
                let term = match self.rng.gen_range(0u32..4) {
                    0 => Terminator::Return(if self.rng.gen_range(0u32..2) == 0 {
                        None
                    } else {
                        Some(self.operand(num_regs))
                    }),
                    1 | 2 => Terminator::Jump(BlockId(self.rng.gen_range(0u32..nblocks))),
                    _ => Terminator::Branch {
                        cond: self.reg(num_regs),
                        taken: BlockId(self.rng.gen_range(0u32..nblocks)),
                        not_taken: BlockId(self.rng.gen_range(0u32..nblocks)),
                    },
                };
                f.blocks[bi as usize].insts = insts;
                f.blocks[bi as usize].term = term;
            }
            p.add_function(f);
        }
        p.entry = FuncId(0);
        p
    }
}

/// Generates an `-O0`-shaped program: a counted loop whose body is made of
/// frame-slot read-modify-write fragments over a **mixed int/float** frame —
/// the exact shapes the per-slot typing untags and the frame-fusion pass
/// collapses (`LoadFCmpBr` headers, `LoadFAluStoreF`/`LoadFFAluStoreFF`/
/// `LoadFUnFFStoreFF` bodies, `StoreFIJump` latches, slot-load pairs) — plus
/// register-indexed (dynamic) frame and global traffic, and slots that are
/// deliberately left to their implicit `Int(0)` initialization so the
/// init-observability analysis is exercised in both directions.
pub fn o0_frame_program(seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p = Program::new();
    let g = p.add_global(Global {
        name: "g".into(),
        elems: 8,
        ty: Ty::Int,
        init: GlobalInit::Iota,
    });
    let mut f = Function::new("main");
    let nslots = rng.gen_range(2u32..6);
    f.frame_words = nslots;
    // Slot 0 is the int induction variable; the rest choose a type, and a
    // subset skips initialization (read-before-write of the Int(0) init —
    // which forces an uninitialized "float" slot onto the tagged bank).
    let slot_ty: Vec<Ty> = (0..nslots)
        .map(|s| {
            if s == 0 || rng.gen_range(0u32..2) == 0 {
                Ty::Int
            } else {
                Ty::Float
            }
        })
        .collect();
    let header = f.add_block();
    let body = f.add_block();
    let exit = f.add_block();

    let mut init = vec![Inst::Store {
        src: Operand::ImmInt(0),
        addr: Address::frame(0),
        ty: Ty::Int,
    }];
    for s in 1..nslots {
        if rng.gen_range(0u32..4) > 0 {
            init.push(Inst::Store {
                src: match slot_ty[s as usize] {
                    Ty::Int => Operand::ImmInt(rng.gen_range(-9i64..9)),
                    Ty::Float => Operand::ImmFloat(rng.gen_range(-16i64..16) as f64 * 0.25),
                },
                addr: Address::frame(i64::from(s)),
                ty: slot_ty[s as usize],
            });
        }
    }
    f.blocks[0].insts = init;
    f.blocks[0].term = Terminator::Jump(header);

    // Header: reload the induction variable, compare, branch (fuses to
    // LoadFCmpBr).  -O0 style: a fresh register per use.
    let hr = f.fresh_reg();
    let hc = f.fresh_reg();
    f.blocks[header.index()].insts = vec![
        Inst::Load {
            dst: hr,
            addr: Address::frame(0),
            ty: Ty::Int,
        },
        Inst::Bin {
            op: BinOp::Lt,
            ty: Ty::Int,
            dst: hc,
            lhs: hr.into(),
            rhs: Operand::ImmInt(rng.gen_range(2i64..7)),
        },
    ];
    f.blocks[header.index()].term = Terminator::Branch {
        cond: hc,
        taken: body,
        not_taken: exit,
    };

    // Body: random frame-slot fragments.
    let mut insts: Vec<Inst> = Vec::new();
    let int_slots: Vec<u32> = (0..nslots)
        .filter(|s| slot_ty[*s as usize] == Ty::Int)
        .collect();
    let float_slots: Vec<u32> = (0..nslots)
        .filter(|s| slot_ty[*s as usize] == Ty::Float)
        .collect();
    for _ in 0..rng.gen_range(1usize..5) {
        match rng.gen_range(0u32..6) {
            // Int RMW: load slot -> int ALU -> store slot.
            0 | 1 => {
                let s = int_slots[rng.gen_range(0usize..int_slots.len())];
                let (r1, r2) = (f.fresh_reg(), f.fresh_reg());
                insts.push(Inst::Load {
                    dst: r1,
                    addr: Address::frame(i64::from(s)),
                    ty: Ty::Int,
                });
                insts.push(Inst::Bin {
                    op: [BinOp::Add, BinOp::Sub, BinOp::Xor][rng.gen_range(0usize..3)],
                    ty: Ty::Int,
                    dst: r2,
                    lhs: r1.into(),
                    rhs: Operand::ImmInt(rng.gen_range(-5i64..6)),
                });
                insts.push(Inst::Store {
                    src: r2.into(),
                    addr: Address::frame(i64::from(s)),
                    ty: Ty::Int,
                });
            }
            // Float RMW (ALU or unary): load -> op -> store.
            2 | 3 if !float_slots.is_empty() => {
                let s = float_slots[rng.gen_range(0usize..float_slots.len())];
                let d = float_slots[rng.gen_range(0usize..float_slots.len())];
                let (r1, r2) = (f.fresh_reg(), f.fresh_reg());
                insts.push(Inst::Load {
                    dst: r1,
                    addr: Address::frame(i64::from(s)),
                    ty: Ty::Float,
                });
                if rng.gen_range(0u32..2) == 0 {
                    insts.push(Inst::Bin {
                        op: [BinOp::Add, BinOp::Mul][rng.gen_range(0usize..2)],
                        ty: Ty::Float,
                        dst: r2,
                        lhs: r1.into(),
                        rhs: Operand::ImmFloat(rng.gen_range(1i64..5) as f64 * 0.5),
                    });
                } else {
                    insts.push(Inst::Un {
                        op: [UnOp::Neg, UnOp::Sqrt, UnOp::Cos][rng.gen_range(0usize..3)],
                        ty: Ty::Float,
                        dst: r2,
                        src: r1.into(),
                    });
                }
                insts.push(Inst::Store {
                    src: r2.into(),
                    addr: Address::frame(i64::from(d)),
                    ty: Ty::Float,
                });
            }
            // Dynamic (register-indexed) frame access: hits the general
            // per-slot bank table at run time.
            4 => {
                let idx = f.fresh_reg();
                let v = f.fresh_reg();
                insts.push(Inst::Load {
                    dst: idx,
                    addr: Address::frame(0),
                    ty: Ty::Int,
                });
                let addr = Address {
                    base: MemBase::Frame,
                    offset: rng.gen_range(-1i64..3),
                    index: Some(idx),
                    scale: rng.gen_range(1i64..3),
                };
                if rng.gen_range(0u32..2) == 0 {
                    insts.push(Inst::Load {
                        dst: v,
                        addr,
                        ty: Ty::Int,
                    });
                    insts.push(Inst::Print { src: v.into() });
                } else {
                    insts.push(Inst::Store {
                        src: Operand::ImmInt(rng.gen_range(0i64..9)),
                        addr,
                        ty: Ty::Int,
                    });
                }
            }
            // Indexed global traffic (LoadFILoadG / LoadFIStoreG shapes).
            _ => {
                let idx = f.fresh_reg();
                let v = f.fresh_reg();
                insts.push(Inst::Load {
                    dst: idx,
                    addr: Address::frame(0),
                    ty: Ty::Int,
                });
                insts.push(Inst::Load {
                    dst: v,
                    addr: Address::global_indexed(g, 0, idx, 1),
                    ty: Ty::Int,
                });
                insts.push(Inst::Store {
                    src: v.into(),
                    addr: Address::global_indexed(g, 1, idx, 1),
                    ty: Ty::Int,
                });
            }
        }
    }
    // Latch: induction RMW, then jump (fuses the store into StoreFIJump).
    let (li, ln) = (f.fresh_reg(), f.fresh_reg());
    insts.push(Inst::Load {
        dst: li,
        addr: Address::frame(0),
        ty: Ty::Int,
    });
    insts.push(Inst::Bin {
        op: BinOp::Add,
        ty: Ty::Int,
        dst: ln,
        lhs: li.into(),
        rhs: Operand::ImmInt(1),
    });
    insts.push(Inst::Store {
        src: ln.into(),
        addr: Address::frame(0),
        ty: Ty::Int,
    });
    f.blocks[body.index()].insts = insts;
    f.blocks[body.index()].term = Terminator::Jump(header);

    // Exit: read every slot back (read-before-write for uninitialized ones).
    let mut out = Vec::new();
    for s in 0..nslots {
        let r = f.fresh_reg();
        out.push(Inst::Load {
            dst: r,
            addr: Address::frame(i64::from(s)),
            ty: slot_ty[s as usize],
        });
        out.push(Inst::Print { src: r.into() });
    }
    f.blocks[exit.index()].insts = out;
    f.blocks[exit.index()].term = Terminator::Return(Some(Operand::Mem(Address::frame(
        i64::from(rng.gen_range(0u32..nslots)),
    ))));
    p.add_function(f);
    p
}
