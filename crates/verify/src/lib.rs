//! # bsg-verify — the unsafe-invariant ledger and its enforcement harness
//!
//! The interpreter's ~5× throughput rests on an unchecked indexing core
//! (`bsg_uarch::exec::{at, at_mut}`): `get_unchecked` calls justified by
//! invariants established once, at image decode time.  This crate is the
//! Design-by-Contract half of that bargain:
//!
//! * the **[`LEDGER`]** names every invariant an `unsafe` block in the
//!   workspace is allowed to cite (`// SAFETY(ledger: <id>)` tags);
//! * the **[`audit`]** module is a source-level scanner
//!   (`bsg-verify --audit-unsafe`) failing when an `unsafe` block is
//!   untagged, cites an unknown id, or cites an invariant the static
//!   verifier does not actually check;
//! * the **[`gen`]** module holds the random-program generators (shared with
//!   the differential property suite) that feed the verifier sweeps;
//! * the `bsg-verify` binary sweeps all registry workloads plus random
//!   programs through [`bsg_uarch::verify::verify_image`] and runs the
//!   mutation self-test ([`bsg_uarch::verify::corrupt_image`]) proving the
//!   analysis rejects corrupted images.
//!
//! The verifier itself lives in `bsg_uarch::verify` (it needs access to the
//! crate-private `ExecImage` internals); this crate owns the ledger, the
//! audit, the generators and the CLI so the policy layer stays outside the
//! engine crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod gen;

use bsg_uarch::verify::checked_invariants;

/// One named invariant of the unchecked execution core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invariant {
    /// Stable id cited by `// SAFETY(ledger: <id>)` tags; must appear in
    /// [`bsg_uarch::verify::checked_invariants`].
    pub id: &'static str,
    /// What the invariant guarantees, from the unsafe code's point of view.
    pub summary: &'static str,
}

/// Every invariant an `unsafe` block in this workspace may cite.  Each entry
/// must be machine-checked by `bsg_uarch::verify::verify_image`
/// ([`ledger_is_fully_checked`] cross-checks both directions, and CI runs it
/// via `bsg-verify --audit-unsafe`).
pub const LEDGER: &[Invariant] = &[
    Invariant {
        id: "step-structure",
        summary: "every decoded step is well-formed: fused shapes decompose, \
                  footprints partition blocks, dispatch never reads past a block",
    },
    Invariant {
        id: "terminator-placement",
        summary: "terminator steps sit exactly at each block's term_pc slot; \
                  body slots never hold a terminator",
    },
    Invariant {
        id: "edge-target",
        summary: "every jump/branch edge's pc, block id, dense block index and \
                  dense edge index agree with the image's tables and are in range",
    },
    Invariant {
        id: "reg-bounds",
        summary: "every register id in a step is below its function's num_regs \
                  (= the per-bank register file length)",
    },
    Invariant {
        id: "reg-bank",
        summary: "untagged i64/f64 register accesses agree with the inferred \
                  per-register bank (a dataflow re-proof of typing.rs)",
    },
    Invariant {
        id: "global-bounds",
        summary: "every global reference names a real non-empty region whose \
                  start/len/mask/base match the flattened layout",
    },
    Invariant {
        id: "frame-slot-bounds",
        summary: "every statically-resolved frame slot is below the function's \
                  slot count, with the canonical wrapped element index",
    },
    Invariant {
        id: "frame-slot-bank",
        summary: "untagged frame-slot accesses agree with the inferred \
                  per-slot bank (a dataflow re-proof of typing.rs)",
    },
    Invariant {
        id: "zero-fill-elision",
        summary: "FramePool::acquire may skip zero-filling exactly the banks \
                  whose registers/slots are never read before written \
                  (the frame_entry_live facts, re-proved by liveness)",
    },
    Invariant {
        id: "call-site",
        summary: "every call targets a real function and its argument range \
                  lies inside the flattened call_args table",
    },
    Invariant {
        id: "fused-replay",
        summary: "every fused superinstruction replays its unfused \
                  constituents exactly — same budget decrements, same halt \
                  points, same observer events — against the unfused twin",
    },
];

/// Process-level invariants (PR 10): properties of the *process*, not of a
/// decoded image, so they are machine-checked by dedicated audit passes
/// rather than by `verify_image`.  Unsafe sites may cite these ids exactly
/// like [`LEDGER`] ones; `bsg-verify --audit-unsafe` runs the matching
/// checker over the workspace sources.
pub const PROCESS_LEDGER: &[Invariant] = &[Invariant {
    id: "signal-flag-only",
    summary: "every extern \"C\" signal handler body is nothing but \
              lock-free atomic flag traffic on statics (async-signal-safe: \
              no allocation, no locks, no formatting, no I/O); the real \
              work happens on normal threads polling the flag",
}];

/// Every invariant id an `unsafe` site may cite: the image-level
/// [`LEDGER`] (checked by `verify_image`) plus the [`PROCESS_LEDGER`]
/// (checked by the source-level audit passes).
pub fn citable_invariants() -> Vec<&'static str> {
    checked_invariants()
        .iter()
        .copied()
        .chain(PROCESS_LEDGER.iter().map(|inv| inv.id))
        .collect()
}

/// Cross-checks the ledger against the verifier: every [`LEDGER`] id must be
/// checked by `verify_image` and every checked invariant must be citable,
/// with no duplicate ids on either side.
///
/// # Errors
///
/// Returns a human-readable description of the first mismatch.
pub fn ledger_is_fully_checked() -> Result<(), String> {
    let checked = checked_invariants();
    for inv in LEDGER {
        if !checked.contains(&inv.id) {
            return Err(format!(
                "ledger invariant `{}` is not checked by bsg_uarch::verify::verify_image \
                 — an unsafe block citing it would be trusting a comment, not a proof",
                inv.id
            ));
        }
        if LEDGER.iter().filter(|i| i.id == inv.id).count() != 1 {
            return Err(format!("duplicate ledger id `{}`", inv.id));
        }
    }
    for id in checked {
        if !LEDGER.iter().any(|inv| inv.id == *id) {
            return Err(format!(
                "verifier checks `{id}` but the ledger has no entry for it \
                 — unsafe code cannot cite it"
            ));
        }
        if checked.iter().filter(|c| *c == id).count() != 1 {
            return Err(format!("duplicate checked invariant `{id}`"));
        }
    }
    for inv in PROCESS_LEDGER {
        if PROCESS_LEDGER.iter().filter(|i| i.id == inv.id).count() != 1 {
            return Err(format!("duplicate process-ledger id `{}`", inv.id));
        }
        if checked.contains(&inv.id) || LEDGER.iter().any(|i| i.id == inv.id) {
            return Err(format!(
                "process-ledger id `{}` collides with an image-ledger id — \
                 a citation would be ambiguous about which checker vouches",
                inv.id
            ));
        }
    }
    Ok(())
}

/// Looks up a ledger entry by id (image-level first, then process-level).
pub fn ledger_entry(id: &str) -> Option<&'static Invariant> {
    LEDGER
        .iter()
        .find(|inv| inv.id == id)
        .or_else(|| PROCESS_LEDGER.iter().find(|inv| inv.id == id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_and_verifier_agree() {
        ledger_is_fully_checked().expect("ledger/verifier drift");
    }

    #[test]
    fn ledger_lookup_works() {
        assert!(ledger_entry("reg-bounds").is_some());
        assert!(ledger_entry("made-up").is_none());
    }
}
