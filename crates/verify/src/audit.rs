//! Source-level unsafe audit: every `unsafe` occurrence in workspace code
//! must sit under a `// SAFETY(ledger: <id>[, <id>...])` comment whose ids
//! are real, verifier-checked [`crate::LEDGER`] entries, and every non-vendor
//! crate root must carry a crate-wide `unsafe_code` lint (`forbid` where the
//! crate has none, `deny` + audited `allow`s where it does).
//!
//! The scanner is a small lexer, not a regex: `unsafe` inside strings,
//! comments, raw strings and char literals does not count, and the SAFETY
//! tag is read from the contiguous `//` comment block immediately above the
//! occurrence (rustc's own `unsafe_op_in_unsafe_fn` and `unsafe_code` lints
//! do the semantic half; this pass does the ledger bookkeeping half).

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One `unsafe` occurrence found in code (not comments/strings).
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// File the occurrence is in.
    pub file: PathBuf,
    /// 1-indexed line of the `unsafe` token.
    pub line: usize,
    /// Ledger ids cited by the nearest preceding `SAFETY(ledger: ...)` tag
    /// (empty when untagged).
    pub ids: Vec<String>,
}

/// What the audit found; empty `errors` means the workspace passes.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Rust files scanned.
    pub files_scanned: usize,
    /// All in-code `unsafe` occurrences (vendor included, for visibility).
    pub sites: Vec<UnsafeSite>,
    /// Every violation, human-readable.
    pub errors: Vec<String>,
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit: {} files, {} unsafe sites, {} errors",
            self.files_scanned,
            self.sites.len(),
            self.errors.len()
        )?;
        for e in &self.errors {
            writeln!(f, "  error: {e}")?;
        }
        Ok(())
    }
}

/// Audits every `.rs` file under `root` (skipping `target/` and hidden
/// directories).  `checked` is the set of invariant ids the verifier proves —
/// pass [`crate::ledger_is_fully_checked`]-validated
/// [`bsg_uarch::verify::checked_invariants`].
pub fn audit_workspace(root: &Path, checked: &[&str]) -> AuditReport {
    let mut report = AuditReport::default();
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    files.sort();
    for file in files {
        audit_file(&file, root, checked, &mut report);
    }
    report
}

/// Walks up from `start` to the workspace root (the first ancestor whose
/// `Cargo.toml` contains a `[workspace]` table), falling back to `start`.
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        match dir.parent() {
            Some(p) => dir = p.to_path_buf(),
            None => return start.to_path_buf(),
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn is_vendor(path: &Path, root: &Path) -> bool {
    path.strip_prefix(root)
        .map(|rel| rel.starts_with("vendor"))
        .unwrap_or(false)
}

fn audit_file(file: &Path, root: &Path, checked: &[&str], report: &mut AuditReport) {
    let Ok(text) = fs::read_to_string(file) else {
        report
            .errors
            .push(format!("{}: unreadable", file.display()));
        return;
    };
    report.files_scanned += 1;
    let lines: Vec<&str> = text.lines().collect();
    let vendor = is_vendor(file, root);

    for line_no in unsafe_code_lines(&text) {
        let ids = safety_tag_ids(&lines, line_no);
        let site = UnsafeSite {
            file: file.to_path_buf(),
            line: line_no,
            ids: ids.clone().unwrap_or_default(),
        };
        let where_ = format!("{}:{}", file.display(), line_no);
        match ids {
            None => report.errors.push(format!(
                "{where_}: unsafe without a `// SAFETY(ledger: <id>)` tag"
            )),
            Some(ids) if ids.is_empty() => report
                .errors
                .push(format!("{where_}: SAFETY(ledger:) tag cites no invariants")),
            Some(ids) => {
                for id in &ids {
                    if !checked.iter().any(|c| c == id) {
                        report.errors.push(format!(
                            "{where_}: cites `{id}`, which the verifier does not check"
                        ));
                    }
                }
            }
        }
        report.sites.push(site);
    }

    // Crate roots outside vendor/ must pin the unsafe_code lint crate-wide.
    // Binary targets (`main.rs`, `src/bin/*.rs`) are crate roots too.
    let is_crate_root = file
        .file_name()
        .is_some_and(|n| n == "lib.rs" || n == "main.rs")
        || file
            .parent()
            .and_then(|p| p.file_name())
            .is_some_and(|n| n == "bin");
    if !vendor && is_crate_root {
        let has_lint =
            text.contains("#![forbid(unsafe_code)]") || text.contains("#![deny(unsafe_code)]");
        if !has_lint {
            report.errors.push(format!(
                "{}: crate root lacks #![forbid(unsafe_code)] / #![deny(unsafe_code)]",
                file.display()
            ));
        }
    }
}

/// Process-ledger pass for `signal-flag-only` (see
/// [`crate::PROCESS_LEDGER`]): every `extern "C" fn` *definition* in
/// non-vendor code must have a body consisting solely of lock-free atomic
/// flag traffic — each statement must be a `store`/`load` naming an
/// `Ordering` — because such functions are what gets registered as signal
/// handlers, and anything beyond an atomic flag write is not
/// async-signal-safe.  Fn-pointer *types* (`extern "C" fn(i32)`) and
/// bodiless declarations inside `extern` blocks are not definitions and
/// are skipped.  Returns one human-readable error per violation.
pub fn audit_signal_handlers(root: &Path) -> Vec<String> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    files.sort();
    let mut errors = Vec::new();
    for file in files {
        if is_vendor(&file, root) {
            continue;
        }
        let Ok(text) = fs::read_to_string(&file) else {
            continue;
        };
        check_extern_c_bodies(&file, &text, &mut errors);
    }
    errors
}

/// A copy of `text` with comments, string/char-literal contents and raw
/// strings blanked to spaces (newlines preserved, so byte offsets map to
/// the same lines).  Lets token searches ignore prose.
fn code_only(text: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let bytes = text.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut st = St::Code;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            out[i] = b'\n';
            if st == St::LineComment {
                st = St::Code;
            }
            i += 1;
            continue;
        }
        match st {
            St::Code => match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    st = St::LineComment;
                    i += 2;
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    st = St::BlockComment(1);
                    i += 2;
                }
                b'"' => {
                    st = St::Str;
                    i += 1;
                }
                b'r' | b'b' => {
                    let mut j = i + 1;
                    if b == b'b' && bytes.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') && (b == b'r' || j > i + 1) {
                        out[i] = b;
                        st = St::RawStr(hashes);
                        i = j + 1;
                    } else if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
                        out[i] = b;
                        st = St::Str;
                        i += 2;
                    } else {
                        out[i] = b;
                        i += 1;
                    }
                }
                b'\'' => {
                    if bytes.get(i + 1) == Some(&b'\\') {
                        let mut j = i + 2;
                        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
                            j += 1;
                        }
                        i = j + 1;
                    } else if bytes.get(i + 2) == Some(&b'\'') {
                        i += 3; // 'x'
                    } else {
                        out[i] = b'\''; // lifetime tick stays
                        i += 1;
                    }
                }
                _ => {
                    out[i] = b;
                    i += 1;
                }
            },
            St::LineComment => i += 1,
            St::BlockComment(depth) => {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    i += 1;
                }
            }
            St::Str => match b {
                b'\\' => i += 2,
                b'"' => {
                    st = St::Code;
                    i += 1;
                }
                _ => i += 1,
            },
            St::RawStr(hashes) => {
                if b == b'"' {
                    let mut j = i + 1;
                    let mut n = 0u32;
                    while n < hashes && bytes.get(j) == Some(&b'#') {
                        n += 1;
                        j += 1;
                    }
                    if n == hashes {
                        st = St::Code;
                        i = j;
                    } else {
                        i += 1;
                    }
                }
                // not code; leave blank
                else {
                    i += 1;
                }
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn check_extern_c_bodies(file: &Path, text: &str, errors: &mut Vec<String>) {
    // `code` has comments and string contents blanked at identical byte
    // offsets, so `extern` hits in it are real tokens — but the `"C"` ABI
    // string is blanked too, so the full signature is matched against the
    // original text at the same offset.
    let code = code_only(text);
    let needle = "extern \"C\" fn";
    let mut from = 0usize;
    while let Some(pos) = code[from..].find("extern") {
        let at = from + pos;
        from = at + "extern".len();
        if prev_is_ident(code.as_bytes(), at) || !text[at..].starts_with(needle) {
            continue;
        }
        let line_no = code[..at].bytes().filter(|b| *b == b'\n').count() + 1;
        let rest = &code[at + needle.len()..];
        if rest.trim_start().starts_with('(') {
            continue; // fn-pointer type, not a definition
        }
        // A definition's body opens before any `;`; a bodiless declaration
        // (inside an `extern` block) hits `;` first.
        let open = match (rest.find('{'), rest.find(';')) {
            (Some(o), Some(s)) if s < o => continue,
            (Some(o), _) => o,
            (None, _) => continue,
        };
        // Brace-match the body (comments/strings already blanked).
        let body_start = at + needle.len() + open + 1;
        let mut depth = 1u32;
        let mut end = code.len();
        for (off, b) in code[body_start..].bytes().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = body_start + off;
                        break;
                    }
                }
                _ => {}
            }
        }
        for stmt in code[body_start..end].lines() {
            let stmt = stmt.trim();
            if stmt.is_empty() || stmt == "{" || stmt == "}" {
                continue;
            }
            let atomic_flag = (stmt.contains(".store(") || stmt.contains(".load("))
                && stmt.contains("Ordering::");
            if !atomic_flag {
                errors.push(format!(
                    "{}:{line_no}: extern \"C\" fn body statement `{stmt}` is not \
                     atomic flag traffic — signal handlers may only store/load \
                     static atomics (ledger: signal-flag-only)",
                    file.display()
                ));
            }
        }
    }
}

/// 1-indexed lines holding an `unsafe` token in code position (strings,
/// comments, char literals and raw strings excluded).
fn unsafe_code_lines(text: &str) -> Vec<usize> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let bytes = text.as_bytes();
    let mut st = St::Code;
    let mut line = 1usize;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            if st == St::LineComment {
                st = St::Code;
            }
            i += 1;
            continue;
        }
        match st {
            St::Code => match b {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    st = St::LineComment;
                    i += 2;
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    st = St::BlockComment(1);
                    i += 2;
                }
                b'"' => {
                    st = St::Str;
                    i += 1;
                }
                b'r' | b'b' => {
                    // Possible raw string r"..", r#".."#, br".." — count the
                    // hashes between the prefix and the opening quote.
                    let mut j = i + 1;
                    if b == b'b' && bytes.get(j) == Some(&b'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') && (b == b'r' || j > i + 1) {
                        st = St::RawStr(hashes);
                        i = j + 1;
                    } else if b == b'b' && bytes.get(i + 1) == Some(&b'"') {
                        st = St::Str;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                b'\'' => {
                    // Char literal vs lifetime: a closing quote within a few
                    // bytes (allowing one escape) means a char literal.
                    if bytes.get(i + 1) == Some(&b'\\') {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
                            j += 1;
                        }
                        i = j + 1;
                    } else if bytes.get(i + 2) == Some(&b'\'') {
                        i += 3; // 'x'
                    } else {
                        i += 1; // lifetime
                    }
                }
                b'u' if text[i..].starts_with("unsafe")
                    && !prev_is_ident(bytes, i)
                    && !next_is_ident(bytes, i + 6) =>
                {
                    out.push(line);
                    i += 6;
                }
                _ => i += 1,
            },
            St::LineComment => i += 1,
            St::BlockComment(depth) => {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    i += 1;
                }
            }
            St::Str => match b {
                b'\\' => i += 2,
                b'"' => {
                    st = St::Code;
                    i += 1;
                }
                _ => i += 1,
            },
            St::RawStr(hashes) => {
                if b == b'"' {
                    let mut j = i + 1;
                    let mut n = 0u32;
                    while n < hashes && bytes.get(j) == Some(&b'#') {
                        n += 1;
                        j += 1;
                    }
                    if n == hashes {
                        st = St::Code;
                        i = j;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
    out
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

fn next_is_ident(bytes: &[u8], i: usize) -> bool {
    bytes
        .get(i)
        .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
}

/// Reads the `SAFETY(ledger: ...)` ids from the contiguous `//` comment
/// block immediately above `line` (1-indexed), looking back at most 12
/// lines.  `None`: no tag found; `Some(vec![])`: tag present but empty.
fn safety_tag_ids(lines: &[&str], line: usize) -> Option<Vec<String>> {
    let mut block = String::new();
    // Walk upward through contiguous comment lines (the unsafe line itself
    // may carry a trailing comment, but the tag convention is "above").
    let mut idx = line.saturating_sub(2); // index of the line above, 0-based
    let mut looked = 0;
    while let Some(text) = lines.get(idx) {
        let trimmed = text.trim_start();
        let Some(rest) = trimmed.strip_prefix("//") else {
            break;
        };
        block = format!("{} {}", rest.trim_start_matches('/').trim(), block);
        if idx == 0 || looked >= 12 {
            break;
        }
        idx -= 1;
        looked += 1;
    }
    let start = block.find("SAFETY(ledger:")?;
    let after = &block[start + "SAFETY(ledger:".len()..];
    let end = after.find(')')?;
    Some(
        after[..end]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_ignores_unsafe_in_comments_and_strings() {
        let src = r##"
// unsafe in a comment
/* unsafe in a block
   comment */
let s = "unsafe in a string";
let r = r#"unsafe in a raw string"#;
let c = 'u'; let lt: &'static str = "x";
fn unsafely() {} // suffix-distinct identifier is fine
"##;
        assert!(unsafe_code_lines(src).is_empty());
    }

    #[test]
    fn lexer_finds_real_unsafe() {
        let src = "fn f(s: &[u8]) -> u8 {\n    // SAFETY(ledger: reg-bounds): test\n    unsafe { *s.get_unchecked(0) }\n}\n";
        assert_eq!(unsafe_code_lines(src), vec![3]);
        let lines: Vec<&str> = src.lines().collect();
        assert_eq!(
            safety_tag_ids(&lines, 3),
            Some(vec!["reg-bounds".to_string()])
        );
    }

    #[test]
    fn multi_line_tag_with_multiple_ids() {
        let src =
            "// SAFETY(ledger: reg-bounds,\n// frame-slot-bounds): split across lines\nunsafe {}\n";
        let lines: Vec<&str> = src.lines().collect();
        assert_eq!(
            safety_tag_ids(&lines, 3),
            Some(vec![
                "reg-bounds".to_string(),
                "frame-slot-bounds".to_string()
            ])
        );
    }

    #[test]
    fn untagged_unsafe_is_none() {
        let src = "fn f() {\n    unsafe {}\n}\n";
        let lines: Vec<&str> = src.lines().collect();
        assert_eq!(safety_tag_ids(&lines, 2), None);
    }
}
