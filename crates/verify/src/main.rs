//! `bsg-verify` — static verification sweeps and the unsafe-ledger audit.
//!
//! Modes (default: all of them, with 500 random programs):
//!
//! * `--registry` — compile all registry workloads at `-O0` and `-O2`, build
//!   fused + unfused images, and require `verify_image` to accept every one.
//! * `--random N` — same acceptance over `N` random programs from the
//!   differential generators (general + `-O0` frame-shaped).
//! * `--self-test N` — mutation kit: corrupt valid images every way the kit
//!   knows and require `verify_image` to reject 100% of mutants.
//! * `--audit-unsafe [ROOT]` — scan workspace sources for `unsafe` blocks
//!   without a `// SAFETY(ledger: ...)` tag (or citing unchecked invariants),
//!   and crate roots missing the `unsafe_code` lint.
//!
//! Exits non-zero on any failure; prints one summary line per mode (the CI
//! `verify` job greps nothing — the exit code is the contract).

#![forbid(unsafe_code)]

use bsg_compiler::{compile, CompileOptions, OptLevel, TargetIsa};
use bsg_uarch::image::ExecImage;
use bsg_uarch::verify::{corrupt_image, verify_image, ALL_CORRUPTIONS};
use bsg_verify::gen::{o0_frame_program, Gen};
use bsg_verify::{audit, ledger_is_fully_checked};
use rand::Rng;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut failures = 0usize;
    let mut ran_any = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--registry" => {
                ran_any = true;
                failures += registry_sweep();
            }
            "--random" => {
                ran_any = true;
                let n = match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) => {
                        i += 1;
                        n
                    }
                    None => 500,
                };
                failures += random_sweep(n);
            }
            "--self-test" => {
                ran_any = true;
                let n = match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                    Some(n) => {
                        i += 1;
                        n
                    }
                    None => 50,
                };
                failures += mutation_self_test(n);
            }
            "--audit-unsafe" => {
                ran_any = true;
                let root = args.get(i + 1).filter(|s| !s.starts_with("--")).map(|s| {
                    i += 1;
                    PathBuf::from(s)
                });
                failures += audit_unsafe(root);
            }
            other => {
                eprintln!("bsg-verify: unknown argument `{other}`");
                eprintln!(
                    "usage: bsg-verify [--registry] [--random N] [--self-test N] \
                     [--audit-unsafe [ROOT]]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if !ran_any {
        failures += registry_sweep();
        failures += random_sweep(500);
        failures += mutation_self_test(50);
        failures += audit_unsafe(None);
    }
    if failures > 0 {
        eprintln!("bsg-verify: FAILED ({failures} failures)");
        std::process::exit(1);
    }
    println!("bsg-verify: all checks passed");
}

/// Builds both image forms for one program and verifies each; returns the
/// number of rejections (counted as failures — these are valid programs).
fn verify_both(what: &str, program: &bsg_ir::Program) -> usize {
    let mut failures = 0;
    for (form, image) in [
        ("fused", ExecImage::new(program)),
        ("unfused", ExecImage::unfused(program)),
    ] {
        if let Err(e) = verify_image(&image) {
            eprintln!("FALSE POSITIVE: {what} ({form}): {e}");
            failures += 1;
        }
    }
    failures
}

fn registry_sweep() -> usize {
    let start = Instant::now();
    let mut failures = 0;
    let mut images = 0;
    let mut decode = std::time::Duration::ZERO;
    let mut verif = std::time::Duration::ZERO;
    for w in bsg_workloads::full_suite() {
        for level in [OptLevel::O0, OptLevel::O2] {
            let compiled = match compile(&w.program, &CompileOptions::new(level, TargetIsa::X86)) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{} does not compile at {level}: {e}", w.name);
                    failures += 1;
                    continue;
                }
            };
            let t0 = Instant::now();
            let fused = ExecImage::new(&compiled.program);
            let unfused = ExecImage::unfused(&compiled.program);
            decode += t0.elapsed();
            let t1 = Instant::now();
            for (form, image) in [("fused", &fused), ("unfused", &unfused)] {
                images += 1;
                if let Err(e) = verify_image(image) {
                    eprintln!("FALSE POSITIVE: {}@{level} ({form}): {e}", w.name);
                    failures += 1;
                }
            }
            verif += t1.elapsed();
        }
    }
    println!(
        "registry: {images} images verified, {failures} failures \
         (decode {decode:.1?}, verify {verif:.1?}, {:.1}% of decode+verify)",
        100.0 * verif.as_secs_f64() / (decode + verif).as_secs_f64().max(1e-9)
    );
    println!("registry sweep done in {:.1?}", start.elapsed());
    failures
}

fn random_sweep(n: u64) -> usize {
    let start = Instant::now();
    let mut failures = 0;
    // Half general random programs, half -O0 frame-shaped ones (the shapes
    // that exercise slot typing, zero-fill elision and frame fusion).
    for seed in 0..n / 2 {
        let mut g = Gen::from_seed(seed, 0);
        g.nglobals = g.rng.gen_range(0u32..3);
        let program = g.program();
        failures += verify_both(&format!("random seed {seed}"), &program);
    }
    for seed in 0..n - n / 2 {
        let program = o0_frame_program(seed);
        failures += verify_both(&format!("o0-frame seed {seed}"), &program);
    }
    println!(
        "random: {n} programs ({} images) verified, {failures} failures in {:.1?}",
        2 * n,
        start.elapsed()
    );
    failures
}

fn mutation_self_test(n: u64) -> usize {
    let start = Instant::now();
    let mut failures = 0;
    let mut mutants = 0;
    let mut inapplicable = 0;
    let mut survived = 0;
    let mut check = |what: &str, image: &ExecImage| {
        for c in ALL_CORRUPTIONS {
            match corrupt_image(image, c) {
                None => inapplicable += 1,
                Some(mutant) => {
                    mutants += 1;
                    if verify_image(&mutant).is_ok() {
                        eprintln!("MUTANT SURVIVED: {what} under {c:?}");
                        survived += 1;
                    }
                }
            }
        }
    };
    for seed in 0..n {
        let mut g = Gen::from_seed(seed, 0);
        g.nglobals = g.rng.gen_range(0u32..3);
        check(
            &format!("random seed {seed}"),
            &ExecImage::new(&g.program()),
        );
        check(
            &format!("o0-frame seed {seed}"),
            &ExecImage::new(&o0_frame_program(seed)),
        );
    }
    // A couple of registry images too, for realistic shapes.
    for w in bsg_workloads::full_suite().into_iter().take(4) {
        if let Ok(c) = compile(
            &w.program,
            &CompileOptions::new(OptLevel::O2, TargetIsa::X86),
        ) {
            check(&w.name, &ExecImage::new(&c.program));
        }
    }
    failures += survived;
    println!(
        "self-test: {mutants} mutants, {survived} survived, {inapplicable} inapplicable \
         in {:.1?}",
        start.elapsed()
    );
    failures
}

fn audit_unsafe(root: Option<PathBuf>) -> usize {
    let start = Instant::now();
    let mut failures = 0;
    if let Err(e) = ledger_is_fully_checked() {
        eprintln!("ledger drift: {e}");
        failures += 1;
    }
    let root = root.unwrap_or_else(|| {
        audit::find_workspace_root(
            &std::env::var("CARGO_MANIFEST_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|_| std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."))),
        )
    });
    let citable = bsg_verify::citable_invariants();
    let report = audit::audit_workspace(&root, &citable);
    print!("{report}");
    failures += report.errors.len();
    // Process-ledger pass: signal handlers must be atomic-flag-only.
    let handler_errors = audit::audit_signal_handlers(&root);
    for e in &handler_errors {
        eprintln!("  error: {e}");
    }
    failures += handler_errors.len();
    println!("audit-unsafe done in {:.1?}", start.elapsed());
    failures
}
