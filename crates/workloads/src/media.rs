//! Media/DSP kernels: `adpcm`, `gsm`, `jpeg` and `susan`.
//!
//! * `adpcm` — ADPCM speech encoding: per-sample delta encoding with a step
//!   table and saturation logic (branch heavy, integer only).
//! * `gsm` — the multiply-accumulate filter core of GSM full-rate speech
//!   coding (integer MAC heavy).
//! * `jpeg` — 8×8 block DCT with quantization, the compute core of JPEG
//!   encoding (integer multiply + table loads).
//! * `susan` — 3×3 neighbourhood smoothing with a brightness threshold, the
//!   core of the SUSAN image-processing benchmark (2-D array walks with
//!   data-dependent branches).

use crate::InputSize;
use bsg_ir::build::FunctionBuilder;
use bsg_ir::hll::{BinOp, Expr, HllGlobal, HllProgram};

/// ADPCM step-size table (the standard IMA ADPCM table, 89 entries).
fn step_table() -> Vec<i64> {
    vec![
        7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60,
        66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371,
        408, 449, 494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878,
        2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845,
        8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086,
        29794, 32767,
    ]
}

/// The `adpcm` workload (encoder direction).
pub fn adpcm(input: InputSize) -> HllProgram {
    let samples = input.scale(3_000, 30_000);
    let mut p = HllProgram::new();
    p.add_global(HllGlobal::with_values("steps", step_table()));
    p.add_global(HllGlobal::with_values(
        "index_adjust",
        vec![-1, -1, -1, -1, 2, 4, 6, 8],
    ));
    p.add_global(HllGlobal::zeroed("encoded", 4096));

    let mut main = FunctionBuilder::new("main");
    main.assign_var("valpred", Expr::int(0));
    main.assign_var("index", Expr::int(0));
    main.for_loop("i", Expr::int(0), Expr::int(samples), |b| {
        // Synthetic triangular-ish waveform sample in [-2048, 2048).
        b.assign_var(
            "sample",
            Expr::sub(
                Expr::bin(
                    BinOp::Rem,
                    Expr::mul(Expr::var("i"), Expr::int(37)),
                    Expr::int(4096),
                ),
                Expr::int(2048),
            ),
        );
        b.assign_var("step", Expr::index("steps", Expr::var("index")));
        b.assign_var("diff", Expr::sub(Expr::var("sample"), Expr::var("valpred")));
        b.assign_var("code", Expr::int(0));
        b.if_then(Expr::lt(Expr::var("diff"), Expr::int(0)), |t| {
            t.assign_var("code", Expr::int(8));
            t.assign_var("diff", Expr::sub(Expr::int(0), Expr::var("diff")));
        });
        b.if_then(
            Expr::bin(BinOp::Ge, Expr::var("diff"), Expr::var("step")),
            |t| {
                t.assign_var("code", Expr::add(Expr::var("code"), Expr::int(4)));
                t.assign_var("diff", Expr::sub(Expr::var("diff"), Expr::var("step")));
            },
        );
        b.assign_var(
            "halfstep",
            Expr::bin(BinOp::Shr, Expr::var("step"), Expr::int(1)),
        );
        b.if_then(
            Expr::bin(BinOp::Ge, Expr::var("diff"), Expr::var("halfstep")),
            |t| {
                t.assign_var("code", Expr::add(Expr::var("code"), Expr::int(2)));
                t.assign_var("diff", Expr::sub(Expr::var("diff"), Expr::var("halfstep")));
            },
        );
        // Reconstruct predictor and clamp.
        b.assign_var(
            "vpdiff",
            Expr::add(
                Expr::bin(BinOp::Shr, Expr::var("step"), Expr::int(3)),
                Expr::var("halfstep"),
            ),
        );
        b.if_then_else(
            Expr::bin(BinOp::Ge, Expr::var("code"), Expr::int(8)),
            |t| {
                t.assign_var(
                    "valpred",
                    Expr::sub(Expr::var("valpred"), Expr::var("vpdiff")),
                );
            },
            |e| {
                e.assign_var(
                    "valpred",
                    Expr::add(Expr::var("valpred"), Expr::var("vpdiff")),
                );
            },
        );
        b.if_then(
            Expr::bin(BinOp::Gt, Expr::var("valpred"), Expr::int(32767)),
            |t| {
                t.assign_var("valpred", Expr::int(32767));
            },
        );
        b.if_then(Expr::lt(Expr::var("valpred"), Expr::int(-32768)), |t| {
            t.assign_var("valpred", Expr::int(-32768));
        });
        // Index update with clamping.
        b.assign_var(
            "index",
            Expr::add(
                Expr::var("index"),
                Expr::index(
                    "index_adjust",
                    Expr::bin(BinOp::And, Expr::var("code"), Expr::int(7)),
                ),
            ),
        );
        b.if_then(Expr::lt(Expr::var("index"), Expr::int(0)), |t| {
            t.assign_var("index", Expr::int(0));
        });
        b.if_then(
            Expr::bin(BinOp::Gt, Expr::var("index"), Expr::int(88)),
            |t| {
                t.assign_var("index", Expr::int(88));
            },
        );
        b.assign_index(
            "encoded",
            Expr::bin(BinOp::Rem, Expr::var("i"), Expr::int(4096)),
            Expr::var("code"),
        );
        b.assign_var(
            "checksum",
            Expr::add(Expr::var("checksum"), Expr::var("code")),
        );
    });
    main.print(Expr::var("checksum"));
    main.ret(Some(Expr::var("checksum")));
    p.add_function(main.finish());
    p
}

/// The `gsm` workload: the long-term-prediction multiply-accumulate core.
pub fn gsm(input: InputSize) -> HllProgram {
    let frames = input.scale(30, 300);
    let mut p = HllProgram::new();
    p.add_global(HllGlobal::with_values(
        "window",
        (0..320).map(|i| ((i * 97 + 11) % 8192) - 4096).collect(),
    ));
    p.add_global(HllGlobal::with_values(
        "coef",
        vec![8192, 5741, 4096, 2922, 2048, 1453, 1024, 724],
    ));
    p.add_global(HllGlobal::zeroed("filtered", 256));

    let mut main = FunctionBuilder::new("main");
    main.for_loop("frame", Expr::int(0), Expr::int(frames), |f| {
        f.for_loop("i", Expr::int(0), Expr::int(160), |b| {
            b.assign_var("acc", Expr::int(0));
            b.for_loop("j", Expr::int(0), Expr::int(8), |inner| {
                inner.assign_var(
                    "acc",
                    Expr::add(
                        Expr::var("acc"),
                        Expr::mul(
                            Expr::index(
                                "window",
                                Expr::bin(
                                    BinOp::Rem,
                                    Expr::add(Expr::var("i"), Expr::var("j")),
                                    Expr::int(320),
                                ),
                            ),
                            Expr::index("coef", Expr::var("j")),
                        ),
                    ),
                );
            });
            b.assign_index(
                "filtered",
                Expr::bin(BinOp::Rem, Expr::var("i"), Expr::int(256)),
                Expr::bin(BinOp::Shr, Expr::var("acc"), Expr::int(13)),
            );
            b.assign_var(
                "total",
                Expr::add(
                    Expr::var("total"),
                    Expr::bin(BinOp::Shr, Expr::var("acc"), Expr::int(13)),
                ),
            );
        });
    });
    main.print(Expr::var("total"));
    main.ret(Some(Expr::var("total")));
    p.add_function(main.finish());
    p
}

/// The `jpeg` workload: 8×8 forward DCT (integer approximation) plus
/// quantization over a stream of blocks.
pub fn jpeg(input: InputSize) -> HllProgram {
    let blocks = input.scale(10, 100);
    let mut p = HllProgram::new();
    p.add_global(HllGlobal::with_values(
        "pixels",
        (0..4096).map(|i| (i * 53 + 7) % 256).collect(),
    ));
    // Scaled integer cosine table: round(cos((2x+1)u*pi/16) * 1024).
    let costab: Vec<i64> = (0..64)
        .map(|i| {
            let u = (i / 8) as f64;
            let x = (i % 8) as f64;
            (((2.0 * x + 1.0) * u * std::f64::consts::PI / 16.0).cos() * 1024.0).round() as i64
        })
        .collect();
    p.add_global(HllGlobal::with_values("costab", costab));
    p.add_global(HllGlobal::with_values(
        "quant",
        vec![
            16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57,
            69, 56, 14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55,
            64, 81, 104, 113, 92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100,
            103, 99,
        ],
    ));
    p.add_global(HllGlobal::zeroed("coeffs", 64));

    let mut dct = FunctionBuilder::new("dct_block");
    dct.param("base");
    dct.for_loop("u", Expr::int(0), Expr::int(8), |bu| {
        bu.for_loop("v", Expr::int(0), Expr::int(8), |bv| {
            bv.assign_var("sum", Expr::int(0));
            bv.for_loop("x", Expr::int(0), Expr::int(8), |bx| {
                bx.for_loop("y", Expr::int(0), Expr::int(8), |by| {
                    by.assign_var(
                        "pix",
                        Expr::index(
                            "pixels",
                            Expr::bin(
                                BinOp::Rem,
                                Expr::add(
                                    Expr::var("base"),
                                    Expr::add(
                                        Expr::mul(Expr::var("x"), Expr::int(8)),
                                        Expr::var("y"),
                                    ),
                                ),
                                Expr::int(4096),
                            ),
                        ),
                    );
                    by.assign_var(
                        "sum",
                        Expr::add(
                            Expr::var("sum"),
                            Expr::mul(
                                Expr::var("pix"),
                                Expr::bin(
                                    BinOp::Shr,
                                    Expr::mul(
                                        Expr::index(
                                            "costab",
                                            Expr::add(
                                                Expr::mul(Expr::var("u"), Expr::int(8)),
                                                Expr::var("x"),
                                            ),
                                        ),
                                        Expr::index(
                                            "costab",
                                            Expr::add(
                                                Expr::mul(Expr::var("v"), Expr::int(8)),
                                                Expr::var("y"),
                                            ),
                                        ),
                                    ),
                                    Expr::int(10),
                                ),
                            ),
                        ),
                    );
                });
            });
            bv.assign_var(
                "qidx",
                Expr::add(Expr::mul(Expr::var("u"), Expr::int(8)), Expr::var("v")),
            );
            bv.assign_index(
                "coeffs",
                Expr::var("qidx"),
                Expr::bin(
                    BinOp::Div,
                    Expr::bin(BinOp::Shr, Expr::var("sum"), Expr::int(10)),
                    Expr::index("quant", Expr::var("qidx")),
                ),
            );
        });
    });
    dct.ret(Some(Expr::index("coeffs", Expr::int(0))));

    let mut main = FunctionBuilder::new("main");
    main.for_loop("b", Expr::int(0), Expr::int(blocks), |body| {
        body.call_assign(
            "dc",
            "dct_block",
            vec![Expr::mul(Expr::var("b"), Expr::int(64))],
        );
        body.assign_var("energy", Expr::add(Expr::var("energy"), Expr::var("dc")));
    });
    main.print(Expr::var("energy"));
    main.ret(Some(Expr::var("energy")));
    p.add_function(main.finish());
    p.add_function(dct.finish());
    p
}

/// The `susan` workload: brightness-thresholded 3×3 smoothing over an image.
pub fn susan(input: InputSize) -> HllProgram {
    let dim = input.scale(28, 72);
    let passes = input.scale(2, 4);
    let mut p = HllProgram::new();
    p.add_global(HllGlobal::with_values(
        "image",
        (0..(96 * 96)).map(|i| (i * 41 + 17) % 256).collect(),
    ));
    p.add_global(HllGlobal::zeroed("smoothed", 96 * 96));

    let mut main = FunctionBuilder::new("main");
    main.for_loop("pass", Expr::int(0), Expr::int(passes), |pp| {
        pp.for_loop("y", Expr::int(1), Expr::int(dim - 1), |py| {
            py.for_loop("x", Expr::int(1), Expr::int(dim - 1), |px| {
                px.assign_var(
                    "center",
                    Expr::index(
                        "image",
                        Expr::add(Expr::mul(Expr::var("y"), Expr::int(96)), Expr::var("x")),
                    ),
                );
                px.assign_var("sum", Expr::int(0));
                px.assign_var("count", Expr::int(0));
                px.for_loop("dy", Expr::int(0), Expr::int(3), |pdy| {
                    pdy.for_loop("dx", Expr::int(0), Expr::int(3), |pdx| {
                        pdx.assign_var(
                            "pix",
                            Expr::index(
                                "image",
                                Expr::add(
                                    Expr::mul(
                                        Expr::sub(
                                            Expr::add(Expr::var("y"), Expr::var("dy")),
                                            Expr::int(1),
                                        ),
                                        Expr::int(96),
                                    ),
                                    Expr::sub(
                                        Expr::add(Expr::var("x"), Expr::var("dx")),
                                        Expr::int(1),
                                    ),
                                ),
                            ),
                        );
                        pdx.assign_var(
                            "delta",
                            Expr::un(
                                bsg_ir::hll::UnOp::Abs,
                                Expr::sub(Expr::var("pix"), Expr::var("center")),
                            ),
                        );
                        // The USAN criterion: only similar pixels contribute.
                        pdx.if_then(Expr::lt(Expr::var("delta"), Expr::int(27)), |t| {
                            t.assign_var("sum", Expr::add(Expr::var("sum"), Expr::var("pix")));
                            t.assign_var("count", Expr::add(Expr::var("count"), Expr::int(1)));
                        });
                    });
                });
                px.assign_index(
                    "smoothed",
                    Expr::add(Expr::mul(Expr::var("y"), Expr::int(96)), Expr::var("x")),
                    Expr::bin(BinOp::Div, Expr::var("sum"), Expr::var("count")),
                );
                px.assign_var(
                    "total",
                    Expr::add(
                        Expr::var("total"),
                        Expr::bin(BinOp::Div, Expr::var("sum"), Expr::var("count")),
                    ),
                );
            });
        });
    });
    main.print(Expr::var("total"));
    main.ret(Some(Expr::var("total")));
    p.add_function(main.finish());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_compiler::{compile, CompileOptions, OptLevel};
    use bsg_ir::visa::MixCategory;
    use bsg_profile::{profile_program, ProfileConfig};

    fn profile(p: &HllProgram, name: &str) -> bsg_profile::StatisticalProfile {
        let c = compile(p, &CompileOptions::portable(OptLevel::O0)).unwrap();
        profile_program(&c.program, name, &ProfileConfig::default())
    }

    #[test]
    fn adpcm_is_branch_heavy() {
        let prof = profile(&adpcm(InputSize::Small), "adpcm");
        let branches = prof.mix.category_fractions()[&MixCategory::Branch];
        assert!(branches > 0.05, "adpcm should be branchy, got {branches}");
        assert!(prof.branches.values().filter(|b| !b.is_loop_back).count() >= 5);
    }

    #[test]
    fn gsm_and_jpeg_are_multiply_heavy() {
        for (p, name) in [
            (gsm(InputSize::Small), "gsm"),
            (jpeg(InputSize::Small), "jpeg"),
        ] {
            let prof = profile(&p, name);
            let mul = prof.mix.fraction(bsg_ir::visa::InstClass::IntMul);
            assert!(mul > 0.01, "{name} should multiply, got {mul}");
            assert!(prof.sfgl.loops.len() >= 2, "{name} has nested loops");
        }
    }

    #[test]
    fn susan_has_data_dependent_branches() {
        let prof = profile(&susan(InputSize::Small), "susan");
        let hard = prof
            .branches
            .values()
            .filter(|b| !b.is_loop_back && !b.is_easy_to_predict() && b.executed > 100)
            .count();
        assert!(hard >= 1, "the USAN threshold branch is data dependent");
    }
}
