//! SPEC-like kernels: `huffman`, `lu`, `nbody`, `regexscan` and `sjoin`.
//!
//! The paper's suite is MiBench, but the ROADMAP calls for scaling the
//! harness past those 13 kernels toward SPEC-style behaviour.  These five
//! kernels extend the registry with the computational characters MiBench
//! under-represents:
//!
//! * `lu` — dense LU decomposition (Doolittle, diagonally dominant, no
//!   pivoting): the classic FP loop-nest of SPEC fp codes, O(N³) multiply-
//!   subtract with triangular (non-rectangular) loop bounds.
//! * `nbody` — all-pairs force accumulation with `sqrt`-based distances and
//!   a leapfrog-ish update: FP-heavy with a long dependent chain per pair.
//! * `sjoin` — sort-merge join of two key tables (insertion sorts + a merge
//!   walk): data-dependent `while`/`break` control flow over sorted arrays,
//!   the database-style integer character of SPEC int.
//! * `huffman` — prefix-code construction and encoding over a skewed symbol
//!   stream (frequency count, per-symbol code-length derivation via shift
//!   loops, then an encode pass): table lookups with data-dependent inner
//!   loops.  The code lengths are Shannon-style (⌈log₂(total/freq)⌉) rather
//!   than a full tree build, which preserves the count/derive/encode loop
//!   structure that matters to the profile.
//! * `regexscan` — a table-driven DFA (a compiled `a b+ c? d`-style pattern)
//!   over a synthetic text: the scanning character of perlbench-like codes,
//!   two dependent loads per character and a data-dependent accept branch.
//!
//! Like the MiBench re-implementations, each kernel is deterministic, scales
//! `small` → `large` by well over 2×, and is optimization-invariant (the
//! suite-wide behaviour tests cover all of that automatically via the
//! registry).

use crate::InputSize;
use bsg_ir::build::FunctionBuilder;
use bsg_ir::hll::{BinOp, Expr, HllGlobal, HllProgram, UnOp};

/// Matrix edge capacity for `lu` (N×N stored row-major in a 32×32 global).
const LU_DIM: i64 = 32;

/// The `lu` workload: repeated in-place LU decomposition of a deterministic
/// diagonally-dominant matrix, with the diagonal folded into a checksum.
pub fn lu(input: InputSize) -> HllProgram {
    let n = input.scale(16, 30);
    let rounds = input.scale(2, 4);
    let mut p = HllProgram::new();
    p.add_global(HllGlobal::float_zeroed("mat", (LU_DIM * LU_DIM) as usize));

    let idx = |i: Expr, j: Expr| Expr::add(Expr::mul(i, Expr::int(LU_DIM)), j);

    let mut main = FunctionBuilder::new("main");
    main.float_var("pivot");
    main.float_var("factor");
    main.float_var("acc");
    main.assign_var("acc", Expr::float(0.0));
    main.for_loop("round", Expr::int(0), Expr::int(rounds), |r| {
        // Refill: mat[i][j] = ((i*73 + j*37 + round*11) % 19) + 1, with a
        // strong diagonal so the pivots stay well away from zero.
        r.for_loop("i", Expr::int(0), Expr::int(n), |row| {
            row.for_loop("j", Expr::int(0), Expr::int(n), |b| {
                b.assign_index(
                    "mat",
                    idx(Expr::var("i"), Expr::var("j")),
                    Expr::un(
                        UnOp::ToFloat,
                        Expr::add(
                            Expr::bin(
                                BinOp::Rem,
                                Expr::add(
                                    Expr::add(
                                        Expr::mul(Expr::var("i"), Expr::int(73)),
                                        Expr::mul(Expr::var("j"), Expr::int(37)),
                                    ),
                                    Expr::mul(Expr::var("round"), Expr::int(11)),
                                ),
                                Expr::int(19),
                            ),
                            Expr::int(1),
                        ),
                    ),
                );
            });
            row.assign_index(
                "mat",
                idx(Expr::var("i"), Expr::var("i")),
                Expr::add(
                    Expr::index("mat", idx(Expr::var("i"), Expr::var("i"))),
                    Expr::float(20.0 * 30.0),
                ),
            );
        });
        // Doolittle decomposition, in place: L below the diagonal, U on and
        // above it.  Triangular bounds — the loop shape SPEC fp lives in.
        r.for_loop("k", Expr::int(0), Expr::int(n), |step| {
            step.assign_var(
                "pivot",
                Expr::index("mat", idx(Expr::var("k"), Expr::var("k"))),
            );
            step.for_loop(
                "i",
                Expr::add(Expr::var("k"), Expr::int(1)),
                Expr::int(n),
                |row| {
                    row.assign_var(
                        "factor",
                        Expr::bin(
                            BinOp::Div,
                            Expr::index("mat", idx(Expr::var("i"), Expr::var("k"))),
                            Expr::var("pivot"),
                        ),
                    );
                    row.assign_index(
                        "mat",
                        idx(Expr::var("i"), Expr::var("k")),
                        Expr::var("factor"),
                    );
                    row.for_loop(
                        "j",
                        Expr::add(Expr::var("k"), Expr::int(1)),
                        Expr::int(n),
                        |b| {
                            b.assign_index(
                                "mat",
                                idx(Expr::var("i"), Expr::var("j")),
                                Expr::sub(
                                    Expr::index("mat", idx(Expr::var("i"), Expr::var("j"))),
                                    Expr::mul(
                                        Expr::var("factor"),
                                        Expr::index("mat", idx(Expr::var("k"), Expr::var("j"))),
                                    ),
                                ),
                            );
                        },
                    );
                },
            );
        });
        // Fold the U diagonal (the determinant's factors) into the checksum.
        r.for_loop("k", Expr::int(0), Expr::int(n), |b| {
            b.assign_var(
                "acc",
                Expr::add(
                    Expr::var("acc"),
                    Expr::index("mat", idx(Expr::var("k"), Expr::var("k"))),
                ),
            );
        });
    });
    main.assign_var(
        "chk",
        Expr::un(UnOp::ToInt, Expr::mul(Expr::var("acc"), Expr::float(100.0))),
    );
    main.print(Expr::var("chk"));
    main.ret(Some(Expr::var("chk")));
    p.add_function(main.finish());
    p
}

/// The `nbody` workload: all-pairs gravitational force accumulation over a
/// softened distance, advanced for several timesteps.
pub fn nbody(input: InputSize) -> HllProgram {
    let n = input.scale(24, 48);
    let steps = input.scale(6, 12);
    let mut p = HllProgram::new();
    for name in ["px", "py", "vx", "vy", "mass"] {
        p.add_global(HllGlobal::float_zeroed(name, 64));
    }

    let mut main = FunctionBuilder::new("main");
    for v in ["dx", "dy", "d2", "inv", "fx", "fy", "acc"] {
        main.float_var(v);
    }
    // Deterministic initial conditions on a jittered grid.
    main.for_loop("i", Expr::int(0), Expr::int(n), |b| {
        let jitter = |mul: i64, modulus: i64| {
            Expr::un(
                UnOp::ToFloat,
                Expr::bin(
                    BinOp::Rem,
                    Expr::mul(Expr::var("i"), Expr::int(mul)),
                    Expr::int(modulus),
                ),
            )
        };
        b.assign_index(
            "px",
            Expr::var("i"),
            Expr::mul(jitter(37, 100), Expr::float(0.25)),
        );
        b.assign_index(
            "py",
            Expr::var("i"),
            Expr::mul(jitter(59, 100), Expr::float(0.25)),
        );
        b.assign_index("vx", Expr::var("i"), Expr::float(0.0));
        b.assign_index("vy", Expr::var("i"), Expr::float(0.0));
        b.assign_index(
            "mass",
            Expr::var("i"),
            Expr::add(Expr::mul(jitter(17, 9), Expr::float(0.5)), Expr::float(1.0)),
        );
    });
    main.for_loop("step", Expr::int(0), Expr::int(steps), |s| {
        s.for_loop("i", Expr::int(0), Expr::int(n), |body_i| {
            body_i.assign_var("fx", Expr::float(0.0));
            body_i.assign_var("fy", Expr::float(0.0));
            body_i.for_loop("j", Expr::int(0), Expr::int(n), |b| {
                b.assign_var(
                    "dx",
                    Expr::sub(
                        Expr::index("px", Expr::var("j")),
                        Expr::index("px", Expr::var("i")),
                    ),
                );
                b.assign_var(
                    "dy",
                    Expr::sub(
                        Expr::index("py", Expr::var("j")),
                        Expr::index("py", Expr::var("i")),
                    ),
                );
                // Softened squared distance keeps i == j finite, so the
                // inner loop is branch-free like the real kernels.
                b.assign_var(
                    "d2",
                    Expr::add(
                        Expr::add(
                            Expr::mul(Expr::var("dx"), Expr::var("dx")),
                            Expr::mul(Expr::var("dy"), Expr::var("dy")),
                        ),
                        Expr::float(0.5),
                    ),
                );
                b.assign_var(
                    "inv",
                    Expr::bin(
                        BinOp::Div,
                        Expr::index("mass", Expr::var("j")),
                        Expr::mul(Expr::var("d2"), Expr::un(UnOp::Sqrt, Expr::var("d2"))),
                    ),
                );
                b.assign_var(
                    "fx",
                    Expr::add(
                        Expr::var("fx"),
                        Expr::mul(Expr::var("dx"), Expr::var("inv")),
                    ),
                );
                b.assign_var(
                    "fy",
                    Expr::add(
                        Expr::var("fy"),
                        Expr::mul(Expr::var("dy"), Expr::var("inv")),
                    ),
                );
            });
            body_i.assign_index(
                "vx",
                Expr::var("i"),
                Expr::add(
                    Expr::index("vx", Expr::var("i")),
                    Expr::mul(Expr::var("fx"), Expr::float(0.01)),
                ),
            );
            body_i.assign_index(
                "vy",
                Expr::var("i"),
                Expr::add(
                    Expr::index("vy", Expr::var("i")),
                    Expr::mul(Expr::var("fy"), Expr::float(0.01)),
                ),
            );
        });
        s.for_loop("i", Expr::int(0), Expr::int(n), |b| {
            b.assign_index(
                "px",
                Expr::var("i"),
                Expr::add(
                    Expr::index("px", Expr::var("i")),
                    Expr::mul(Expr::index("vx", Expr::var("i")), Expr::float(0.01)),
                ),
            );
            b.assign_index(
                "py",
                Expr::var("i"),
                Expr::add(
                    Expr::index("py", Expr::var("i")),
                    Expr::mul(Expr::index("vy", Expr::var("i")), Expr::float(0.01)),
                ),
            );
        });
    });
    main.assign_var("acc", Expr::float(0.0));
    main.for_loop("i", Expr::int(0), Expr::int(n), |b| {
        b.assign_var(
            "acc",
            Expr::add(
                Expr::var("acc"),
                Expr::add(
                    Expr::index("px", Expr::var("i")),
                    Expr::index("py", Expr::var("i")),
                ),
            ),
        );
    });
    main.assign_var(
        "chk",
        Expr::un(
            UnOp::ToInt,
            Expr::mul(Expr::var("acc"), Expr::float(1000.0)),
        ),
    );
    main.print(Expr::var("chk"));
    main.ret(Some(Expr::var("chk")));
    p.add_function(main.finish());
    p
}

/// The `sjoin` workload: fills two key tables, insertion-sorts each, then
/// merge-joins them counting and summing the matching keys.
pub fn sjoin(input: InputSize) -> HllProgram {
    let n = input.scale(250, 800);
    let key_space = 3_000;
    let mut p = HllProgram::new();
    p.add_global(HllGlobal::zeroed("ka", 1024));
    p.add_global(HllGlobal::zeroed("kb", 1024));

    // Insertion sort over one named table; HLL arrays are globals, so each
    // table gets its own (structurally identical) sort function — exactly
    // the kind of near-duplicate code real join kernels monomorphize.
    let sort_fn = |fname: &str, arr: &'static str| {
        let mut f = FunctionBuilder::new(fname);
        f.param("count");
        f.for_loop("i", Expr::int(1), Expr::var("count"), |outer| {
            outer.assign_var("key", Expr::index(arr, Expr::var("i")));
            outer.assign_var("pos", Expr::var("i"));
            outer.while_loop(Expr::bin(BinOp::Gt, Expr::var("pos"), Expr::int(0)), |w| {
                w.if_then_else(
                    Expr::bin(
                        BinOp::Gt,
                        Expr::index(arr, Expr::sub(Expr::var("pos"), Expr::int(1))),
                        Expr::var("key"),
                    ),
                    |t| {
                        t.assign_index(
                            arr,
                            Expr::var("pos"),
                            Expr::index(arr, Expr::sub(Expr::var("pos"), Expr::int(1))),
                        );
                        t.assign_var("pos", Expr::sub(Expr::var("pos"), Expr::int(1)));
                    },
                    |e| {
                        e.brk();
                    },
                );
            });
            outer.assign_index(arr, Expr::var("pos"), Expr::var("key"));
        });
        f.ret(Some(Expr::int(0)));
        f.finish()
    };

    let mut main = FunctionBuilder::new("main");
    main.for_loop("i", Expr::int(0), Expr::int(n), |b| {
        b.assign_index(
            "ka",
            Expr::var("i"),
            Expr::bin(
                BinOp::Rem,
                Expr::add(Expr::mul(Expr::var("i"), Expr::int(48_271)), Expr::int(13)),
                Expr::int(key_space),
            ),
        );
        b.assign_index(
            "kb",
            Expr::var("i"),
            Expr::bin(
                BinOp::Rem,
                Expr::add(Expr::mul(Expr::var("i"), Expr::int(69_621)), Expr::int(7)),
                Expr::int(key_space),
            ),
        );
    });
    main.call_assign("ignore_a", "sort_a", vec![Expr::int(n)]);
    main.call_assign("ignore_b", "sort_b", vec![Expr::int(n)]);
    // Merge walk: three-way comparison per step, data-dependent advance.
    main.assign_var("i", Expr::int(0));
    main.assign_var("j", Expr::int(0));
    main.while_loop(
        Expr::bin(
            BinOp::And,
            Expr::lt(Expr::var("i"), Expr::int(n)),
            Expr::lt(Expr::var("j"), Expr::int(n)),
        ),
        |w| {
            w.assign_var("a", Expr::index("ka", Expr::var("i")));
            w.assign_var("b", Expr::index("kb", Expr::var("j")));
            w.if_then_else(
                Expr::lt(Expr::var("a"), Expr::var("b")),
                |t| {
                    t.assign_var("i", Expr::add(Expr::var("i"), Expr::int(1)));
                },
                |e| {
                    e.if_then_else(
                        Expr::lt(Expr::var("b"), Expr::var("a")),
                        |t| {
                            t.assign_var("j", Expr::add(Expr::var("j"), Expr::int(1)));
                        },
                        |m| {
                            m.assign_var("matches", Expr::add(Expr::var("matches"), Expr::int(1)));
                            m.assign_var("total", Expr::add(Expr::var("total"), Expr::var("a")));
                            m.assign_var("i", Expr::add(Expr::var("i"), Expr::int(1)));
                            m.assign_var("j", Expr::add(Expr::var("j"), Expr::int(1)));
                        },
                    );
                },
            );
        },
    );
    main.assign_var(
        "result",
        Expr::add(
            Expr::var("total"),
            Expr::mul(Expr::var("matches"), Expr::int(1_000_000)),
        ),
    );
    main.print(Expr::var("result"));
    main.ret(Some(Expr::var("result")));

    p.add_function(main.finish());
    p.add_function(sort_fn("sort_a", "ka"));
    p.add_function(sort_fn("sort_b", "kb"));
    p
}

/// The `huffman` workload: frequency count over a skewed symbol stream,
/// Shannon-style code-length derivation per symbol, then an encode pass
/// accumulating the emitted bit count (see the module docs for the
/// tree-construction substitution rationale).
pub fn huffman(input: InputSize) -> HllProgram {
    let text_len = input.scale(6_000, 48_000);
    let symbols = 32i64;
    let mut p = HllProgram::new();
    p.add_global(HllGlobal::zeroed("freq", 64));
    p.add_global(HllGlobal::zeroed("codelen", 64));

    // Skewed deterministic symbol stream: AND-ing two spread hashes biases
    // toward low symbol values, giving the non-uniform histogram a prefix
    // code exists to exploit.
    let symbol_of = |i: &str| {
        Expr::bin(
            BinOp::And,
            Expr::bin(
                BinOp::And,
                Expr::mul(Expr::var(i), Expr::int(2_654_435_761)),
                Expr::bin(
                    BinOp::Shr,
                    Expr::mul(Expr::var(i), Expr::int(40_503)),
                    Expr::int(3),
                ),
            ),
            Expr::int(symbols - 1),
        )
    };

    let mut main = FunctionBuilder::new("main");
    // Pass 1: histogram.
    main.for_loop("i", Expr::int(0), Expr::int(text_len), |b| {
        b.assign_var("sym", symbol_of("i"));
        b.assign_index(
            "freq",
            Expr::var("sym"),
            Expr::add(Expr::index("freq", Expr::var("sym")), Expr::int(1)),
        );
    });
    // Pass 2: per-symbol code length = bit length of total/freq (Shannon),
    // via a data-dependent shift loop.
    main.for_loop("s", Expr::int(0), Expr::int(symbols), |b| {
        b.if_then(
            Expr::bin(BinOp::Gt, Expr::index("freq", Expr::var("s")), Expr::int(0)),
            |t| {
                t.assign_var(
                    "ratio",
                    Expr::bin(
                        BinOp::Div,
                        Expr::int(text_len),
                        Expr::index("freq", Expr::var("s")),
                    ),
                );
                t.assign_var("bits", Expr::int(1));
                t.while_loop(
                    Expr::bin(BinOp::Gt, Expr::var("ratio"), Expr::int(1)),
                    |w| {
                        w.assign_var(
                            "ratio",
                            Expr::bin(BinOp::Shr, Expr::var("ratio"), Expr::int(1)),
                        );
                        w.assign_var("bits", Expr::add(Expr::var("bits"), Expr::int(1)));
                    },
                );
                t.assign_index("codelen", Expr::var("s"), Expr::var("bits"));
            },
        );
    });
    // Pass 3: encode — total bits emitted plus a rolling checksum.
    main.for_loop("i", Expr::int(0), Expr::int(text_len), |b| {
        b.assign_var("sym", symbol_of("i"));
        b.assign_var(
            "bits_out",
            Expr::add(
                Expr::var("bits_out"),
                Expr::index("codelen", Expr::var("sym")),
            ),
        );
        b.assign_var(
            "chk",
            Expr::bin(
                BinOp::Xor,
                Expr::var("chk"),
                Expr::mul(Expr::var("bits_out"), Expr::int(31)),
            ),
        );
    });
    // Bit count in the high part, rolling checksum in the low 16 bits, so
    // both survive in one observable return value.
    main.assign_var(
        "result",
        Expr::add(
            Expr::mul(Expr::var("bits_out"), Expr::int(0x10000)),
            Expr::bin(BinOp::And, Expr::var("chk"), Expr::int(0xffff)),
        ),
    );
    main.print(Expr::var("result"));
    main.ret(Some(Expr::var("result")));
    p.add_function(main.finish());
    p
}

/// The `regexscan` workload: a table-driven DFA for an `a b+ c? d`-style
/// pattern scanned across a deterministic synthetic text.
pub fn regexscan(input: InputSize) -> HllProgram {
    let text_len = input.scale(15_000, 120_000);
    // Alphabet 0..8; symbols 1 = 'a', 2 = 'b', 3 = 'c', 4 = 'd'.  States:
    // 0 start, 1 seen-a, 2 in-b-run, 3 seen-c, 4 accept.  On any mismatch,
    // fall back to start (restarting on 'a', as a scanning matcher does).
    let states = 5i64;
    let mut delta = vec![0i64; (states * 8) as usize];
    for st in 0..states {
        for c in 0..8 {
            let next = match (st, c) {
                (0, 1) => 1,          // a
                (1, 2) => 2,          // ab
                (2, 2) => 2,          // b+
                (2, 3) => 3,          // b+ c
                (2, 4) | (3, 4) => 4, // accept on d
                (_, 1) => 1,          // any a restarts a match attempt
                _ => 0,
            };
            delta[(st * 8 + c) as usize] = next;
        }
    }
    let mut p = HllProgram::new();
    p.add_global(HllGlobal::with_values("delta", delta));

    let mut main = FunctionBuilder::new("main");
    main.assign_var("st", Expr::int(0));
    main.for_loop("pos", Expr::int(0), Expr::int(text_len), |b| {
        // Periodic small-alphabet text with a slow drift (33 ≡ 1 mod 8, so
        // the symbol stream ascends through 1,2,3,4 regularly — the pattern
        // occurs at every scale — while `pos/7` shifts the phase enough to
        // break perfect periodicity).
        b.assign_var(
            "c",
            Expr::bin(
                BinOp::Rem,
                Expr::add(
                    Expr::mul(Expr::var("pos"), Expr::int(33)),
                    Expr::bin(BinOp::Div, Expr::var("pos"), Expr::int(7)),
                ),
                Expr::int(8),
            ),
        );
        b.assign_var(
            "st",
            Expr::index(
                "delta",
                Expr::add(Expr::mul(Expr::var("st"), Expr::int(8)), Expr::var("c")),
            ),
        );
        b.if_then(Expr::eq(Expr::var("st"), Expr::int(4)), |t| {
            t.assign_var("found", Expr::add(Expr::var("found"), Expr::int(1)));
            t.assign_var("st", Expr::int(0));
        });
    });
    main.print(Expr::var("found"));
    main.ret(Some(Expr::var("found")));
    p.add_function(main.finish());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_compiler::{compile, CompileOptions, OptLevel, TargetIsa};

    fn run_level(p: &HllProgram, level: OptLevel) -> i64 {
        let c = compile(p, &CompileOptions::new(level, TargetIsa::X86_64)).unwrap();
        bsg_uarch::exec::run(&c.program)
            .return_value
            .unwrap()
            .as_int()
    }

    #[test]
    fn lu_checksum_is_stable_across_levels() {
        let p = lu(InputSize::Small);
        let chk = run_level(&p, OptLevel::O0);
        assert_eq!(chk, run_level(&p, OptLevel::O3));
        // Diagonal dominance: every pivot stays near the boost value, so the
        // diagonal sum is large and positive.
        assert!(chk > 0, "diagonal checksum {chk}");
    }

    #[test]
    fn nbody_is_deterministic_and_float_heavy() {
        let p = nbody(InputSize::Small);
        assert_eq!(run_level(&p, OptLevel::O0), run_level(&p, OptLevel::O2));
    }

    #[test]
    fn sjoin_finds_matches_and_sorts_consistently() {
        let p = sjoin(InputSize::Small);
        let result = run_level(&p, OptLevel::O1);
        assert!(
            result >= 1_000_000,
            "overlapping key spaces must produce at least one match: {result}"
        );
        assert_eq!(run_level(&p, OptLevel::O0), run_level(&p, OptLevel::O3));
    }

    #[test]
    fn huffman_compresses_the_skewed_stream() {
        let p = huffman(InputSize::Small);
        let result = run_level(&p, OptLevel::O0);
        let bits_out = result >> 16;
        // Every symbol needs at least one emitted bit, and the Shannon
        // lengths must not degenerate to zero.
        assert!(bits_out > 6_000, "emitted bits {bits_out}");
        assert_eq!(result, run_level(&p, OptLevel::O2));
    }

    #[test]
    fn regexscan_accepts_some_matches() {
        let p = regexscan(InputSize::Small);
        let found = run_level(&p, OptLevel::O0);
        assert!(found > 0, "the periodic text must contain the pattern");
        assert_eq!(found, run_level(&p, OptLevel::O3));
    }
}
