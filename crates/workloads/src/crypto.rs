//! Checksum / hash kernels: `crc32` and `sha`.
//!
//! Both MiBench kernels stream over a byte buffer applying shift/xor/add
//! mixing; `crc32` is table-driven (one load per byte), `sha` expands each
//! block into a message schedule and runs 80 mixing rounds.  The
//! reproductions use a 32-bit mask (`0xffffffff`) to mimic the original
//! word size on the workspace's 64-bit integer values.

use crate::InputSize;
use bsg_ir::build::FunctionBuilder;
use bsg_ir::hll::{BinOp, Expr, HllGlobal, HllProgram};

const MASK32: i64 = 0xffff_ffff;

fn mask32(e: Expr) -> Expr {
    Expr::bin(BinOp::And, e, Expr::int(MASK32))
}

/// The CRC-32 lookup table (standard reflected polynomial 0xEDB88320).
fn crc_table() -> Vec<i64> {
    (0..256u32)
        .map(|i| {
            let mut c = i;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            c as i64
        })
        .collect()
}

/// The `crc32` workload: a table-driven CRC over a synthetic byte stream.
pub fn crc32(input: InputSize) -> HllProgram {
    let len = input.scale(6_000, 60_000);
    let mut p = HllProgram::new();
    p.add_global(HllGlobal::with_values("crc_table", crc_table()));
    p.add_global(HllGlobal::with_values(
        "message",
        (0..4096).map(|i| (i * 131 + 89) % 256).collect(),
    ));

    let mut main = FunctionBuilder::new("main");
    main.assign_var("crc", Expr::int(MASK32));
    main.for_loop("i", Expr::int(0), Expr::int(len), |b| {
        b.assign_var(
            "byte",
            Expr::index(
                "message",
                Expr::bin(BinOp::Rem, Expr::var("i"), Expr::int(4096)),
            ),
        );
        b.assign_var(
            "idx",
            Expr::bin(
                BinOp::And,
                Expr::bin(BinOp::Xor, Expr::var("crc"), Expr::var("byte")),
                Expr::int(0xff),
            ),
        );
        b.assign_var(
            "crc",
            mask32(Expr::bin(
                BinOp::Xor,
                Expr::bin(BinOp::Shr, Expr::var("crc"), Expr::int(8)),
                Expr::index("crc_table", Expr::var("idx")),
            )),
        );
    });
    main.assign_var(
        "crc",
        mask32(Expr::bin(BinOp::Xor, Expr::var("crc"), Expr::int(MASK32))),
    );
    main.print(Expr::var("crc"));
    main.ret(Some(Expr::var("crc")));
    p.add_function(main.finish());
    p
}

/// The `sha` workload: SHA-1-style message-schedule expansion and 80 mixing
/// rounds per block over a synthetic message.
pub fn sha(input: InputSize) -> HllProgram {
    let blocks = input.scale(25, 250);
    let mut p = HllProgram::new();
    p.add_global(HllGlobal::with_values(
        "msg",
        (0..2048)
            .map(|i| ((i * 2654435761i64 + 12345) & MASK32) % 65536)
            .collect(),
    ));
    p.add_global(HllGlobal::zeroed("w", 80));
    p.add_global(HllGlobal::with_values(
        "h",
        vec![
            0x6745_2301,
            0xEFCD_AB89,
            0x98BA_DCFE,
            0x1032_5476,
            0xC3D2_E1F0,
        ],
    ));

    let rotl = |e: Expr, k: i64| {
        mask32(Expr::bin(
            BinOp::Or,
            Expr::bin(BinOp::Shl, e.clone(), Expr::int(k)),
            Expr::bin(BinOp::Shr, e, Expr::int(32 - k)),
        ))
    };

    let mut block_fn = FunctionBuilder::new("sha_block");
    block_fn.param("base");
    // Message schedule: w[0..16] from the message, w[16..80] expanded.
    block_fn.for_loop("t", Expr::int(0), Expr::int(16), |b| {
        b.assign_index(
            "w",
            Expr::var("t"),
            Expr::index(
                "msg",
                Expr::bin(
                    BinOp::Rem,
                    Expr::add(Expr::var("base"), Expr::var("t")),
                    Expr::int(2048),
                ),
            ),
        );
    });
    block_fn.for_loop("t", Expr::int(16), Expr::int(80), |b| {
        b.assign_var(
            "x",
            Expr::bin(
                BinOp::Xor,
                Expr::bin(
                    BinOp::Xor,
                    Expr::index("w", Expr::sub(Expr::var("t"), Expr::int(3))),
                    Expr::index("w", Expr::sub(Expr::var("t"), Expr::int(8))),
                ),
                Expr::bin(
                    BinOp::Xor,
                    Expr::index("w", Expr::sub(Expr::var("t"), Expr::int(14))),
                    Expr::index("w", Expr::sub(Expr::var("t"), Expr::int(16))),
                ),
            ),
        );
        b.assign_index("w", Expr::var("t"), rotl(Expr::var("x"), 1));
    });
    // Working variables and 80 rounds.
    for (v, i) in [("a", 0), ("b", 1), ("c", 2), ("d", 3), ("e", 4)] {
        block_fn.assign_var(v, Expr::index("h", Expr::int(i)));
    }
    block_fn.for_loop("t", Expr::int(0), Expr::int(80), |b| {
        b.if_then_else(
            Expr::lt(Expr::var("t"), Expr::int(20)),
            |t| {
                t.assign_var(
                    "f",
                    Expr::bin(
                        BinOp::Or,
                        Expr::bin(BinOp::And, Expr::var("b"), Expr::var("c")),
                        Expr::bin(
                            BinOp::And,
                            Expr::bin(BinOp::Xor, Expr::var("b"), Expr::int(MASK32)),
                            Expr::var("d"),
                        ),
                    ),
                );
                t.assign_var("k", Expr::int(0x5A82_7999));
            },
            |e| {
                e.assign_var(
                    "f",
                    Expr::bin(
                        BinOp::Xor,
                        Expr::bin(BinOp::Xor, Expr::var("b"), Expr::var("c")),
                        Expr::var("d"),
                    ),
                );
                e.assign_var("k", Expr::int(0x6ED9_EBA1));
            },
        );
        b.assign_var(
            "temp",
            mask32(Expr::add(
                Expr::add(
                    Expr::add(rotl(Expr::var("a"), 5), Expr::var("f")),
                    Expr::add(Expr::var("e"), Expr::var("k")),
                ),
                Expr::index("w", Expr::var("t")),
            )),
        );
        b.assign_var("e", Expr::var("d"));
        b.assign_var("d", Expr::var("c"));
        b.assign_var("c", rotl(Expr::var("b"), 30));
        b.assign_var("b", Expr::var("a"));
        b.assign_var("a", Expr::var("temp"));
    });
    for (v, i) in [("a", 0), ("b", 1), ("c", 2), ("d", 3), ("e", 4)] {
        block_fn.assign_index(
            "h",
            Expr::int(i),
            mask32(Expr::add(Expr::index("h", Expr::int(i)), Expr::var(v))),
        );
    }
    block_fn.ret(Some(Expr::index("h", Expr::int(0))));

    let mut main = FunctionBuilder::new("main");
    main.for_loop("blk", Expr::int(0), Expr::int(blocks), |b| {
        b.call_assign(
            "digest",
            "sha_block",
            vec![Expr::mul(Expr::var("blk"), Expr::int(16))],
        );
    });
    main.print(Expr::var("digest"));
    main.ret(Some(Expr::var("digest")));
    p.add_function(main.finish());
    p.add_function(block_fn.finish());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_compiler::{compile, CompileOptions, OptLevel, TargetIsa};

    #[test]
    fn crc32_produces_a_stable_checksum() {
        let p = crc32(InputSize::Small);
        let o0 = compile(&p, &CompileOptions::portable(OptLevel::O0)).unwrap();
        let o3 = compile(&p, &CompileOptions::new(OptLevel::O3, TargetIsa::X86_64)).unwrap();
        let a = bsg_uarch::exec::run(&o0.program);
        let b = bsg_uarch::exec::run(&o3.program);
        assert_eq!(a.return_value, b.return_value);
        let crc = a.return_value.unwrap().as_int();
        assert!(
            crc > 0 && crc <= MASK32,
            "CRC stays within 32 bits: {crc:#x}"
        );
    }

    #[test]
    fn sha_digest_is_within_32_bits_and_input_dependent() {
        let small = sha(InputSize::Small);
        let c = compile(&small, &CompileOptions::portable(OptLevel::O1)).unwrap();
        let out = bsg_uarch::exec::run(&c.program);
        let digest = out.return_value.unwrap().as_int();
        assert!((0..=MASK32).contains(&digest));
        // More blocks -> different digest.
        let large = sha(InputSize::Large);
        let c2 = compile(&large, &CompileOptions::portable(OptLevel::O1)).unwrap();
        assert_ne!(
            bsg_uarch::exec::run(&c2.program)
                .return_value
                .unwrap()
                .as_int(),
            digest
        );
    }
}
