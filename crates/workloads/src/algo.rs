//! Integer / pointer-style kernels: `bitcount`, `dijkstra`, `patricia`,
//! `qsort` and `stringsearch`.
//!
//! These are the control-flow- and memory-intensive half of the suite:
//! `bitcount` is pure integer ALU work with short data-dependent loops,
//! `dijkstra` walks an adjacency matrix, `patricia` performs bit-tested
//! lookups in a sorted key table (a trie proxy with the same data-dependent
//! branch behaviour), `qsort` is an iterative quicksort with an explicit
//! stack, and `stringsearch` scans a text buffer for short patterns.

use crate::InputSize;
use bsg_ir::build::FunctionBuilder;
use bsg_ir::hll::{BinOp, Expr, HllGlobal, HllProgram};

/// The `bitcount` workload: count set bits with two different methods
/// (Kernighan's loop and a nibble table), as the MiBench kernel does.
pub fn bitcount(input: InputSize) -> HllProgram {
    let values = input.scale(4_000, 40_000);
    let mut p = HllProgram::new();
    p.add_global(HllGlobal::with_values(
        "nibble_counts",
        vec![0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4],
    ));

    let mut kernighan = FunctionBuilder::new("count_kernighan");
    kernighan.param("x");
    kernighan.assign_var("n", Expr::int(0));
    kernighan.while_loop(Expr::bin(BinOp::Ne, Expr::var("x"), Expr::int(0)), |b| {
        b.assign_var(
            "x",
            Expr::bin(
                BinOp::And,
                Expr::var("x"),
                Expr::sub(Expr::var("x"), Expr::int(1)),
            ),
        );
        b.assign_var("n", Expr::add(Expr::var("n"), Expr::int(1)));
    });
    kernighan.ret(Some(Expr::var("n")));

    let mut table = FunctionBuilder::new("count_table");
    table.param("x");
    table.assign_var("n", Expr::int(0));
    table.for_loop("shift", Expr::int(0), Expr::int(8), |b| {
        b.assign_var(
            "n",
            Expr::add(
                Expr::var("n"),
                Expr::index(
                    "nibble_counts",
                    Expr::bin(
                        BinOp::And,
                        Expr::bin(
                            BinOp::Shr,
                            Expr::var("x"),
                            Expr::mul(Expr::var("shift"), Expr::int(4)),
                        ),
                        Expr::int(15),
                    ),
                ),
            ),
        );
    });
    table.ret(Some(Expr::var("n")));

    let mut main = FunctionBuilder::new("main");
    main.for_loop("i", Expr::int(0), Expr::int(values), |b| {
        b.assign_var(
            "v",
            Expr::bin(
                BinOp::And,
                Expr::mul(Expr::var("i"), Expr::int(2654435761)),
                Expr::int(0xffff_ffff),
            ),
        );
        b.call_assign("a", "count_kernighan", vec![Expr::var("v")]);
        b.call_assign("c", "count_table", vec![Expr::var("v")]);
        b.assign_var(
            "total",
            Expr::add(
                Expr::var("total"),
                Expr::add(Expr::var("a"), Expr::var("c")),
            ),
        );
    });
    main.print(Expr::var("total"));
    main.ret(Some(Expr::var("total")));

    let mut p_out = p;
    p_out.add_function(main.finish());
    p_out.add_function(kernighan.finish());
    p_out.add_function(table.finish());
    p_out
}

/// The `dijkstra` workload: single-source shortest paths over a dense
/// adjacency matrix, repeated for several sources.
pub fn dijkstra(input: InputSize) -> HllProgram {
    let nodes = input.scale(20, 48);
    let sources = input.scale(3, 10);
    let mut p = HllProgram::new();
    // Deterministic dense weighted graph (64 x 64 capacity).
    p.add_global(HllGlobal::with_values(
        "adj",
        (0..(64 * 64)).map(|i| (i * 73 + 19) % 100 + 1).collect(),
    ));
    p.add_global(HllGlobal::zeroed("dist", 64));
    p.add_global(HllGlobal::zeroed("visited", 64));

    let mut main = FunctionBuilder::new("main");
    main.for_loop("src", Expr::int(0), Expr::int(sources), |s| {
        // Initialize.
        s.for_loop("i", Expr::int(0), Expr::int(nodes), |b| {
            b.assign_index("dist", Expr::var("i"), Expr::int(1_000_000));
            b.assign_index("visited", Expr::var("i"), Expr::int(0));
        });
        s.assign_index("dist", Expr::var("src"), Expr::int(0));
        // Main relaxation loop.
        s.for_loop("iter", Expr::int(0), Expr::int(nodes), |it| {
            // Select the unvisited node with the smallest distance.
            it.assign_var("best", Expr::int(-1));
            it.assign_var("bestd", Expr::int(2_000_000));
            it.for_loop("i", Expr::int(0), Expr::int(nodes), |b| {
                b.if_then(
                    Expr::bin(
                        BinOp::And,
                        Expr::eq(Expr::index("visited", Expr::var("i")), Expr::int(0)),
                        Expr::lt(Expr::index("dist", Expr::var("i")), Expr::var("bestd")),
                    ),
                    |t| {
                        t.assign_var("best", Expr::var("i"));
                        t.assign_var("bestd", Expr::index("dist", Expr::var("i")));
                    },
                );
            });
            it.if_then(Expr::bin(BinOp::Ge, Expr::var("best"), Expr::int(0)), |t| {
                t.assign_index("visited", Expr::var("best"), Expr::int(1));
                // Relax every neighbour.
                t.for_loop("j", Expr::int(0), Expr::int(nodes), |b| {
                    b.assign_var(
                        "cand",
                        Expr::add(
                            Expr::var("bestd"),
                            Expr::index(
                                "adj",
                                Expr::add(
                                    Expr::mul(Expr::var("best"), Expr::int(64)),
                                    Expr::var("j"),
                                ),
                            ),
                        ),
                    );
                    b.if_then(
                        Expr::lt(Expr::var("cand"), Expr::index("dist", Expr::var("j"))),
                        |u| {
                            u.assign_index("dist", Expr::var("j"), Expr::var("cand"));
                        },
                    );
                });
            });
        });
        s.for_loop("i", Expr::int(0), Expr::int(nodes), |b| {
            b.assign_var(
                "sum",
                Expr::add(Expr::var("sum"), Expr::index("dist", Expr::var("i"))),
            );
        });
    });
    main.print(Expr::var("sum"));
    main.ret(Some(Expr::var("sum")));
    p.add_function(main.finish());
    p
}

/// The `patricia` workload: bit-tested lookups in a sorted key table — a
/// proxy for Patricia-trie routing-table lookups with the same data-dependent
/// branch and pointer-chasing-like load behaviour.
pub fn patricia(input: InputSize) -> HllProgram {
    let keys = 1024i64;
    let lookups = input.scale(1_500, 15_000);
    let mut p = HllProgram::new();
    // Sorted key table (strictly increasing) standing in for trie nodes.
    p.add_global(HllGlobal::with_values(
        "keys",
        (0..keys).map(|i| i * 37 + (i % 7)).collect(),
    ));
    p.add_global(HllGlobal::zeroed("hits", 64));

    let mut lookup = FunctionBuilder::new("lookup");
    lookup.param("needle");
    lookup.assign_var("lo", Expr::int(0));
    lookup.assign_var("hi", Expr::int(keys - 1));
    lookup.assign_var("steps", Expr::int(0));
    lookup.while_loop(Expr::lt(Expr::var("lo"), Expr::var("hi")), |b| {
        b.assign_var(
            "mid",
            Expr::bin(
                BinOp::Shr,
                Expr::add(Expr::var("lo"), Expr::var("hi")),
                Expr::int(1),
            ),
        );
        b.if_then_else(
            Expr::lt(Expr::index("keys", Expr::var("mid")), Expr::var("needle")),
            |t| {
                t.assign_var("lo", Expr::add(Expr::var("mid"), Expr::int(1)));
            },
            |e| {
                e.assign_var("hi", Expr::var("mid"));
            },
        );
        b.assign_var("steps", Expr::add(Expr::var("steps"), Expr::int(1)));
    });
    lookup.ret(Some(Expr::var("lo")));

    let mut main = FunctionBuilder::new("main");
    main.for_loop("i", Expr::int(0), Expr::int(lookups), |b| {
        b.assign_var(
            "needle",
            Expr::bin(
                BinOp::Rem,
                Expr::mul(Expr::var("i"), Expr::int(104729)),
                Expr::int(keys * 37),
            ),
        );
        b.call_assign("pos", "lookup", vec![Expr::var("needle")]);
        b.assign_index(
            "hits",
            Expr::bin(BinOp::And, Expr::var("pos"), Expr::int(63)),
            Expr::add(
                Expr::index(
                    "hits",
                    Expr::bin(BinOp::And, Expr::var("pos"), Expr::int(63)),
                ),
                Expr::int(1),
            ),
        );
        b.assign_var("total", Expr::add(Expr::var("total"), Expr::var("pos")));
    });
    main.print(Expr::var("total"));
    main.ret(Some(Expr::var("total")));
    p.add_function(main.finish());
    p.add_function(lookup.finish());
    p
}

/// The `qsort` workload: iterative quicksort (explicit stack) over a
/// pseudo-random integer array, repeated over several shuffles.
pub fn qsort(input: InputSize) -> HllProgram {
    let n = input.scale(400, 2_500);
    let rounds = input.scale(2, 4);
    let mut p = HllProgram::new();
    p.add_global(HllGlobal::zeroed("arr", 4096));
    p.add_global(HllGlobal::zeroed("stack_lo", 128));
    p.add_global(HllGlobal::zeroed("stack_hi", 128));

    let mut main = FunctionBuilder::new("main");
    main.for_loop("round", Expr::int(0), Expr::int(rounds), |r| {
        // Refill the array with a deterministic pseudo-random permutation.
        r.for_loop("i", Expr::int(0), Expr::int(n), |b| {
            b.assign_index(
                "arr",
                Expr::var("i"),
                Expr::bin(
                    BinOp::Rem,
                    Expr::add(
                        Expr::mul(Expr::var("i"), Expr::int(48271)),
                        Expr::mul(Expr::var("round"), Expr::int(123)),
                    ),
                    Expr::int(100_000),
                ),
            );
        });
        // Iterative quicksort.
        r.assign_var("sp", Expr::int(1));
        r.assign_index("stack_lo", Expr::int(0), Expr::int(0));
        r.assign_index("stack_hi", Expr::int(0), Expr::int(n - 1));
        r.while_loop(Expr::bin(BinOp::Gt, Expr::var("sp"), Expr::int(0)), |w| {
            w.assign_var("sp", Expr::sub(Expr::var("sp"), Expr::int(1)));
            w.assign_var("lo", Expr::index("stack_lo", Expr::var("sp")));
            w.assign_var("hi", Expr::index("stack_hi", Expr::var("sp")));
            w.if_then(Expr::lt(Expr::var("lo"), Expr::var("hi")), |part| {
                // Lomuto partition around arr[hi].
                part.assign_var("pivot", Expr::index("arr", Expr::var("hi")));
                part.assign_var("store", Expr::var("lo"));
                part.for_loop_step(
                    "k",
                    Expr::var("lo"),
                    Expr::var("hi"),
                    Expr::int(1),
                    |inner| {
                        inner.if_then(
                            Expr::lt(Expr::index("arr", Expr::var("k")), Expr::var("pivot")),
                            |t| {
                                t.assign_var("tmp", Expr::index("arr", Expr::var("store")));
                                t.assign_index(
                                    "arr",
                                    Expr::var("store"),
                                    Expr::index("arr", Expr::var("k")),
                                );
                                t.assign_index("arr", Expr::var("k"), Expr::var("tmp"));
                                t.assign_var("store", Expr::add(Expr::var("store"), Expr::int(1)));
                            },
                        );
                    },
                );
                part.assign_var("tmp", Expr::index("arr", Expr::var("store")));
                part.assign_index(
                    "arr",
                    Expr::var("store"),
                    Expr::index("arr", Expr::var("hi")),
                );
                part.assign_index("arr", Expr::var("hi"), Expr::var("tmp"));
                // Push the two halves (bounded stack: 128 entries is plenty).
                part.assign_index("stack_lo", Expr::var("sp"), Expr::var("lo"));
                part.assign_index(
                    "stack_hi",
                    Expr::var("sp"),
                    Expr::sub(Expr::var("store"), Expr::int(1)),
                );
                part.assign_var("sp", Expr::add(Expr::var("sp"), Expr::int(1)));
                part.assign_index(
                    "stack_lo",
                    Expr::var("sp"),
                    Expr::add(Expr::var("store"), Expr::int(1)),
                );
                part.assign_index("stack_hi", Expr::var("sp"), Expr::var("hi"));
                part.assign_var("sp", Expr::add(Expr::var("sp"), Expr::int(1)));
            });
        });
        r.assign_var(
            "checksum",
            Expr::add(
                Expr::var("checksum"),
                Expr::add(
                    Expr::index("arr", Expr::int(0)),
                    Expr::index("arr", Expr::int(n - 1)),
                ),
            ),
        );
    });
    main.print(Expr::var("checksum"));
    main.ret(Some(Expr::var("checksum")));
    p.add_function(main.finish());
    p
}

/// The `stringsearch` workload: scan a synthetic text for several short
/// patterns with a naive early-exit matcher.
pub fn stringsearch(input: InputSize) -> HllProgram {
    let text_len = input.scale(3_000, 30_000);
    let patterns = 6i64;
    let mut p = HllProgram::new();
    // Text over a small alphabet so partial matches happen regularly.
    p.add_global(HllGlobal::with_values(
        "text",
        (0..32_768).map(|i| (i * 31 + (i / 7)) % 8).collect(),
    ));
    // Patterns are taken verbatim from the text at staggered offsets, so each
    // one occurs at least once (more often for the periodic early offsets).
    let text: Vec<i64> = (0..32_768i64).map(|i| (i * 31 + (i / 7)) % 8).collect();
    let needles: Vec<i64> = (0..patterns)
        .flat_map(|n| text[(n * 211) as usize..(n * 211 + 8) as usize].to_vec())
        .collect();
    p.add_global(HllGlobal::with_values("needles", needles));

    let mut main = FunctionBuilder::new("main");
    main.for_loop("pi", Expr::int(0), Expr::int(patterns), |pp| {
        pp.assign_var("plen", Expr::int(8));
        pp.assign_var("pbase", Expr::mul(Expr::var("pi"), Expr::int(8)));
        pp.for_loop("pos", Expr::int(0), Expr::int(text_len - 8), |b| {
            b.assign_var("j", Expr::int(0));
            b.assign_var("matching", Expr::int(1));
            b.while_loop(
                Expr::bin(
                    BinOp::And,
                    Expr::lt(Expr::var("j"), Expr::var("plen")),
                    Expr::bin(BinOp::Ne, Expr::var("matching"), Expr::int(0)),
                ),
                |w| {
                    w.if_then(
                        Expr::bin(
                            BinOp::Ne,
                            Expr::index("text", Expr::add(Expr::var("pos"), Expr::var("j"))),
                            Expr::index("needles", Expr::add(Expr::var("pbase"), Expr::var("j"))),
                        ),
                        |t| {
                            t.assign_var("matching", Expr::int(0));
                        },
                    );
                    w.assign_var("j", Expr::add(Expr::var("j"), Expr::int(1)));
                },
            );
            b.if_then(
                Expr::bin(BinOp::Ne, Expr::var("matching"), Expr::int(0)),
                |t| {
                    t.assign_var("found", Expr::add(Expr::var("found"), Expr::int(1)));
                },
            );
        });
    });
    main.print(Expr::var("found"));
    main.ret(Some(Expr::var("found")));
    p.add_function(main.finish());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_compiler::{compile, CompileOptions, OptLevel, TargetIsa};

    fn run_level(p: &HllProgram, level: OptLevel) -> i64 {
        let c = compile(p, &CompileOptions::new(level, TargetIsa::X86_64)).unwrap();
        bsg_uarch::exec::run(&c.program)
            .return_value
            .unwrap()
            .as_int()
    }

    #[test]
    fn bitcount_totals_are_consistent_across_levels() {
        let p = bitcount(InputSize::Small);
        assert_eq!(run_level(&p, OptLevel::O0), run_level(&p, OptLevel::O3));
        assert!(run_level(&p, OptLevel::O0) > 0);
    }

    #[test]
    fn dijkstra_distances_are_finite_and_stable() {
        let p = dijkstra(InputSize::Small);
        let sum = run_level(&p, OptLevel::O2);
        assert!(sum > 0);
        assert!(
            sum < 1_000_000 * 64,
            "no unreachable nodes in a dense graph"
        );
        assert_eq!(sum, run_level(&p, OptLevel::O0));
    }

    #[test]
    fn qsort_sorts_the_array() {
        // The checksum is min + max-ish sample; more importantly the program
        // must terminate and be optimization-invariant.
        let p = qsort(InputSize::Small);
        assert_eq!(run_level(&p, OptLevel::O0), run_level(&p, OptLevel::O3));
    }

    #[test]
    fn stringsearch_finds_some_matches() {
        let p = stringsearch(InputSize::Small);
        let found = run_level(&p, OptLevel::O1);
        assert!(found > 0, "the periodic text must contain matches");
    }

    #[test]
    fn patricia_lookup_counts_are_positive_and_stable() {
        let p = patricia(InputSize::Small);
        assert!(run_level(&p, OptLevel::O0) > 0);
        assert_eq!(run_level(&p, OptLevel::O0), run_level(&p, OptLevel::O2));
    }
}
