//! # bsg-workloads — MiBench-like embedded workloads
//!
//! The paper evaluates benchmark synthesis on the MiBench embedded suite
//! (adpcm, basicmath, bitcount, crc32, dijkstra, fft, gsm, jpeg, patricia,
//! qsort, sha, stringsearch, susan) with small and large inputs.  MiBench is
//! C source plus binary input files; neither is usable directly against this
//! workspace's virtual ISA, so this crate re-implements each kernel against
//! the HLL builder API with deterministic, synthetic small/large inputs.
//! The kernels are faithful to the *computational character* of their MiBench
//! namesakes (instruction mix, loop structure, memory behaviour, branch
//! behaviour), which is what the paper's experiments depend on; they are not
//! bit-exact ports (see DESIGN.md for the substitution rationale).
//!
//! # Example
//!
//! ```
//! use bsg_workloads::{suite, InputSize};
//! let workloads = suite(InputSize::Small);
//! assert!(workloads.iter().any(|w| w.name.starts_with("crc32")));
//! let program = &workloads[0].program;
//! assert!(program.function(&program.entry).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod crypto;
pub mod fibonacci;
pub mod math;
pub mod media;
pub mod registry;
pub mod spec;

pub use registry::{SuiteOrigin, WorkloadRegistry, WorkloadSpec};

use bsg_ir::hll::HllProgram;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Input size, mirroring MiBench's small/large data sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputSize {
    /// Small input (quick profiling runs, unit tests).
    Small,
    /// Large input (the sizes used by the experiment harness).
    Large,
}

impl InputSize {
    /// Both input sizes.
    pub const ALL: [InputSize; 2] = [InputSize::Small, InputSize::Large];

    /// Scales a base iteration count for this input size.
    pub fn scale(self, small: i64, large: i64) -> i64 {
        match self {
            InputSize::Small => small,
            InputSize::Large => large,
        }
    }
}

impl fmt::Display for InputSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputSize::Small => write!(f, "small"),
            InputSize::Large => write!(f, "large"),
        }
    }
}

/// A workload: a named HLL program ready to be compiled and profiled.
///
/// The program is shared behind an `Arc`: suite workloads are built once per
/// process by the [`WorkloadRegistry`] and cloned out cheaply, so sweeps can
/// pass `Workload`s by value without regenerating kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Workload name, `"<kernel>/<input>"` as in the paper's figures.
    pub name: String,
    /// Kernel name without the input suffix.
    pub kernel: String,
    /// Behavioural category from the registry (media, spec-fp, ...).
    pub category: &'static str,
    /// Input size the program was generated for.
    pub input: InputSize,
    /// The program (shared; deref to `&HllProgram` at use sites).
    pub program: Arc<HllProgram>,
}

impl Workload {
    fn new(kernel: &str, category: &'static str, input: InputSize, program: HllProgram) -> Self {
        Workload {
            name: format!("{kernel}/{input}"),
            kernel: kernel.to_string(),
            category,
            input,
            program: Arc::new(program),
        }
    }

    /// Builds the workload a registry spec describes for one input size.
    pub fn from_spec(spec: &WorkloadSpec, input: InputSize) -> Self {
        Workload::new(spec.kernel, spec.category, input, (spec.build)(input))
    }
}

/// The suite for one input size, in registry order (MiBench kernels first,
/// SPEC-like extensions after).  Served from the process-wide
/// [`WorkloadRegistry`], which builds each program exactly once; the
/// returned `Workload`s are cheap `Arc` clones.
pub fn suite(input: InputSize) -> Vec<Workload> {
    WorkloadRegistry::global().suite(input).to_vec()
}

/// Builds the full suite across both input sizes (small first).
pub fn full_suite() -> Vec<Workload> {
    let mut all = suite(InputSize::Small);
    all.extend(suite(InputSize::Large));
    all
}

/// The fibonacci kernel of Figure 3 in the paper (not part of the measured
/// suite, used by the example and the Figure 3 experiment).
pub fn fibonacci_workload(n: i64) -> Workload {
    Workload::new(
        "fibonacci",
        "example",
        InputSize::Small,
        fibonacci::fibonacci(n),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_compiler::{compile, CompileOptions, OptLevel, TargetIsa};
    use bsg_uarch::exec::{execute, ExecConfig, NullObserver};

    #[test]
    fn suite_has_all_eighteen_kernels_for_both_inputs() {
        let small = suite(InputSize::Small);
        let large = suite(InputSize::Large);
        assert_eq!(small.len(), 18);
        assert_eq!(large.len(), 18);
        assert_eq!(full_suite().len(), 36);
        let names: Vec<&str> = small.iter().map(|w| w.kernel.as_str()).collect();
        // The paper's 13 MiBench kernels stay the leading block, in order.
        let mibench = [
            "adpcm",
            "basicmath",
            "bitcount",
            "crc32",
            "dijkstra",
            "fft",
            "gsm",
            "jpeg",
            "patricia",
            "qsort",
            "sha",
            "stringsearch",
            "susan",
        ];
        assert_eq!(&names[..13], &mibench, "legacy prefix preserved");
        for expected in ["huffman", "lu", "nbody", "regexscan", "sjoin"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn every_workload_compiles_and_terminates_at_o0_and_o2() {
        for w in suite(InputSize::Small) {
            for (level, isa) in [
                (OptLevel::O0, TargetIsa::X86),
                (OptLevel::O2, TargetIsa::Ia64),
            ] {
                let compiled = compile(&w.program, &CompileOptions::new(level, isa))
                    .unwrap_or_else(|e| panic!("{} fails to compile at {level}: {e}", w.name));
                let out = execute(
                    &compiled.program,
                    &mut NullObserver,
                    &ExecConfig {
                        max_instructions: 30_000_000,
                        max_call_depth: 128,
                    },
                );
                assert!(
                    out.completed,
                    "{} did not terminate at {level}/{isa}",
                    w.name
                );
                assert!(
                    out.dynamic_instructions > 1_000,
                    "{} is trivially small",
                    w.name
                );
            }
        }
    }

    #[test]
    fn optimization_preserves_observable_behaviour_for_every_workload() {
        for w in suite(InputSize::Small) {
            let o0 = compile(&w.program, &CompileOptions::portable(OptLevel::O0)).unwrap();
            let o3 = compile(
                &w.program,
                &CompileOptions::new(OptLevel::O3, TargetIsa::X86),
            )
            .unwrap();
            let limit = ExecConfig {
                max_instructions: 30_000_000,
                max_call_depth: 128,
            };
            let r0 = execute(&o0.program, &mut NullObserver, &limit);
            let r3 = execute(&o3.program, &mut NullObserver, &limit);
            assert_eq!(
                r0.observable(),
                r3.observable(),
                "optimization changed the observable behaviour of {}",
                w.name
            );
        }
    }

    #[test]
    fn large_inputs_run_longer_than_small_inputs() {
        let run = |p: &HllProgram| {
            let c = compile(p, &CompileOptions::portable(OptLevel::O0)).unwrap();
            bsg_uarch::exec::run(&c.program).dynamic_instructions
        };
        for (s, l) in suite(InputSize::Small)
            .iter()
            .zip(suite(InputSize::Large).iter())
        {
            assert!(
                run(&l.program) > run(&s.program) * 2,
                "{} large input should be at least 2x the small input",
                s.kernel
            );
        }
    }

    #[test]
    fn fibonacci_matches_the_papers_example() {
        let w = fibonacci_workload(20);
        let c = compile(&w.program, &CompileOptions::portable(OptLevel::O1)).unwrap();
        let out = bsg_uarch::exec::run(&c.program);
        assert_eq!(
            out.return_value.map(|v| v.as_int()),
            Some(10946),
            "fib(20) via 20 iterations"
        );
    }
}
