//! The fibonacci kernel used in Figure 3 of the paper to illustrate what a
//! synthetic clone looks like next to its original.

use bsg_ir::build::FunctionBuilder;
use bsg_ir::hll::{BinOp, Expr, HllProgram};

/// Builds the paper's fibonacci kernel:
///
/// ```c
/// int fib(int n) {
///   int a = 0, b = 1, i, sum = 0;
///   for (i = 0; i < n; i++) {
///     sum = a + b;
///     if (sum < 0) { printf("overflow"); break; }
///     a = b;
///     b = sum;
///   }
///   return sum;
/// }
/// ```
pub fn fibonacci(n: i64) -> HllProgram {
    let mut fib = FunctionBuilder::new("fib");
    fib.param("n");
    fib.assign_var("a", Expr::int(0));
    fib.assign_var("b", Expr::int(1));
    fib.assign_var("sum", Expr::int(0));
    fib.for_loop("i", Expr::int(0), Expr::var("n"), |body| {
        body.assign_var("sum", Expr::add(Expr::var("a"), Expr::var("b")));
        body.if_then(Expr::lt(Expr::var("sum"), Expr::int(0)), |t| {
            t.print(Expr::var("sum"));
            t.brk();
        });
        body.assign_var("a", Expr::var("b"));
        body.assign_var("b", Expr::var("sum"));
    });
    fib.ret(Some(Expr::var("sum")));

    let mut main = FunctionBuilder::new("main");
    main.call_assign("result", "fib", vec![Expr::int(n)]);
    // Keep the result observable (and exercise a non-loop branch).
    main.if_then(
        Expr::bin(BinOp::Gt, Expr::var("result"), Expr::int(0)),
        |t| {
            t.print(Expr::var("result"));
        },
    );
    main.ret(Some(Expr::var("result")));

    let mut p = HllProgram::new();
    p.add_function(main.finish());
    p.add_function(fib.finish());
    p.entry = "main".to_string();
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_compiler::{compile, CompileOptions, OptLevel};

    #[test]
    fn fib_values_are_correct() {
        for (n, expected) in [(1, 1i64), (2, 2), (5, 8), (10, 89), (20, 10946)] {
            let c = compile(&fibonacci(n), &CompileOptions::portable(OptLevel::O0)).unwrap();
            let out = bsg_uarch::exec::run(&c.program);
            assert_eq!(
                out.return_value.map(|v| v.as_int()),
                Some(expected),
                "fib n={n}"
            );
            assert_eq!(out.printed.len(), 1, "the positive result is printed once");
        }
    }

    #[test]
    fn zero_iterations_return_zero() {
        let c = compile(&fibonacci(0), &CompileOptions::portable(OptLevel::O2)).unwrap();
        let out = bsg_uarch::exec::run(&c.program);
        assert_eq!(out.return_value.map(|v| v.as_int()), Some(0));
        assert!(out.printed.is_empty());
    }
}
