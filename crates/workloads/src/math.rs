//! Floating-point kernels: `basicmath` and `fft`.
//!
//! In MiBench, `basicmath` solves cubic equations and converts angles, and
//! `fft` runs a Fourier transform; both are dominated by floating-point
//! arithmetic with library math calls.  The reproductions keep that
//! character: long loops of `sqrt`/`sin`/`cos`/multiply-add work over small
//! arrays, with `fft` implemented as a direct O(N²) discrete Fourier
//! transform (the butterfly structure is irrelevant to the paper's metrics;
//! the FP-heavy instruction mix and the N² loop nest are what matter).

use crate::InputSize;
use bsg_ir::build::FunctionBuilder;
use bsg_ir::hll::{BinOp, Expr, HllGlobal, HllProgram, UnOp};

/// The `basicmath` workload: square roots, trigonometry and integer
/// degree/radian conversions over a synthetic sequence of values.
pub fn basicmath(input: InputSize) -> HllProgram {
    let n = input.scale(400, 4000);
    let mut p = HllProgram::new();
    p.add_global(HllGlobal::float_zeroed("results", 512));

    let mut solve = FunctionBuilder::new("solve_one");
    solve.param("k");
    solve.float_var("x");
    solve.float_var("r");
    solve.float_var("s");
    solve.float_var("c");
    solve.float_var("v");
    solve.assign_var(
        "x",
        Expr::add(
            Expr::mul(Expr::un(UnOp::ToFloat, Expr::var("k")), Expr::float(0.37)),
            Expr::float(1.0),
        ),
    );
    solve.assign_var("r", Expr::un(UnOp::Sqrt, Expr::var("x")));
    solve.assign_var("s", Expr::un(UnOp::Sin, Expr::var("x")));
    solve.assign_var("c", Expr::un(UnOp::Cos, Expr::var("x")));
    solve.assign_var(
        "v",
        Expr::add(
            Expr::mul(Expr::var("r"), Expr::var("s")),
            Expr::mul(Expr::var("c"), Expr::var("c")),
        ),
    );
    solve.assign_index(
        "results",
        Expr::bin(BinOp::Rem, Expr::var("k"), Expr::int(512)),
        Expr::var("v"),
    );
    solve.ret(Some(Expr::un(
        UnOp::ToInt,
        Expr::mul(Expr::var("v"), Expr::float(1000.0)),
    )));

    let mut main = FunctionBuilder::new("main");
    main.assign_var("acc", Expr::int(0));
    main.for_loop("i", Expr::int(0), Expr::int(n), |b| {
        b.call_assign("t", "solve_one", vec![Expr::var("i")]);
        b.assign_var("acc", Expr::add(Expr::var("acc"), Expr::var("t")));
        // Integer degree -> radian conversion (the MiBench angle loop).
        b.assign_var(
            "deg",
            Expr::bin(
                BinOp::Rem,
                Expr::mul(Expr::var("i"), Expr::int(7)),
                Expr::int(360),
            ),
        );
        b.assign_var(
            "acc",
            Expr::add(
                Expr::var("acc"),
                Expr::bin(
                    BinOp::Div,
                    Expr::mul(Expr::var("deg"), Expr::int(314)),
                    Expr::int(180),
                ),
            ),
        );
    });
    main.print(Expr::var("acc"));
    main.ret(Some(Expr::var("acc")));

    p.add_function(main.finish());
    p.add_function(solve.finish());
    p
}

/// The `fft` workload: a direct discrete Fourier transform of a synthetic
/// signal, dominated by floating-point multiply/add and `sin`/`cos`.
pub fn fft(input: InputSize) -> HllProgram {
    let n = input.scale(24, 72);
    let mut p = HllProgram::new();
    // Deterministic synthetic signal.
    let signal: Vec<f64> = (0..256)
        .map(|i| ((i * 37 % 97) as f64 / 13.0) - 3.5)
        .collect();
    p.add_global(HllGlobal::with_float_values("sig_re", signal.clone()));
    p.add_global(HllGlobal::with_float_values(
        "sig_im",
        signal.iter().map(|x| x * 0.5).collect(),
    ));
    p.add_global(HllGlobal::float_zeroed("out_re", 256));
    p.add_global(HllGlobal::float_zeroed("out_im", 256));

    let mut main = FunctionBuilder::new("main");
    main.float_var("ang");
    main.float_var("cr");
    main.float_var("ci");
    main.float_var("sum_re");
    main.float_var("sum_im");
    main.float_var("mag");
    main.assign_var("acc", Expr::int(0));
    main.for_loop("k", Expr::int(0), Expr::int(n), |outer| {
        outer.assign_var("sum_re", Expr::float(0.0));
        outer.assign_var("sum_im", Expr::float(0.0));
        outer.for_loop("t", Expr::int(0), Expr::int(n), |inner| {
            inner.assign_var(
                "ang",
                Expr::mul(
                    Expr::float(-std::f64::consts::TAU),
                    Expr::bin(
                        BinOp::Div,
                        Expr::un(UnOp::ToFloat, Expr::mul(Expr::var("k"), Expr::var("t"))),
                        Expr::un(UnOp::ToFloat, Expr::int(n)),
                    ),
                ),
            );
            inner.assign_var("cr", Expr::un(UnOp::Cos, Expr::var("ang")));
            inner.assign_var("ci", Expr::un(UnOp::Sin, Expr::var("ang")));
            inner.assign_var(
                "sum_re",
                Expr::add(
                    Expr::var("sum_re"),
                    Expr::sub(
                        Expr::mul(Expr::index("sig_re", Expr::var("t")), Expr::var("cr")),
                        Expr::mul(Expr::index("sig_im", Expr::var("t")), Expr::var("ci")),
                    ),
                ),
            );
            inner.assign_var(
                "sum_im",
                Expr::add(
                    Expr::var("sum_im"),
                    Expr::add(
                        Expr::mul(Expr::index("sig_re", Expr::var("t")), Expr::var("ci")),
                        Expr::mul(Expr::index("sig_im", Expr::var("t")), Expr::var("cr")),
                    ),
                ),
            );
        });
        outer.assign_index("out_re", Expr::var("k"), Expr::var("sum_re"));
        outer.assign_index("out_im", Expr::var("k"), Expr::var("sum_im"));
        outer.assign_var(
            "mag",
            Expr::add(
                Expr::mul(Expr::var("sum_re"), Expr::var("sum_re")),
                Expr::mul(Expr::var("sum_im"), Expr::var("sum_im")),
            ),
        );
        outer.assign_var(
            "acc",
            Expr::add(
                Expr::var("acc"),
                Expr::un(UnOp::ToInt, Expr::un(UnOp::Sqrt, Expr::var("mag"))),
            ),
        );
    });
    main.print(Expr::var("acc"));
    main.ret(Some(Expr::var("acc")));
    p.add_function(main.finish());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InputSize;
    use bsg_compiler::{compile, CompileOptions, OptLevel};
    use bsg_profile::{profile_program, ProfileConfig};

    #[test]
    fn basicmath_is_deterministic_across_opt_levels() {
        let p = basicmath(InputSize::Small);
        let o0 = compile(&p, &CompileOptions::portable(OptLevel::O0)).unwrap();
        let o2 = compile(&p, &CompileOptions::portable(OptLevel::O2)).unwrap();
        let a = bsg_uarch::exec::run(&o0.program);
        let b = bsg_uarch::exec::run(&o2.program);
        assert_eq!(a.observable(), b.observable());
        assert!(a.return_value.unwrap().as_int() != 0);
    }

    #[test]
    fn fft_is_floating_point_heavy() {
        let p = fft(InputSize::Small);
        let compiled = compile(&p, &CompileOptions::portable(OptLevel::O0)).unwrap();
        let profile = profile_program(&compiled.program, "fft", &ProfileConfig::default());
        assert!(
            profile.mix.fp_fraction() > 0.1,
            "fft should have a large FP fraction, got {}",
            profile.mix.fp_fraction()
        );
        assert!(profile.sfgl.loops.len() >= 2, "nested DFT loops");
    }
}
