//! The workload registry: the declarative table every suite sweep runs over.
//!
//! Before this module, the suite was a hardcoded 13-entry `vec!` in
//! `suite()`, rebuilt from scratch — every `HllProgram` regenerated — on
//! every call; adding a kernel meant editing that function plus each test
//! that counted to 13.  The registry replaces it with a data table: each
//! kernel registers a [`WorkloadSpec`] (name, category, origin, input-size
//! generator), and everything else — iteration order, suite construction,
//! memoization, lookup by name — derives from the table.  Adding a workload
//! is now one line here plus its builder function.
//!
//! **Ordering is part of the contract.**  Specs are listed MiBench kernels
//! first (the paper's original 13, in their historical order) and SPEC-like
//! extensions after, so every pre-existing figure row keeps its position and
//! the determinism suite can pin the legacy prefix byte-for-byte.
//!
//! **Programs are built once per process.**  [`WorkloadRegistry::suite`]
//! memoizes the built [`Workload`]s per [`InputSize`] behind `Arc`s (an
//! `HllProgram` build walks every statement of the kernel; sweeps request
//! the suite dozens of times), and a build counter makes the build-once
//! property assertable in tests.

use crate::{InputSize, Workload};
use bsg_ir::hll::HllProgram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Where a kernel comes from (and therefore where it sorts in the suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SuiteOrigin {
    /// One of the paper's 13 MiBench re-implementations.
    MiBench,
    /// A SPEC-like extension kernel (post-paper, ROADMAP-driven).
    SpecLike,
}

/// One registered kernel: everything the harness needs to build and label
/// its workloads, as data.
pub struct WorkloadSpec {
    /// Kernel name (the `<kernel>` of the `"<kernel>/<input>"` workload name).
    pub kernel: &'static str,
    /// Behavioural category (media, math, crypto, spec-fp, ...), for
    /// grouping and reporting.
    pub category: &'static str,
    /// Provenance; controls suite ordering (MiBench block first).
    pub origin: SuiteOrigin,
    /// Input-size generator: builds the kernel's program for a given size.
    pub build: fn(InputSize) -> HllProgram,
}

/// The full registration table.  Append new kernels to their origin block;
/// never reorder existing entries (figure rows and the determinism golden
/// files depend on the order).
static SPECS: &[WorkloadSpec] = &[
    WorkloadSpec {
        kernel: "adpcm",
        category: "media",
        origin: SuiteOrigin::MiBench,
        build: crate::media::adpcm,
    },
    WorkloadSpec {
        kernel: "basicmath",
        category: "math",
        origin: SuiteOrigin::MiBench,
        build: crate::math::basicmath,
    },
    WorkloadSpec {
        kernel: "bitcount",
        category: "automotive",
        origin: SuiteOrigin::MiBench,
        build: crate::algo::bitcount,
    },
    WorkloadSpec {
        kernel: "crc32",
        category: "crypto",
        origin: SuiteOrigin::MiBench,
        build: crate::crypto::crc32,
    },
    WorkloadSpec {
        kernel: "dijkstra",
        category: "network",
        origin: SuiteOrigin::MiBench,
        build: crate::algo::dijkstra,
    },
    WorkloadSpec {
        kernel: "fft",
        category: "math",
        origin: SuiteOrigin::MiBench,
        build: crate::math::fft,
    },
    WorkloadSpec {
        kernel: "gsm",
        category: "media",
        origin: SuiteOrigin::MiBench,
        build: crate::media::gsm,
    },
    WorkloadSpec {
        kernel: "jpeg",
        category: "media",
        origin: SuiteOrigin::MiBench,
        build: crate::media::jpeg,
    },
    WorkloadSpec {
        kernel: "patricia",
        category: "network",
        origin: SuiteOrigin::MiBench,
        build: crate::algo::patricia,
    },
    WorkloadSpec {
        kernel: "qsort",
        category: "automotive",
        origin: SuiteOrigin::MiBench,
        build: crate::algo::qsort,
    },
    WorkloadSpec {
        kernel: "sha",
        category: "crypto",
        origin: SuiteOrigin::MiBench,
        build: crate::crypto::sha,
    },
    WorkloadSpec {
        kernel: "stringsearch",
        category: "office",
        origin: SuiteOrigin::MiBench,
        build: crate::algo::stringsearch,
    },
    WorkloadSpec {
        kernel: "susan",
        category: "media",
        origin: SuiteOrigin::MiBench,
        build: crate::media::susan,
    },
    WorkloadSpec {
        kernel: "huffman",
        category: "spec-compress",
        origin: SuiteOrigin::SpecLike,
        build: crate::spec::huffman,
    },
    WorkloadSpec {
        kernel: "lu",
        category: "spec-fp",
        origin: SuiteOrigin::SpecLike,
        build: crate::spec::lu,
    },
    WorkloadSpec {
        kernel: "nbody",
        category: "spec-fp",
        origin: SuiteOrigin::SpecLike,
        build: crate::spec::nbody,
    },
    WorkloadSpec {
        kernel: "regexscan",
        category: "spec-int",
        origin: SuiteOrigin::SpecLike,
        build: crate::spec::regexscan,
    },
    WorkloadSpec {
        kernel: "sjoin",
        category: "spec-int",
        origin: SuiteOrigin::SpecLike,
        build: crate::spec::sjoin,
    },
];

/// The process-wide kernel registry (see the module docs).
pub struct WorkloadRegistry {
    small: OnceLock<Vec<Workload>>,
    large: OnceLock<Vec<Workload>>,
    builds: AtomicU64,
}

impl WorkloadRegistry {
    /// The global registry instance.
    pub fn global() -> &'static WorkloadRegistry {
        static GLOBAL: WorkloadRegistry = WorkloadRegistry {
            small: OnceLock::new(),
            large: OnceLock::new(),
            builds: AtomicU64::new(0),
        };
        &GLOBAL
    }

    /// Every registered spec, in suite order.
    pub fn specs(&self) -> &'static [WorkloadSpec] {
        SPECS
    }

    /// Looks up a spec by kernel name.
    pub fn spec(&self, kernel: &str) -> Option<&'static WorkloadSpec> {
        SPECS.iter().find(|s| s.kernel == kernel)
    }

    /// The built suite for one input size, in registry order.  Each kernel's
    /// program is built exactly once per process; the returned `Workload`s
    /// share it behind an `Arc`, so cloning out of this slice is cheap.
    pub fn suite(&self, input: InputSize) -> &[Workload] {
        let cell = match input {
            InputSize::Small => &self.small,
            InputSize::Large => &self.large,
        };
        cell.get_or_init(|| {
            SPECS
                .iter()
                .map(|spec| {
                    self.builds.fetch_add(1, Ordering::Relaxed);
                    Workload::from_spec(spec, input)
                })
                .collect()
        })
    }

    /// The suite restricted to the paper's original MiBench kernels — the
    /// configuration the pre-registry golden outputs were captured with.
    pub fn legacy_suite(&self, input: InputSize) -> Vec<Workload> {
        self.suite(input)
            .iter()
            .filter(|w| {
                self.spec(&w.kernel)
                    .is_some_and(|s| s.origin == SuiteOrigin::MiBench)
            })
            .cloned()
            .collect()
    }

    /// How many (kernel, input) programs have been built in this process —
    /// at most `specs().len()` per input size, however often the suite is
    /// requested (the build-once property; asserted by tests).
    pub fn build_count(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_orders_mibench_before_spec_and_never_duplicates() {
        let specs = WorkloadRegistry::global().specs();
        assert_eq!(specs.len(), 18);
        let first_spec_like = specs
            .iter()
            .position(|s| s.origin == SuiteOrigin::SpecLike)
            .expect("spec-like kernels registered");
        assert_eq!(first_spec_like, 13, "MiBench block comes first, intact");
        assert!(
            specs[first_spec_like..]
                .iter()
                .all(|s| s.origin == SuiteOrigin::SpecLike),
            "origin blocks are contiguous"
        );
        let mut names: Vec<&str> = specs.iter().map(|s| s.kernel).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "kernel names are unique");
    }

    #[test]
    fn suite_is_memoized_and_shares_programs() {
        let reg = WorkloadRegistry::global();
        // Fill both memoization cells before snapshotting the counter, so a
        // concurrent test building the Large suite cannot race the
        // no-rebuild assertion.
        let a = reg.suite(InputSize::Small);
        let _ = reg.suite(InputSize::Large);
        let before = reg.build_count();
        let b = reg.suite(InputSize::Small);
        assert_eq!(reg.build_count(), before, "second request builds nothing");
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(
                std::sync::Arc::ptr_eq(&x.program, &y.program),
                "{} is shared, not rebuilt",
                x.name
            );
        }
    }

    #[test]
    fn lookup_by_name_finds_every_spec() {
        let reg = WorkloadRegistry::global();
        for spec in reg.specs() {
            assert_eq!(reg.spec(spec.kernel).unwrap().kernel, spec.kernel);
        }
        assert!(reg.spec("no-such-kernel").is_none());
    }
}
