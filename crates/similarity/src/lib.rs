//! # bsg-similarity — software-plagiarism-style similarity detection
//!
//! The paper verifies that its synthetic benchmark clones hide proprietary
//! information by feeding the original and synthetic C files to two
//! plagiarism detectors, Moss and JPlag, and observing that neither reports
//! any similarity (§V-E).  Both tools are closed web services, so this crate
//! reimplements their published core algorithms over C source text:
//!
//! * a **Moss-style detector** ([`moss_similarity`]) — winnowed k-gram
//!   fingerprints (Schleimer, Wilkerson & Aiken) compared by containment;
//! * a **JPlag-style detector** ([`jplag_similarity`]) — greedy string tiling
//!   over normalized token streams, reporting the fraction of tokens covered
//!   by shared tiles.
//!
//! Both operate on a normalized token stream (identifiers and literals are
//! collapsed to canonical tokens), exactly because real plagiarism detectors
//! must be insensitive to renaming — so a clone that merely renamed variables
//! would still be caught.
//!
//! # Example
//!
//! ```
//! use bsg_similarity::{moss_similarity, jplag_similarity};
//! let a = "int main(void) { int x = 0; for (x = 0; x < 10; x++) { g[x] = x; } return x; }";
//! let b = "int kernel(int n) { double z = 1.5; while (n > 0) { n = n - 3; z = z * 2.0; } return (int)z; }";
//! assert!(moss_similarity(a, a) > 0.99);
//! assert!(moss_similarity(a, b) < 0.35);
//! assert!(jplag_similarity(a, a) > 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A normalized C token.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Token {
    /// A reserved word (`for`, `if`, `while`, `return`, ...).
    Keyword(String),
    /// Any identifier (normalized — the identifier text is discarded).
    Identifier,
    /// Any numeric literal (normalized).
    Number,
    /// A punctuation / operator character sequence.
    Symbol(String),
}

const KEYWORDS: &[&str] = &[
    "auto", "break", "case", "char", "const", "continue", "default", "do", "double", "else",
    "enum", "extern", "float", "for", "goto", "if", "int", "long", "register", "return", "short",
    "signed", "sizeof", "static", "struct", "switch", "typedef", "union", "unsigned", "void",
    "volatile", "while", "printf",
];

/// Tokenizes C source into a normalized token stream (identifiers and
/// literals collapsed, comments and preprocessor lines dropped).
pub fn tokenize(source: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    for line in source.lines() {
        let line = line.trim();
        if line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        let mut chars = line.chars().peekable();
        while let Some(&c) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
            } else if c.is_ascii_alphabetic() || c == '_' {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        word.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if KEYWORDS.contains(&word.as_str()) {
                    tokens.push(Token::Keyword(word));
                } else {
                    tokens.push(Token::Identifier);
                }
            } else if c.is_ascii_digit() {
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '.' || c == 'x' {
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Number);
            } else if c == '"' {
                chars.next();
                for c in chars.by_ref() {
                    if c == '"' {
                        break;
                    }
                }
                tokens.push(Token::Number); // string literals normalize like data
            } else {
                let mut sym = String::new();
                sym.push(c);
                chars.next();
                // Two-character operators stay together so `<=`, `==`, `++` count as one token.
                if let Some(&n) = chars.peek() {
                    if matches!(
                        (c, n),
                        ('<', '=')
                            | ('>', '=')
                            | ('=', '=')
                            | ('!', '=')
                            | ('+', '+')
                            | ('-', '-')
                            | ('&', '&')
                            | ('|', '|')
                            | ('<', '<')
                            | ('>', '>')
                    ) {
                        sym.push(n);
                        chars.next();
                    }
                }
                tokens.push(Token::Symbol(sym));
            }
        }
    }
    tokens
}

fn hash_tokens(tokens: &[Token]) -> Vec<u64> {
    tokens
        .iter()
        .map(|t| {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut h = DefaultHasher::new();
            t.hash(&mut h);
            h.finish()
        })
        .collect()
}

/// Moss-style winnowing fingerprints: hash every `k`-gram of the token
/// stream, then keep the minimum hash of every window of `w` consecutive
/// k-grams.
pub fn winnow_fingerprints(source: &str, k: usize, w: usize) -> HashSet<u64> {
    let hashes = hash_tokens(&tokenize(source));
    if hashes.len() < k {
        return hashes.into_iter().collect();
    }
    let kgrams: Vec<u64> = hashes
        .windows(k)
        .map(|win| {
            win.iter().fold(0xcbf29ce484222325u64, |acc, h| {
                (acc ^ h).wrapping_mul(0x100000001b3)
            })
        })
        .collect();
    let mut prints = HashSet::new();
    if kgrams.len() <= w {
        prints.extend(kgrams.iter().copied());
        return prints;
    }
    for win in kgrams.windows(w) {
        if let Some(min) = win.iter().min() {
            prints.insert(*min);
        }
    }
    prints
}

/// Moss-style similarity: containment of the smaller fingerprint set within
/// the larger one, in `[0, 1]`.
pub fn moss_similarity(a: &str, b: &str) -> f64 {
    let fa = winnow_fingerprints(a, 5, 4);
    let fb = winnow_fingerprints(b, 5, 4);
    if fa.is_empty() || fb.is_empty() {
        return 0.0;
    }
    let shared = fa.intersection(&fb).count() as f64;
    shared / fa.len().min(fb.len()) as f64
}

/// JPlag-style similarity: greedy string tiling over the normalized token
/// streams with the given minimum match length; returns the fraction of the
/// smaller stream covered by shared tiles.
pub fn greedy_string_tiling(a: &str, b: &str, min_match: usize) -> f64 {
    let ta = hash_tokens(&tokenize(a));
    let tb = hash_tokens(&tokenize(b));
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let mut marked_a = vec![false; ta.len()];
    let mut marked_b = vec![false; tb.len()];
    let mut covered = 0usize;
    loop {
        // Find the longest unmarked common substring.
        let mut best_len = 0usize;
        let mut best: Option<(usize, usize)> = None;
        for i in 0..ta.len() {
            if marked_a[i] {
                continue;
            }
            for j in 0..tb.len() {
                if marked_b[j] || ta[i] != tb[j] {
                    continue;
                }
                let mut l = 0;
                while i + l < ta.len()
                    && j + l < tb.len()
                    && !marked_a[i + l]
                    && !marked_b[j + l]
                    && ta[i + l] == tb[j + l]
                {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best = Some((i, j));
                }
            }
        }
        if best_len < min_match.max(1) {
            break;
        }
        let (i, j) = best.expect("a best match exists when best_len > 0");
        for o in 0..best_len {
            marked_a[i + o] = true;
            marked_b[j + o] = true;
        }
        covered += best_len;
    }
    covered as f64 / ta.len().min(tb.len()) as f64
}

/// JPlag-style similarity with the conventional minimum match length of 9 tokens.
pub fn jplag_similarity(a: &str, b: &str) -> f64 {
    greedy_string_tiling(a, b, 9)
}

/// A combined similarity report between an original workload and its clone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimilarityReport {
    /// Moss-style winnowing containment.
    pub moss: f64,
    /// JPlag-style greedy-string-tiling coverage.
    pub jplag: f64,
}

impl SimilarityReport {
    /// Compares two C source files with both detectors.
    pub fn compare(original: &str, synthetic: &str) -> Self {
        SimilarityReport {
            moss: moss_similarity(original, synthetic),
            jplag: jplag_similarity(original, synthetic),
        }
    }

    /// The paper's criterion: neither tool reports meaningful similarity.
    /// `threshold` is the score above which one would investigate (Moss and
    /// JPlag typically flag pairs well above 0.5).
    pub fn hides_proprietary_information(&self, threshold: f64) -> bool {
        self.moss < threshold && self.jplag < threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM_A: &str = r#"
int fib(int n) {
  int a = 0, b = 1, i, sum = 0;
  for (i = 0; i < n; i++) {
    sum = a + b;
    if (sum < 0) { printf("overflow"); break; }
    a = b;
    b = sum;
  }
  return sum;
}
"#;

    /// PROGRAM_A with every identifier renamed — a plagiarism detector must
    /// still flag this as highly similar.
    const PROGRAM_A_RENAMED: &str = r#"
int sequence(int count) {
  int prev = 0, cur = 1, k, total = 0;
  for (k = 0; k < count; k++) {
    total = prev + cur;
    if (total < 0) { printf("overflow"); break; }
    prev = cur;
    cur = total;
  }
  return total;
}
"#;

    const PROGRAM_B: &str = r#"
unsigned int mStream0[256];
int i, j;
int f(void) {
  for (i = 0; i < 20; i++) {
    mStream0[4] = mStream0[7] + mStream0[2];
    if (mStream0[0] == 153) {
      for (j = 0; j < 256; j++) printf("%d;", mStream0[j]);
    }
    mStream0[6] = i;
    mStream0[7] = mStream0[6];
  }
  return 0;
}
"#;

    #[test]
    fn tokenizer_normalizes_identifiers_and_numbers() {
        let t1 = tokenize("int alpha = 42;");
        let t2 = tokenize("int beta = 7;");
        assert_eq!(t1, t2);
        let kw = tokenize("for (;;) {}");
        assert!(matches!(kw[0], Token::Keyword(_)));
    }

    #[test]
    fn self_similarity_is_one() {
        assert!(moss_similarity(PROGRAM_A, PROGRAM_A) > 0.99);
        assert!(jplag_similarity(PROGRAM_A, PROGRAM_A) > 0.99);
    }

    #[test]
    fn renaming_identifiers_does_not_fool_the_detectors() {
        assert!(
            moss_similarity(PROGRAM_A, PROGRAM_A_RENAMED) > 0.9,
            "winnowing is insensitive to renaming"
        );
        assert!(jplag_similarity(PROGRAM_A, PROGRAM_A_RENAMED) > 0.9);
    }

    #[test]
    fn structurally_different_programs_score_low() {
        let report = SimilarityReport::compare(PROGRAM_A, PROGRAM_B);
        assert!(report.moss < 0.5, "moss = {}", report.moss);
        assert!(report.jplag < 0.5, "jplag = {}", report.jplag);
        assert!(report.hides_proprietary_information(0.5));
    }

    #[test]
    fn similarity_is_symmetric_enough() {
        let ab = moss_similarity(PROGRAM_A, PROGRAM_B);
        let ba = moss_similarity(PROGRAM_B, PROGRAM_A);
        assert!((ab - ba).abs() < 1e-9);
        let jab = jplag_similarity(PROGRAM_A, PROGRAM_B);
        let jba = jplag_similarity(PROGRAM_B, PROGRAM_A);
        assert!((jab - jba).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_yield_zero() {
        assert_eq!(moss_similarity("", PROGRAM_A), 0.0);
        assert_eq!(jplag_similarity("", ""), 0.0);
        assert_eq!(greedy_string_tiling(PROGRAM_A, PROGRAM_A, 1_000_000), 0.0);
    }
}
