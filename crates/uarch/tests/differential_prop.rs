//! Property-based differential sweep: random VISA programs — loops, calls,
//! mixed int/float register pressure, frame and global traffic, folded
//! memory operands — must execute observably identically on all three
//! engines (legacy tree-walk, unfused predecoded, fused predecoded with the
//! untagged register file), including when the instruction budget aborts the
//! run in the middle of a fused superinstruction.
//!
//! The generator only ever produces *valid* programs (register ids below
//! `num_regs`, call targets and branch targets in range, non-empty globals),
//! matching the invariants `ExecImage` validates at build time.  Programs
//! may loop forever or recurse unboundedly; every run therefore carries an
//! instruction budget and a call-depth limit, and outcomes are compared
//! whether or not the run completed.

use bsg_ir::program::{Function, Global, GlobalInit, Program};
use bsg_ir::types::{BlockId, FuncId, Reg, Ty, Value};
use bsg_ir::visa::{Address, BinOp, Inst, MemBase, Operand, Terminator, UnOp};
use bsg_uarch::exec::{execute_image, execute_legacy, ExecConfig, InstEvent, InstSite, Observer};
use bsg_uarch::image::ExecImage;
use bsg_uarch::pipeline::{PipelineConfig, PipelineSim, ReferencePipelineSim};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Records every observer callback verbatim.
#[derive(Debug, Default, Clone, PartialEq)]
struct Recording {
    events: Vec<Event>,
}

#[derive(Debug, Clone, PartialEq)]
enum Event {
    Inst(InstEvent),
    Block(FuncId, BlockId, u32),
    Edge(FuncId, BlockId, BlockId, u32),
    Branch(InstSite, u32, bool),
    Call(FuncId, FuncId),
}

impl Observer for Recording {
    fn on_inst(&mut self, event: &InstEvent) {
        self.events.push(Event::Inst(*event));
    }
    fn on_block(&mut self, func: FuncId, block: BlockId, block_idx: u32) {
        self.events.push(Event::Block(func, block, block_idx));
    }
    fn on_edge(&mut self, func: FuncId, from: BlockId, to: BlockId, edge_idx: u32) {
        self.events.push(Event::Edge(func, from, to, edge_idx));
    }
    fn on_branch(&mut self, site: InstSite, site_id: u32, taken: bool) {
        self.events.push(Event::Branch(site, site_id, taken));
    }
    fn on_call(&mut self, caller: FuncId, callee: FuncId) {
        self.events.push(Event::Call(caller, callee));
    }
}

const BIN_OPS: [BinOp; 16] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
];

const UN_OPS: [UnOp; 10] = [
    UnOp::Neg,
    UnOp::Not,
    UnOp::LogicalNot,
    UnOp::ToFloat,
    UnOp::ToInt,
    UnOp::Sqrt,
    UnOp::Sin,
    UnOp::Cos,
    UnOp::Log,
    UnOp::Abs,
];

struct Gen {
    rng: SmallRng,
    nglobals: u32,
}

impl Gen {
    fn reg(&mut self, num_regs: u32) -> Reg {
        Reg(self.rng.gen_range(0u32..num_regs))
    }

    fn address(&mut self, num_regs: u32) -> Address {
        let base = if self.nglobals > 0 && self.rng.gen_range(0u32..3) > 0 {
            MemBase::Global(bsg_ir::types::GlobalId(
                self.rng.gen_range(0u32..self.nglobals),
            ))
        } else {
            MemBase::Frame
        };
        Address {
            base,
            offset: self.rng.gen_range(-4i64..24),
            index: if self.rng.gen_range(0u32..2) == 0 {
                Some(self.reg(num_regs))
            } else {
                None
            },
            scale: self.rng.gen_range(1i64..4),
        }
    }

    fn operand(&mut self, num_regs: u32) -> Operand {
        match self.rng.gen_range(0u32..8) {
            0..=3 => Operand::Reg(self.reg(num_regs)),
            4 => Operand::ImmInt(self.rng.gen_range(-40i64..40)),
            5 => Operand::ImmFloat(self.rng.gen_range(-8i64..8) as f64 * 0.75),
            _ => Operand::Mem(self.address(num_regs)),
        }
    }

    fn ty(&mut self) -> Ty {
        if self.rng.gen_range(0u32..3) == 0 {
            Ty::Float
        } else {
            Ty::Int
        }
    }

    fn inst(&mut self, num_regs: u32, nfuncs: u32) -> Inst {
        match self.rng.gen_range(0u32..10) {
            0..=2 => Inst::Bin {
                op: BIN_OPS[self.rng.gen_range(0usize..BIN_OPS.len())],
                ty: self.ty(),
                dst: self.reg(num_regs),
                lhs: self.operand(num_regs),
                rhs: self.operand(num_regs),
            },
            3 => Inst::Un {
                op: UN_OPS[self.rng.gen_range(0usize..UN_OPS.len())],
                ty: self.ty(),
                dst: self.reg(num_regs),
                src: self.operand(num_regs),
            },
            4 | 5 => Inst::Mov {
                dst: self.reg(num_regs),
                src: match self.rng.gen_range(0u32..3) {
                    0 => Operand::Reg(self.reg(num_regs)),
                    1 => Operand::ImmInt(self.rng.gen_range(-100i64..100)),
                    _ => Operand::ImmFloat(self.rng.gen_range(-50i64..50) as f64 / 4.0),
                },
            },
            6 => Inst::Load {
                dst: self.reg(num_regs),
                addr: self.address(num_regs),
                ty: self.ty(),
            },
            7 => Inst::Store {
                src: self.operand(num_regs),
                addr: self.address(num_regs),
                ty: self.ty(),
            },
            8 => Inst::Call {
                func: FuncId(self.rng.gen_range(0u32..nfuncs)),
                args: (0..self.rng.gen_range(0usize..4))
                    .map(|_| self.operand(num_regs))
                    .collect(),
                dst: if self.rng.gen_range(0u32..2) == 0 {
                    Some(self.reg(num_regs))
                } else {
                    None
                },
            },
            _ => {
                if self.rng.gen_range(0u32..2) == 0 {
                    Inst::Print {
                        src: self.operand(num_regs),
                    }
                } else {
                    Inst::Nop
                }
            }
        }
    }

    fn program(&mut self) -> Program {
        let mut p = Program::new();
        for g in 0..self.nglobals {
            let elems = self.rng.gen_range(1usize..12);
            let init = match self.rng.gen_range(0u32..4) {
                0 => GlobalInit::Zero,
                1 => GlobalInit::Iota,
                2 => GlobalInit::Random {
                    seed: self.rng.gen_range(1u64..1000),
                    modulus: 64,
                },
                _ => GlobalInit::Values(
                    (0..self.rng.gen_range(0usize..elems + 1))
                        .map(|i| {
                            if self.rng.gen_range(0u32..3) == 0 {
                                Value::Float(i as f64 * 1.25)
                            } else {
                                Value::Int(i as i64 * 3 - 4)
                            }
                        })
                        .collect(),
                ),
            };
            let ty = if self.rng.gen_range(0u32..3) == 0 {
                Ty::Float
            } else {
                Ty::Int
            };
            p.add_global(Global {
                name: format!("g{g}"),
                elems,
                ty,
                init,
            });
        }
        let nfuncs = self.rng.gen_range(1u32..4);
        for fi in 0..nfuncs {
            let mut f = Function::new(format!("f{fi}"));
            let num_regs = self.rng.gen_range(1u32..8);
            for _ in 0..num_regs {
                f.fresh_reg();
            }
            f.frame_words = self.rng.gen_range(0u32..8);
            let nparams = self.rng.gen_range(0u32..num_regs.min(3) + 1);
            f.params = (0..nparams).map(Reg).collect();
            let nblocks = self.rng.gen_range(1u32..5);
            for _ in 1..nblocks {
                f.add_block();
            }
            for bi in 0..nblocks {
                // At least one instruction per block: a cycle of empty
                // blocks joined by Jump terminators would execute zero
                // budgeted instructions and never terminate (on any engine —
                // jumps are free by design).
                let ninsts = self.rng.gen_range(1usize..6);
                let insts: Vec<Inst> = (0..ninsts).map(|_| self.inst(num_regs, nfuncs)).collect();
                let term = match self.rng.gen_range(0u32..4) {
                    0 => Terminator::Return(if self.rng.gen_range(0u32..2) == 0 {
                        None
                    } else {
                        Some(self.operand(num_regs))
                    }),
                    1 | 2 => Terminator::Jump(BlockId(self.rng.gen_range(0u32..nblocks))),
                    _ => Terminator::Branch {
                        cond: self.reg(num_regs),
                        taken: BlockId(self.rng.gen_range(0u32..nblocks)),
                        not_taken: BlockId(self.rng.gen_range(0u32..nblocks)),
                    },
                };
                f.blocks[bi as usize].insts = insts;
                f.blocks[bi as usize].term = term;
            }
            p.add_function(f);
        }
        p.entry = FuncId(0);
        p
    }
}

/// Runs one program on all three engines under `config` and asserts
/// bit-identical outcomes, event streams and pipeline results.
fn check_identical(program: &Program, config: &ExecConfig) -> Result<(), String> {
    let fused_image = ExecImage::new(program);
    let unfused_image = ExecImage::unfused(program);
    let mut fused_rec = Recording::default();
    let mut unfused_rec = Recording::default();
    let mut old_rec = Recording::default();
    let fused = execute_image(&fused_image, &mut fused_rec, config);
    let unfused = execute_image(&unfused_image, &mut unfused_rec, config);
    let old = execute_legacy(program, &mut old_rec, config);
    if fused != old {
        return Err(format!("fused vs legacy outcome: {fused:?} vs {old:?}"));
    }
    if unfused != old {
        return Err(format!("unfused vs legacy outcome: {unfused:?} vs {old:?}"));
    }
    for (what, rec) in [("fused", &fused_rec), ("unfused", &unfused_rec)] {
        if rec.events.len() != old_rec.events.len() {
            return Err(format!(
                "{what} event count {} vs legacy {}",
                rec.events.len(),
                old_rec.events.len()
            ));
        }
        for (i, (n, o)) in rec.events.iter().zip(&old_rec.events).enumerate() {
            if n != o {
                return Err(format!("{what} event {i}: {n:?} vs {o:?}"));
            }
        }
    }
    let mut fused_sim = PipelineSim::from_image(PipelineConfig::ptlsim_2wide(8), &fused_image);
    let mut old_sim = ReferencePipelineSim::new(PipelineConfig::ptlsim_2wide(8), program);
    execute_image(&fused_image, &mut fused_sim, config);
    execute_legacy(program, &mut old_sim, config);
    if fused_sim.result() != old_sim.result() {
        return Err(format!(
            "pipeline: {:?} vs {:?}",
            fused_sim.result(),
            old_sim.result()
        ));
    }
    Ok(())
}

/// Generates an `-O0`-shaped program: a counted loop whose body is made of
/// frame-slot read-modify-write fragments over a **mixed int/float** frame —
/// the exact shapes the per-slot typing untags and the frame-fusion pass
/// collapses (`LoadFCmpBr` headers, `LoadFAluStoreF`/`LoadFFAluStoreFF`/
/// `LoadFUnFFStoreFF` bodies, `StoreFIJump` latches, slot-load pairs) — plus
/// register-indexed (dynamic) frame and global traffic, and slots that are
/// deliberately left to their implicit `Int(0)` initialization so the
/// init-observability analysis is exercised in both directions.
fn o0_frame_program(seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p = Program::new();
    let g = p.add_global(Global {
        name: "g".into(),
        elems: 8,
        ty: Ty::Int,
        init: GlobalInit::Iota,
    });
    let mut f = Function::new("main");
    let nslots = rng.gen_range(2u32..6);
    f.frame_words = nslots;
    // Slot 0 is the int induction variable; the rest choose a type, and a
    // subset skips initialization (read-before-write of the Int(0) init —
    // which forces an uninitialized "float" slot onto the tagged bank).
    let slot_ty: Vec<Ty> = (0..nslots)
        .map(|s| {
            if s == 0 || rng.gen_range(0u32..2) == 0 {
                Ty::Int
            } else {
                Ty::Float
            }
        })
        .collect();
    let header = f.add_block();
    let body = f.add_block();
    let exit = f.add_block();

    let mut init = vec![Inst::Store {
        src: Operand::ImmInt(0),
        addr: Address::frame(0),
        ty: Ty::Int,
    }];
    for s in 1..nslots {
        if rng.gen_range(0u32..4) > 0 {
            init.push(Inst::Store {
                src: match slot_ty[s as usize] {
                    Ty::Int => Operand::ImmInt(rng.gen_range(-9i64..9)),
                    Ty::Float => Operand::ImmFloat(rng.gen_range(-16i64..16) as f64 * 0.25),
                },
                addr: Address::frame(i64::from(s)),
                ty: slot_ty[s as usize],
            });
        }
    }
    f.blocks[0].insts = init;
    f.blocks[0].term = Terminator::Jump(header);

    // Header: reload the induction variable, compare, branch (fuses to
    // LoadFCmpBr).  -O0 style: a fresh register per use.
    let hr = f.fresh_reg();
    let hc = f.fresh_reg();
    f.blocks[header.index()].insts = vec![
        Inst::Load {
            dst: hr,
            addr: Address::frame(0),
            ty: Ty::Int,
        },
        Inst::Bin {
            op: BinOp::Lt,
            ty: Ty::Int,
            dst: hc,
            lhs: hr.into(),
            rhs: Operand::ImmInt(rng.gen_range(2i64..7)),
        },
    ];
    f.blocks[header.index()].term = Terminator::Branch {
        cond: hc,
        taken: body,
        not_taken: exit,
    };

    // Body: random frame-slot fragments.
    let mut insts: Vec<Inst> = Vec::new();
    let int_slots: Vec<u32> = (0..nslots)
        .filter(|s| slot_ty[*s as usize] == Ty::Int)
        .collect();
    let float_slots: Vec<u32> = (0..nslots)
        .filter(|s| slot_ty[*s as usize] == Ty::Float)
        .collect();
    for _ in 0..rng.gen_range(1usize..5) {
        match rng.gen_range(0u32..6) {
            // Int RMW: load slot -> int ALU -> store slot.
            0 | 1 => {
                let s = int_slots[rng.gen_range(0usize..int_slots.len())];
                let (r1, r2) = (f.fresh_reg(), f.fresh_reg());
                insts.push(Inst::Load {
                    dst: r1,
                    addr: Address::frame(i64::from(s)),
                    ty: Ty::Int,
                });
                insts.push(Inst::Bin {
                    op: [BinOp::Add, BinOp::Sub, BinOp::Xor][rng.gen_range(0usize..3)],
                    ty: Ty::Int,
                    dst: r2,
                    lhs: r1.into(),
                    rhs: Operand::ImmInt(rng.gen_range(-5i64..6)),
                });
                insts.push(Inst::Store {
                    src: r2.into(),
                    addr: Address::frame(i64::from(s)),
                    ty: Ty::Int,
                });
            }
            // Float RMW (ALU or unary): load -> op -> store.
            2 | 3 if !float_slots.is_empty() => {
                let s = float_slots[rng.gen_range(0usize..float_slots.len())];
                let d = float_slots[rng.gen_range(0usize..float_slots.len())];
                let (r1, r2) = (f.fresh_reg(), f.fresh_reg());
                insts.push(Inst::Load {
                    dst: r1,
                    addr: Address::frame(i64::from(s)),
                    ty: Ty::Float,
                });
                if rng.gen_range(0u32..2) == 0 {
                    insts.push(Inst::Bin {
                        op: [BinOp::Add, BinOp::Mul][rng.gen_range(0usize..2)],
                        ty: Ty::Float,
                        dst: r2,
                        lhs: r1.into(),
                        rhs: Operand::ImmFloat(rng.gen_range(1i64..5) as f64 * 0.5),
                    });
                } else {
                    insts.push(Inst::Un {
                        op: [UnOp::Neg, UnOp::Sqrt, UnOp::Cos][rng.gen_range(0usize..3)],
                        ty: Ty::Float,
                        dst: r2,
                        src: r1.into(),
                    });
                }
                insts.push(Inst::Store {
                    src: r2.into(),
                    addr: Address::frame(i64::from(d)),
                    ty: Ty::Float,
                });
            }
            // Dynamic (register-indexed) frame access: hits the general
            // per-slot bank table at run time.
            4 => {
                let idx = f.fresh_reg();
                let v = f.fresh_reg();
                insts.push(Inst::Load {
                    dst: idx,
                    addr: Address::frame(0),
                    ty: Ty::Int,
                });
                let addr = Address {
                    base: bsg_ir::visa::MemBase::Frame,
                    offset: rng.gen_range(-1i64..3),
                    index: Some(idx),
                    scale: rng.gen_range(1i64..3),
                };
                if rng.gen_range(0u32..2) == 0 {
                    insts.push(Inst::Load {
                        dst: v,
                        addr,
                        ty: Ty::Int,
                    });
                    insts.push(Inst::Print { src: v.into() });
                } else {
                    insts.push(Inst::Store {
                        src: Operand::ImmInt(rng.gen_range(0i64..9)),
                        addr,
                        ty: Ty::Int,
                    });
                }
            }
            // Indexed global traffic (LoadFILoadG / LoadFIStoreG shapes).
            _ => {
                let idx = f.fresh_reg();
                let v = f.fresh_reg();
                insts.push(Inst::Load {
                    dst: idx,
                    addr: Address::frame(0),
                    ty: Ty::Int,
                });
                insts.push(Inst::Load {
                    dst: v,
                    addr: Address::global_indexed(g, 0, idx, 1),
                    ty: Ty::Int,
                });
                insts.push(Inst::Store {
                    src: v.into(),
                    addr: Address::global_indexed(g, 1, idx, 1),
                    ty: Ty::Int,
                });
            }
        }
    }
    // Latch: induction RMW, then jump (fuses the store into StoreFIJump).
    let (li, ln) = (f.fresh_reg(), f.fresh_reg());
    insts.push(Inst::Load {
        dst: li,
        addr: Address::frame(0),
        ty: Ty::Int,
    });
    insts.push(Inst::Bin {
        op: BinOp::Add,
        ty: Ty::Int,
        dst: ln,
        lhs: li.into(),
        rhs: Operand::ImmInt(1),
    });
    insts.push(Inst::Store {
        src: ln.into(),
        addr: Address::frame(0),
        ty: Ty::Int,
    });
    f.blocks[body.index()].insts = insts;
    f.blocks[body.index()].term = Terminator::Jump(header);

    // Exit: read every slot back (read-before-write for uninitialized ones).
    let mut out = Vec::new();
    for s in 0..nslots {
        let r = f.fresh_reg();
        out.push(Inst::Load {
            dst: r,
            addr: Address::frame(i64::from(s)),
            ty: slot_ty[s as usize],
        });
        out.push(Inst::Print { src: r.into() });
    }
    f.blocks[exit.index()].insts = out;
    f.blocks[exit.index()].term = Terminator::Return(Some(Operand::Mem(Address::frame(
        i64::from(rng.gen_range(0u32..nslots)),
    ))));
    p.add_function(f);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_programs_execute_identically_on_all_engines(seed in 0u64..1_000_000) {
        let mut g = Gen { rng: SmallRng::seed_from_u64(seed), nglobals: 0 };
        g.nglobals = g.rng.gen_range(0u32..3);
        let program = g.program();
        // A comfortable budget (runs may still not complete: infinite loops
        // and unbounded recursion are reachable) ...
        let budgets = [20_000u64];
        // ... plus tight budgets sweeping the abort point across every step
        // of the program, including the middle of fused superinstructions.
        let tight = [1u64, 2, 3, 5, 7, 11, 17, 26, 43, 64, 97, 150, 331];
        for budget in budgets.iter().chain(&tight) {
            let config = ExecConfig {
                max_instructions: *budget,
                max_call_depth: 13,
            };
            if let Err(e) = check_identical(&program, &config) {
                return Err(format!("seed {seed} budget {budget}: {e}"));
            }
        }
    }

    #[test]
    fn o0_frame_programs_execute_identically_on_all_engines(seed in 0u64..1_000_000) {
        let program = o0_frame_program(seed);
        // The fused image must actually contain frame superinstructions —
        // this sweep exists to abort budgets *inside* them.
        prop_assert!(ExecImage::new(&program).num_fused() > 0, "generator produced nothing to fuse");
        // A comfortable budget plus a dense sweep of tight budgets: the
        // body fragments are 2-3 budgeted instructions each, so stepping
        // the abort point by one walks it through every constituent of the
        // frame-fused superinstructions (pairs and triples alike).
        let mut budgets: Vec<u64> = (1..40).collect();
        budgets.extend([64, 97, 150, 331, 20_000]);
        for budget in budgets {
            let config = ExecConfig {
                max_instructions: budget,
                max_call_depth: 13,
            };
            if let Err(e) = check_identical(&program, &config) {
                return Err(format!("seed {seed} budget {budget}: {e}"));
            }
        }
    }

    #[test]
    fn random_programs_fuse_deterministically(seed in 0u64..1_000_000) {
        // Image building is deterministic: same program, same fusion result.
        let mut g = Gen { rng: SmallRng::seed_from_u64(seed ^ 0xabcdef), nglobals: 1 };
        let program = g.program();
        let a = ExecImage::new(&program);
        let b = ExecImage::new(&program);
        prop_assert_eq!(a.num_fused(), b.num_fused());
        prop_assert_eq!(a.num_sites(), b.num_sites());
        prop_assert_eq!(ExecImage::unfused(&program).num_fused(), 0);
    }
}
