//! Property-based differential sweep: random VISA programs — loops, calls,
//! mixed int/float register pressure, frame and global traffic, folded
//! memory operands — must execute observably identically on all three
//! engines (legacy tree-walk, unfused predecoded, fused predecoded with the
//! untagged register file), including when the instruction budget aborts the
//! run in the middle of a fused superinstruction.
//!
//! The generator only ever produces *valid* programs (register ids below
//! `num_regs`, call targets and branch targets in range, non-empty globals),
//! matching the invariants `ExecImage` validates at build time.  Programs
//! may loop forever or recurse unboundedly; every run therefore carries an
//! instruction budget and a call-depth limit, and outcomes are compared
//! whether or not the run completed.

use bsg_ir::program::Program;
use bsg_ir::types::{BlockId, FuncId};
use bsg_uarch::batch::BatchedPipelineSim;
use bsg_uarch::exec::{execute_image, execute_legacy, ExecConfig, InstEvent, InstSite, Observer};
use bsg_uarch::image::ExecImage;
use bsg_uarch::pipeline::{PipelineConfig, PipelineSim, ReferencePipelineSim};
use bsg_verify::gen::{o0_frame_program, Gen};
use proptest::prelude::*;
use rand::Rng;

/// Records every observer callback verbatim.
#[derive(Debug, Default, Clone, PartialEq)]
struct Recording {
    events: Vec<Event>,
}

#[derive(Debug, Clone, PartialEq)]
enum Event {
    Inst(InstEvent),
    Block(FuncId, BlockId, u32),
    Edge(FuncId, BlockId, BlockId, u32),
    Branch(InstSite, u32, bool),
    Call(FuncId, FuncId),
}

impl Observer for Recording {
    fn on_inst(&mut self, event: &InstEvent) {
        self.events.push(Event::Inst(*event));
    }
    fn on_block(&mut self, func: FuncId, block: BlockId, block_idx: u32) {
        self.events.push(Event::Block(func, block, block_idx));
    }
    fn on_edge(&mut self, func: FuncId, from: BlockId, to: BlockId, edge_idx: u32) {
        self.events.push(Event::Edge(func, from, to, edge_idx));
    }
    fn on_branch(&mut self, site: InstSite, site_id: u32, taken: bool) {
        self.events.push(Event::Branch(site, site_id, taken));
    }
    fn on_call(&mut self, caller: FuncId, callee: FuncId) {
        self.events.push(Event::Call(caller, callee));
    }
}

/// Runs one program on all three engines under `config` and asserts
/// bit-identical outcomes, event streams and pipeline results.
fn check_identical(program: &Program, config: &ExecConfig) -> Result<(), String> {
    let fused_image = ExecImage::new(program);
    let unfused_image = ExecImage::unfused(program);
    let mut fused_rec = Recording::default();
    let mut unfused_rec = Recording::default();
    let mut old_rec = Recording::default();
    let fused = execute_image(&fused_image, &mut fused_rec, config);
    let unfused = execute_image(&unfused_image, &mut unfused_rec, config);
    let old = execute_legacy(program, &mut old_rec, config);
    if fused != old {
        return Err(format!("fused vs legacy outcome: {fused:?} vs {old:?}"));
    }
    if unfused != old {
        return Err(format!("unfused vs legacy outcome: {unfused:?} vs {old:?}"));
    }
    for (what, rec) in [("fused", &fused_rec), ("unfused", &unfused_rec)] {
        if rec.events.len() != old_rec.events.len() {
            return Err(format!(
                "{what} event count {} vs legacy {}",
                rec.events.len(),
                old_rec.events.len()
            ));
        }
        for (i, (n, o)) in rec.events.iter().zip(&old_rec.events).enumerate() {
            if n != o {
                return Err(format!("{what} event {i}: {n:?} vs {o:?}"));
            }
        }
    }
    let mut fused_sim = PipelineSim::from_image(PipelineConfig::ptlsim_2wide(8), &fused_image);
    let mut old_sim = ReferencePipelineSim::new(PipelineConfig::ptlsim_2wide(8), program);
    execute_image(&fused_image, &mut fused_sim, config);
    execute_legacy(program, &mut old_sim, config);
    if fused_sim.result() != old_sim.result() {
        return Err(format!(
            "pipeline: {:?} vs {:?}",
            fused_sim.result(),
            old_sim.result()
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_programs_execute_identically_on_all_engines(seed in 0u64..1_000_000) {
        let mut g = Gen::from_seed(seed, 0);
        g.nglobals = g.rng.gen_range(0u32..3);
        let program = g.program();
        // A comfortable budget (runs may still not complete: infinite loops
        // and unbounded recursion are reachable) ...
        let budgets = [20_000u64];
        // ... plus tight budgets sweeping the abort point across every step
        // of the program, including the middle of fused superinstructions.
        let tight = [1u64, 2, 3, 5, 7, 11, 17, 26, 43, 64, 97, 150, 331];
        for budget in budgets.iter().chain(&tight) {
            let config = ExecConfig {
                max_instructions: *budget,
                max_call_depth: 13,
            };
            if let Err(e) = check_identical(&program, &config) {
                return Err(format!("seed {seed} budget {budget}: {e}"));
            }
        }
    }

    #[test]
    fn o0_frame_programs_execute_identically_on_all_engines(seed in 0u64..1_000_000) {
        let program = o0_frame_program(seed);
        // The fused image must actually contain frame superinstructions —
        // this sweep exists to abort budgets *inside* them.
        prop_assert!(ExecImage::new(&program).num_fused() > 0, "generator produced nothing to fuse");
        // A comfortable budget plus a dense sweep of tight budgets: the
        // body fragments are 2-3 budgeted instructions each, so stepping
        // the abort point by one walks it through every constituent of the
        // frame-fused superinstructions (pairs and triples alike).
        let mut budgets: Vec<u64> = (1..40).collect();
        budgets.extend([64, 97, 150, 331, 20_000]);
        for budget in budgets {
            let config = ExecConfig {
                max_instructions: budget,
                max_call_depth: 13,
            };
            if let Err(e) = check_identical(&program, &config) {
                return Err(format!("seed {seed} budget {budget}: {e}"));
            }
        }
    }

    #[test]
    fn batched_lanes_match_scalar_sims_under_budget_aborts(seed in 0u64..1_000_000) {
        // Per-lane bit-parity of the batched multi-config model against N
        // independent scalar simulations, on random frame-fusing programs,
        // with budgets that abort mid-superinstruction — both models see
        // the identical truncated event stream, so every lane must still
        // equal its scalar twin exactly.  The config set deliberately mixes
        // a duplicate (lane dedup), shared L1/L2 shapes, in-order, and a
        // zero-sized ROB.
        let program = o0_frame_program(seed);
        let configs = [
            PipelineConfig::ptlsim_2wide(8),
            PipelineConfig::out_of_order(4, 96, 32, 2048, 15),
            PipelineConfig::epic(6, 16, 256),
            PipelineConfig::ptlsim_2wide(8),
            PipelineConfig::out_of_order(2, 0, 8, 256, 10),
        ];
        for image in [ExecImage::new(&program), ExecImage::unfused(&program)] {
            for budget in [3u64, 7, 26, 97, 331, 20_000] {
                let config = ExecConfig { max_instructions: budget, max_call_depth: 13 };
                let mut batched = BatchedPipelineSim::from_image(&configs, &image);
                execute_image(&image, &mut batched, &config);
                for ((i, c), lane) in configs.iter().enumerate().zip(batched.results()) {
                    let mut scalar = PipelineSim::from_image(*c, &image);
                    execute_image(&image, &mut scalar, &config);
                    prop_assert_eq!(
                        lane,
                        scalar.result(),
                        "seed {} budget {} lane {} diverged",
                        seed,
                        budget,
                        i
                    );
                }
            }
        }
    }

    #[test]
    fn random_programs_fuse_deterministically(seed in 0u64..1_000_000) {
        // Image building is deterministic: same program, same fusion result.
        let mut g = Gen::from_seed(seed ^ 0xabcdef, 1);
        let program = g.program();
        let a = ExecImage::new(&program);
        let b = ExecImage::new(&program);
        prop_assert_eq!(a.num_fused(), b.num_fused());
        prop_assert_eq!(a.num_sites(), b.num_sites());
        prop_assert_eq!(ExecImage::unfused(&program).num_fused(), 0);
    }
}
