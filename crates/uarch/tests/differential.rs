//! Differential tests: the predecoded engine — fused *and* unfused — must be
//! observably identical to the legacy tree-walking interpreter: same
//! [`ExecOutcome`], same event stream (instructions, blocks, edges, branches,
//! calls, in the same order, with the same dense indices), and same
//! [`PipelineResult`] when all three drive the timing model.

use bsg_ir::program::{Function, Global, Program};
use bsg_ir::types::{BlockId, FuncId, Ty, Value};
use bsg_ir::visa::{Address, BinOp, Inst, Operand, Terminator, UnOp};
use bsg_uarch::exec::{
    execute_image, execute_legacy, ExecConfig, ExecOutcome, InstEvent, InstSite, Observer,
};
use bsg_uarch::image::ExecImage;
use bsg_uarch::pipeline::{PipelineConfig, PipelineSim, ReferencePipelineSim};

/// Records every observer callback verbatim.
#[derive(Debug, Default, Clone, PartialEq)]
struct Recording {
    events: Vec<Event>,
}

#[derive(Debug, Clone, PartialEq)]
enum Event {
    Inst(InstEvent),
    Block(FuncId, BlockId, u32),
    Edge(FuncId, BlockId, BlockId, u32),
    Branch(InstSite, u32, bool),
    Call(FuncId, FuncId),
}

impl Observer for Recording {
    fn on_inst(&mut self, event: &InstEvent) {
        self.events.push(Event::Inst(*event));
    }
    fn on_block(&mut self, func: FuncId, block: BlockId, block_idx: u32) {
        self.events.push(Event::Block(func, block, block_idx));
    }
    fn on_edge(&mut self, func: FuncId, from: BlockId, to: BlockId, edge_idx: u32) {
        self.events.push(Event::Edge(func, from, to, edge_idx));
    }
    fn on_branch(&mut self, site: InstSite, site_id: u32, taken: bool) {
        self.events.push(Event::Branch(site, site_id, taken));
    }
    fn on_call(&mut self, caller: FuncId, callee: FuncId) {
        self.events.push(Event::Call(caller, callee));
    }
}

fn assert_identical(program: &Program, config: &ExecConfig) -> ExecOutcome {
    let fused_image = ExecImage::new(program);
    let unfused_image = ExecImage::unfused(program);
    let mut fused_rec = Recording::default();
    let mut unfused_rec = Recording::default();
    let mut old_rec = Recording::default();
    let fused = execute_image(&fused_image, &mut fused_rec, config);
    let unfused = execute_image(&unfused_image, &mut unfused_rec, config);
    let old = execute_legacy(program, &mut old_rec, config);
    assert_eq!(fused, old, "fused vs legacy outcomes diverge");
    assert_eq!(unfused, old, "unfused vs legacy outcomes diverge");
    for (what, rec) in [("fused", &fused_rec), ("unfused", &unfused_rec)] {
        assert_eq!(
            rec.events.len(),
            old_rec.events.len(),
            "{what} event counts diverge: {} vs {}",
            rec.events.len(),
            old_rec.events.len()
        );
        for (i, (n, o)) in rec.events.iter().zip(&old_rec.events).enumerate() {
            assert_eq!(n, o, "{what} event {i} diverges");
        }
    }

    let mut fused_sim = PipelineSim::from_image(PipelineConfig::ptlsim_2wide(8), &fused_image);
    let mut unfused_sim = PipelineSim::from_image(PipelineConfig::ptlsim_2wide(8), &unfused_image);
    let mut old_sim = ReferencePipelineSim::new(PipelineConfig::ptlsim_2wide(8), program);
    execute_image(&fused_image, &mut fused_sim, config);
    execute_image(&unfused_image, &mut unfused_sim, config);
    execute_legacy(program, &mut old_sim, config);
    assert_eq!(
        fused_sim.result(),
        old_sim.result(),
        "fused pipeline results diverge"
    );
    assert_eq!(
        unfused_sim.result(),
        old_sim.result(),
        "unfused pipeline results diverge"
    );
    fused
}

/// Kernel with loops, calls, conditional branches, frame traffic, folded
/// memory operands, prints and float math — every step kind in one program.
fn torture_program() -> Program {
    let mut p = Program::new();
    let g = p.add_global(Global::zeroed("data", 512));

    // helper(k): data[k % 512] += k; return data[k % 512] * 2  (uses frame slot)
    let mut helper = Function::new("helper");
    let k = helper.fresh_reg();
    helper.params = vec![k];
    let idx = helper.fresh_reg();
    let v = helper.fresh_reg();
    let slot = helper.fresh_frame_slot();
    helper.blocks[0].insts = vec![
        Inst::Store {
            src: k.into(),
            addr: Address::frame(slot),
            ty: Ty::Int,
        },
        Inst::Bin {
            op: BinOp::Rem,
            ty: Ty::Int,
            dst: idx,
            lhs: k.into(),
            rhs: Operand::ImmInt(512),
        },
        Inst::Load {
            dst: v,
            addr: Address::global_indexed(g, 0, idx, 1),
            ty: Ty::Int,
        },
        Inst::Bin {
            op: BinOp::Add,
            ty: Ty::Int,
            dst: v,
            lhs: v.into(),
            rhs: Operand::Mem(Address::frame(slot)),
        },
        Inst::Store {
            src: v.into(),
            addr: Address::global_indexed(g, 0, idx, 1),
            ty: Ty::Int,
        },
        Inst::Bin {
            op: BinOp::Mul,
            ty: Ty::Int,
            dst: v,
            lhs: v.into(),
            rhs: Operand::ImmInt(2),
        },
    ];
    helper.blocks[0].term = Terminator::Return(Some(v.into()));

    // main: loop over i, branch on parity, call helper, float accumulate, print.
    let mut main = Function::new("main");
    let i = main.fresh_reg();
    let c = main.fresh_reg();
    let par = main.fresh_reg();
    let acc = main.fresh_reg();
    let f = main.fresh_reg();
    let r = main.fresh_reg();
    let header = main.add_block();
    let even = main.add_block();
    let odd = main.add_block();
    let latch = main.add_block();
    let exit = main.add_block();
    main.blocks[0].insts = vec![
        Inst::Mov {
            dst: i,
            src: Operand::ImmInt(0),
        },
        Inst::Mov {
            dst: acc,
            src: Operand::ImmInt(0),
        },
        Inst::Mov {
            dst: f,
            src: Operand::ImmFloat(1.0),
        },
    ];
    main.blocks[0].term = Terminator::Jump(header);
    main.blocks[header.index()].insts = vec![Inst::Bin {
        op: BinOp::Lt,
        ty: Ty::Int,
        dst: c,
        lhs: i.into(),
        rhs: Operand::ImmInt(300),
    }];
    main.blocks[header.index()].term = Terminator::Branch {
        cond: c,
        taken: even,
        not_taken: exit,
    };
    main.blocks[even.index()].insts = vec![Inst::Bin {
        op: BinOp::And,
        ty: Ty::Int,
        dst: par,
        lhs: i.into(),
        rhs: Operand::ImmInt(1),
    }];
    main.blocks[even.index()].term = Terminator::Branch {
        cond: par,
        taken: odd,
        not_taken: latch,
    };
    main.blocks[odd.index()].insts = vec![
        Inst::Call {
            func: FuncId(1),
            args: vec![i.into()],
            dst: Some(r),
        },
        Inst::Bin {
            op: BinOp::Add,
            ty: Ty::Int,
            dst: acc,
            lhs: acc.into(),
            rhs: r.into(),
        },
        Inst::Un {
            op: UnOp::ToFloat,
            ty: Ty::Float,
            dst: f,
            src: acc.into(),
        },
        Inst::Un {
            op: UnOp::Sqrt,
            ty: Ty::Float,
            dst: f,
            src: f.into(),
        },
    ];
    main.blocks[odd.index()].term = Terminator::Jump(latch);
    main.blocks[latch.index()].insts = vec![
        Inst::Print { src: acc.into() },
        Inst::Bin {
            op: BinOp::Add,
            ty: Ty::Int,
            dst: i,
            lhs: i.into(),
            rhs: Operand::ImmInt(1),
        },
        Inst::Nop,
    ];
    main.blocks[latch.index()].term = Terminator::Jump(header);
    main.blocks[exit.index()].term = Terminator::Return(Some(acc.into()));

    p.add_function(main);
    p.add_function(helper);
    p
}

/// f(n) = n <= 1 ? 1 : f(n - 1) + f(n - 2): deep call tree, frame pressure.
fn recursive_program(depth_limit: usize) -> (Program, ExecConfig) {
    let mut p = Program::new();
    let mut f = Function::new("fib");
    let n = f.fresh_reg();
    f.params = vec![n];
    let c = f.fresh_reg();
    let a = f.fresh_reg();
    let b = f.fresh_reg();
    let t = f.fresh_reg();
    let rec = f.add_block();
    let base = f.add_block();
    f.blocks[0].insts = vec![Inst::Bin {
        op: BinOp::Le,
        ty: Ty::Int,
        dst: c,
        lhs: n.into(),
        rhs: Operand::ImmInt(1),
    }];
    f.blocks[0].term = Terminator::Branch {
        cond: c,
        taken: base,
        not_taken: rec,
    };
    f.blocks[rec.index()].insts = vec![
        Inst::Bin {
            op: BinOp::Sub,
            ty: Ty::Int,
            dst: t,
            lhs: n.into(),
            rhs: Operand::ImmInt(1),
        },
        Inst::Call {
            func: FuncId(0),
            args: vec![t.into()],
            dst: Some(a),
        },
        Inst::Bin {
            op: BinOp::Sub,
            ty: Ty::Int,
            dst: t,
            lhs: n.into(),
            rhs: Operand::ImmInt(2),
        },
        Inst::Call {
            func: FuncId(0),
            args: vec![t.into()],
            dst: Some(b),
        },
        Inst::Bin {
            op: BinOp::Add,
            ty: Ty::Int,
            dst: a,
            lhs: a.into(),
            rhs: b.into(),
        },
    ];
    f.blocks[rec.index()].term = Terminator::Return(Some(a.into()));
    f.blocks[base.index()].term = Terminator::Return(Some(Operand::ImmInt(1)));
    p.add_function(f);

    let mut main = Function::new("main");
    let r = main.fresh_reg();
    main.blocks[0].insts = vec![Inst::Call {
        func: FuncId(0),
        args: vec![Operand::ImmInt(12)],
        dst: Some(r),
    }];
    main.blocks[0].term = Terminator::Return(Some(r.into()));
    let main_id = p.add_function(main);
    p.entry = main_id;
    (
        p,
        ExecConfig {
            max_instructions: u64::MAX,
            max_call_depth: depth_limit,
        },
    )
}

#[test]
fn torture_kernel_is_bit_identical() {
    let p = torture_program();
    let out = assert_identical(&p, &ExecConfig::default());
    assert!(out.completed);
    assert!(out.dynamic_instructions > 2_000);
    assert!(!out.printed.is_empty());
}

#[test]
fn recursion_is_bit_identical() {
    let (p, config) = recursive_program(64);
    let out = assert_identical(&p, &config);
    assert!(out.completed);
    assert_eq!(out.return_value, Some(Value::Int(233)), "fib(12)");
}

#[test]
fn call_depth_abort_is_bit_identical() {
    // Depth limit far below the fib(12) call tree: both engines must abort
    // identically, mid-execution.
    let (p, _) = recursive_program(64);
    assert_identical(
        &p,
        &ExecConfig {
            max_instructions: u64::MAX,
            max_call_depth: 5,
        },
    );
}

#[test]
fn instruction_budget_abort_is_bit_identical() {
    let p = torture_program();
    // Sweep budgets so the halt lands on every step kind at least once.
    for budget in [1u64, 2, 3, 5, 7, 10, 23, 100, 101, 102, 103, 997] {
        let out = assert_identical(
            &p,
            &ExecConfig {
                max_instructions: budget,
                max_call_depth: 256,
            },
        );
        assert!(!out.completed, "budget {budget} must halt the run");
    }
}

#[test]
fn zero_call_depth_is_bit_identical() {
    let p = torture_program();
    assert_identical(
        &p,
        &ExecConfig {
            max_instructions: u64::MAX,
            max_call_depth: 0,
        },
    );
}

/// Float-heavy kernel covering every quickened float/unary step shape:
/// reg∘reg, reg∘imm-float, reg∘imm-int, imm∘reg, memory-operand float ops,
/// float comparisons feeding branches, and unary ops with register,
/// immediate and memory sources.
fn float_program() -> Program {
    let mut p = Program::new();
    let g = p.add_global(Global::zeroed("fdata", 64));
    let mut f = Function::new("main");
    let i = f.fresh_reg();
    let c = f.fresh_reg();
    let x = f.fresh_reg();
    let y = f.fresh_reg();
    let z = f.fresh_reg();
    let header = f.add_block();
    let hot = f.add_block();
    let cold = f.add_block();
    let latch = f.add_block();
    let exit = f.add_block();
    f.blocks[0].insts = vec![
        Inst::Mov {
            dst: i,
            src: Operand::ImmInt(0),
        },
        Inst::Mov {
            dst: x,
            src: Operand::ImmFloat(1.5),
        },
        Inst::Store {
            src: Operand::ImmFloat(2.25),
            addr: Address::global(g, 3),
            ty: Ty::Float,
        },
    ];
    f.blocks[0].term = Terminator::Jump(header);
    f.blocks[header.index()].insts = vec![Inst::Bin {
        op: BinOp::Lt,
        ty: Ty::Int,
        dst: c,
        lhs: i.into(),
        rhs: Operand::ImmInt(200),
    }];
    f.blocks[header.index()].term = Terminator::Branch {
        cond: c,
        taken: hot,
        not_taken: exit,
    };
    f.blocks[hot.index()].insts = vec![
        // FloatAlu with an immediate-float rhs.
        Inst::Bin {
            op: BinOp::Mul,
            ty: Ty::Float,
            dst: y,
            lhs: x.into(),
            rhs: Operand::ImmFloat(1.0001),
        },
        // FloatAlu with an immediate-int rhs (int converts via as_float).
        Inst::Bin {
            op: BinOp::Add,
            ty: Ty::Float,
            dst: y,
            lhs: y.into(),
            rhs: Operand::ImmInt(1),
        },
        // FloatAlu: immediate lhs, register rhs.
        Inst::Bin {
            op: BinOp::Sub,
            ty: Ty::Float,
            dst: z,
            lhs: Operand::ImmFloat(100.0),
            rhs: y.into(),
        },
        // FloatAlu: both operands in registers.
        Inst::Bin {
            op: BinOp::Div,
            ty: Ty::Float,
            dst: z,
            lhs: z.into(),
            rhs: y.into(),
        },
        // General FloatBin: folded memory operand stays on the slow path.
        Inst::Bin {
            op: BinOp::Add,
            ty: Ty::Float,
            dst: z,
            lhs: z.into(),
            rhs: Operand::Mem(Address::global(g, 3)),
        },
        // UnFF: float register source.
        Inst::Un {
            op: UnOp::Sqrt,
            ty: Ty::Float,
            dst: z,
            src: z.into(),
        },
        Inst::Un {
            op: UnOp::Neg,
            ty: Ty::Float,
            dst: z,
            src: z.into(),
        },
        // General Un: immediate source.
        Inst::Un {
            op: UnOp::Cos,
            ty: Ty::Float,
            dst: x,
            src: Operand::ImmFloat(0.5),
        },
        // Float comparison (FloatCmp producing an int) feeding a branch.
        Inst::Bin {
            op: BinOp::Gt,
            ty: Ty::Float,
            dst: c,
            lhs: y.into(),
            rhs: z.into(),
        },
    ];
    f.blocks[hot.index()].term = Terminator::Branch {
        cond: c,
        taken: latch,
        not_taken: cold,
    };
    f.blocks[cold.index()].insts = vec![
        // Division by a zero float (defined: eval_bin semantics) and an
        // abs through the quickened register path.
        Inst::Bin {
            op: BinOp::Div,
            ty: Ty::Float,
            dst: x,
            lhs: x.into(),
            rhs: Operand::ImmFloat(0.0),
        },
        Inst::Un {
            op: UnOp::Abs,
            ty: Ty::Float,
            dst: x,
            src: x.into(),
        },
    ];
    f.blocks[cold.index()].term = Terminator::Jump(latch);
    f.blocks[latch.index()].insts = vec![
        Inst::Store {
            src: z.into(),
            addr: Address::global_indexed(g, 0, i, 1),
            ty: Ty::Float,
        },
        Inst::Bin {
            op: BinOp::Add,
            ty: Ty::Int,
            dst: i,
            lhs: i.into(),
            rhs: Operand::ImmInt(1),
        },
    ];
    f.blocks[latch.index()].term = Terminator::Jump(header);
    f.blocks[exit.index()].insts = vec![Inst::Un {
        op: UnOp::ToInt,
        ty: Ty::Int,
        dst: i,
        src: z.into(),
    }];
    f.blocks[exit.index()].term = Terminator::Return(Some(i.into()));
    p.add_function(f);
    p
}

#[test]
fn float_and_unary_quickening_is_bit_identical() {
    let p = float_program();
    let out = assert_identical(&p, &ExecConfig::default());
    assert!(out.completed);
    assert!(out.dynamic_instructions > 2_000);
}

#[test]
fn float_kernel_aborts_are_bit_identical() {
    // Halt the run on top of the quickened float steps too.
    let p = float_program();
    for budget in [4u64, 9, 10, 11, 12, 13, 14, 15, 16, 17, 500] {
        let out = assert_identical(
            &p,
            &ExecConfig {
                max_instructions: budget,
                max_call_depth: 256,
            },
        );
        assert!(!out.completed, "budget {budget} must halt the run");
    }
}
