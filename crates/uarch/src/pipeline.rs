//! Pipeline timing models: a dependence-driven out-of-order model (the
//! paper's PTLSim 2-wide configuration, Figure 10) and an in-order EPIC model
//! used for the Itanium 2 machine of Table III / Figure 11.
//!
//! The models are *observers* of a functional execution: they see every
//! dynamic instruction with its memory addresses and every conditional-branch
//! outcome, and charge cycles for issue-width limits, data dependences,
//! cache misses and branch mispredictions.  They are first-order models in
//! the spirit of interval analysis, not cycle-by-cycle simulators — which is
//! all the paper's original-vs-synthetic comparisons require.

use crate::branch::{BranchStats, Hybrid, Predictor};
use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::exec::{InstEvent, InstSite, Observer};
use crate::image::ExecImage;
use bsg_ir::types::{FuncId, Reg};
use bsg_ir::visa::{Inst, InstClass, Terminator};
use bsg_ir::Program;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of a pipeline timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Issue width (instructions dispatched per cycle).
    pub width: u32,
    /// `true` for in-order (EPIC) issue, `false` for out-of-order.
    pub in_order: bool,
    /// Reorder-buffer size (out-of-order only).
    pub rob_size: usize,
    /// L1 data-cache configuration.
    pub l1: CacheConfig,
    /// Unified L2 configuration.
    pub l2: CacheConfig,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// Memory latency in cycles.
    pub mem_latency: u64,
    /// Cycles lost on a branch misprediction.
    pub mispredict_penalty: u64,
}

impl PipelineConfig {
    /// The paper's detailed-simulation configuration: a 2-wide out-of-order
    /// processor with a configurable L1 data cache (Figure 10 varies 8, 16
    /// and 32 KB) and a 1 MB L2.
    pub fn ptlsim_2wide(l1_kb: u64) -> Self {
        PipelineConfig {
            width: 2,
            in_order: false,
            rob_size: 64,
            l1: CacheConfig::kb(l1_kb),
            l2: CacheConfig::kb(1024),
            l1_latency: 2,
            l2_latency: 12,
            mem_latency: 150,
            mispredict_penalty: 12,
        }
    }

    /// A generic out-of-order configuration used by the Table III machines.
    pub fn out_of_order(
        width: u32,
        rob_size: usize,
        l1_kb: u64,
        l2_kb: u64,
        mispredict_penalty: u64,
    ) -> Self {
        PipelineConfig {
            width,
            in_order: false,
            rob_size,
            l1: CacheConfig::kb(l1_kb),
            l2: CacheConfig::kb(l2_kb),
            l1_latency: 2,
            l2_latency: 12,
            mem_latency: 180,
            mispredict_penalty,
        }
    }

    /// A wide in-order (EPIC) configuration.
    pub fn epic(width: u32, l1_kb: u64, l2_kb: u64) -> Self {
        PipelineConfig {
            width,
            in_order: true,
            rob_size: 1,
            l1: CacheConfig::kb(l1_kb),
            l2: CacheConfig::kb(l2_kb),
            l1_latency: 1,
            l2_latency: 7,
            mem_latency: 160,
            mispredict_penalty: 6,
        }
    }
}

/// Timing result of a simulated execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineResult {
    /// Total cycles.
    pub cycles: u64,
    /// Dynamic instructions timed.
    pub instructions: u64,
    /// Branch-prediction statistics.
    pub branches: BranchStats,
    /// L1 data-cache statistics.
    pub l1: CacheStats,
    /// L2 statistics (accesses are L1 misses).
    pub l2: CacheStats,
}

impl PipelineResult {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// Per-static-instruction register information, predecoded by the
/// [`ExecImage`] so the timing model does one array index per dynamic
/// instruction (no hashing, no allocation).  Shared with the batched
/// multi-config model in [`crate::batch`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SiteInfo {
    pub(crate) def: Option<Reg>,
    pub(crate) uses: [Option<Reg>; 3],
}

/// Issue-to-complete latency of an instruction class, excluding the memory
/// hierarchy (loads are charged through the cache model).  One function —
/// not a method — so the scalar and batched models provably share it.
pub(crate) fn base_latency(class: InstClass) -> u64 {
    match class {
        InstClass::IntAlu | InstClass::Branch | InstClass::Other | InstClass::Store => 1,
        InstClass::IntMul => 3,
        InstClass::IntDiv => 20,
        InstClass::FpAdd => 3,
        InstClass::FpMul => 5,
        InstClass::FpDiv => 20,
        InstClass::Call => 2,
        InstClass::Load => 0, // charged through the memory hierarchy
    }
}

/// The pipeline timing model; implement [`Observer`] and feed it to
/// [`crate::exec::execute`].
pub struct PipelineSim {
    config: PipelineConfig,
    /// Indexed by dense site id (the image's site table order).
    info: Vec<SiteInfo>,
    l1: Cache,
    l2: Cache,
    predictor: Hybrid,
    branch_stats: BranchStats,
    reg_ready: Vec<u64>,
    cycle: u64,
    issued_in_cycle: u32,
    /// Completion cycles of in-flight instructions, as a fixed ring buffer of
    /// capacity `rob_size` (`rob_pos` is the oldest entry once full).
    rob: Vec<u64>,
    rob_pos: usize,
    last_complete: u64,
    max_complete: u64,
    instructions: u64,
}

impl PipelineSim {
    /// Creates a timing model for `program` (register/def–use information is
    /// precomputed from the program).  When an [`ExecImage`] is already at
    /// hand, [`PipelineSim::from_image`] skips the predecode pass.
    pub fn new(config: PipelineConfig, program: &Program) -> Self {
        Self::from_image(config, &ExecImage::new(program))
    }

    /// Creates a timing model from a predecoded image, reusing its site
    /// table for the per-instruction register information.
    pub fn from_image(config: PipelineConfig, image: &ExecImage) -> Self {
        let info = image
            .site_metas()
            .iter()
            .map(|m| SiteInfo {
                def: m.def,
                uses: m.uses,
            })
            .collect();
        PipelineSim {
            config,
            info,
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            predictor: Hybrid::default_config(),
            branch_stats: BranchStats::default(),
            reg_ready: vec![0; image.max_regs() as usize],
            cycle: 0,
            issued_in_cycle: 0,
            rob: Vec::new(),
            rob_pos: 0,
            last_complete: 0,
            max_complete: 0,
            instructions: 0,
        }
    }

    fn memory_latency(&mut self, addr: u64) -> u64 {
        if self.l1.access(addr) {
            self.config.l1_latency
        } else if self.l2.access(addr) {
            self.config.l2_latency
        } else {
            self.config.mem_latency
        }
    }

    fn ready_cycle(&self, r: Reg) -> u64 {
        self.reg_ready.get(r.0 as usize).copied().unwrap_or(0)
    }

    /// The final timing result.
    pub fn result(&self) -> PipelineResult {
        PipelineResult {
            cycles: self.max_complete.max(self.cycle),
            instructions: self.instructions,
            branches: self.branch_stats,
            l1: self.l1.stats(),
            l2: self.l2.stats(),
        }
    }
}

impl PipelineSim {
    /// Advances the timing model by one instruction with its predecoded
    /// register information (shared by the dense and reference front ends).
    fn step(&mut self, event: &InstEvent, info: SiteInfo) {
        self.instructions += 1;

        // Issue-width constraint.
        if self.issued_in_cycle >= self.config.width {
            self.cycle += 1;
            self.issued_in_cycle = 0;
        }
        // Reorder-buffer constraint (out-of-order only): the oldest in-flight
        // instruction must have completed before a new one can enter.  Once
        // the ring is full the slot at `rob_pos` is always the oldest entry;
        // it is retired here and overwritten by this instruction below.
        // `rob_size == 0` behaves like 1 (the pre-ring `VecDeque` popped from
        // empty harmlessly, which amounted to a one-entry buffer).
        let rob_full = !self.config.in_order && self.rob.len() >= self.config.rob_size.max(1);
        if rob_full {
            let oldest = self.rob[self.rob_pos];
            if oldest > self.cycle {
                self.cycle = oldest;
                self.issued_in_cycle = 0;
            }
        }

        let mut src_ready = 0;
        for r in info.uses.iter().flatten() {
            src_ready = src_ready.max(self.ready_cycle(*r));
        }

        let issue = if self.config.in_order {
            // In-order issue stalls the whole pipeline until operands are ready.
            if src_ready > self.cycle {
                self.cycle = src_ready;
                self.issued_in_cycle = 0;
            }
            self.cycle
        } else {
            self.cycle.max(src_ready)
        };

        let mut latency = base_latency(event.class);
        if let Some(a) = event.mem_read {
            latency += self.memory_latency(a);
        }
        if let Some(a) = event.mem_write {
            // Stores retire through a write buffer; they still access the cache.
            self.memory_latency(a);
        }

        let complete = issue + latency.max(1);
        if let Some(d) = info.def {
            if let Some(slot) = self.reg_ready.get_mut(d.0 as usize) {
                *slot = complete;
            }
        }
        if !self.config.in_order {
            if rob_full {
                self.rob[self.rob_pos] = complete;
                self.rob_pos += 1;
                if self.rob_pos >= self.rob.len() {
                    self.rob_pos = 0;
                }
            } else {
                self.rob.push(complete);
            }
        }
        self.issued_in_cycle += 1;
        self.last_complete = complete;
        self.max_complete = self.max_complete.max(complete);
    }
}

impl Observer for PipelineSim {
    fn on_inst(&mut self, event: &InstEvent) {
        let info = self.info[event.site_id as usize];
        self.step(event, info);
    }

    fn on_branch(&mut self, _site: InstSite, site_id: u32, taken: bool) {
        self.branch_stats.branches += 1;
        if self.predictor.predict_and_update(site_id, taken) {
            self.branch_stats.correct += 1;
        } else {
            // Redirect: the front end restarts after the branch resolves.
            self.cycle = self.cycle.max(self.last_complete) + self.config.mispredict_penalty;
            self.issued_in_cycle = 0;
        }
    }
}

/// Runs a program through the functional executor under this timing model and
/// returns the timing result.
pub fn simulate(program: &Program, config: PipelineConfig) -> PipelineResult {
    simulate_image(&ExecImage::new(program), config)
}

/// [`simulate`] over a prebuilt image (amortizes predecode across sweeps).
///
/// Observer-specialized dispatch: the timing model is a heavyweight observer,
/// and with its callbacks inlined into the dispatch loop the fused arms cost
/// more in i-cache pressure than they save in dispatch (PERF.md §PR-3/§PR-5
/// measure the inversion), so the simulation runs the image's **unfused
/// twin** when one is present.  Results are bit-identical either way — the
/// twins share site tables and event streams (differential-suite proven) —
/// so callers see only the speed difference.
pub fn simulate_image(image: &ExecImage, config: PipelineConfig) -> PipelineResult {
    let image = image.unfused_twin();
    let mut sim = PipelineSim::from_image(config, image);
    crate::exec::execute_image(image, &mut sim, &crate::exec::ExecConfig::default());
    sim.result()
}

/// The pre-predecode pipeline timing model, kept as the measured baseline
/// and differential-test reference: per-site register information lives in
/// nested `HashMap`s probed by `(func, block, index)` on every dynamic
/// instruction, exactly as the model worked before dense site ids existed.
/// (Branch-predictor tables are keyed by dense site id here too — see
/// PERF.md — so both models produce bit-identical results.)
pub struct ReferencePipelineSim {
    info: HashMap<FuncId, Vec<Vec<ReferenceSiteInfo>>>,
    term_uses: HashMap<FuncId, Vec<Option<Reg>>>,
    inner: PipelineSim,
}

#[derive(Debug, Clone, Copy, Default)]
struct ReferenceSiteInfo {
    def: Option<Reg>,
    uses: [Option<Reg>; 3],
}

fn reference_site_info(inst: &Inst) -> ReferenceSiteInfo {
    let mut info = ReferenceSiteInfo {
        def: inst.def(),
        uses: [None; 3],
    };
    for (i, u) in inst.uses().take(3).enumerate() {
        info.uses[i] = Some(u);
    }
    info
}

impl ReferencePipelineSim {
    /// Creates the reference model for `program`.
    pub fn new(config: PipelineConfig, program: &Program) -> Self {
        let mut info = HashMap::new();
        let mut term_uses = HashMap::new();
        let mut max_regs = 1;
        for (fi, f) in program.functions.iter().enumerate() {
            max_regs = max_regs.max(f.num_regs as usize);
            let blocks: Vec<Vec<ReferenceSiteInfo>> = f
                .blocks
                .iter()
                .map(|b| b.insts.iter().map(reference_site_info).collect())
                .collect();
            info.insert(FuncId(fi as u32), blocks);
            let terms: Vec<Option<Reg>> = f
                .blocks
                .iter()
                .map(|b| match &b.term {
                    Terminator::Branch { cond, .. } => Some(*cond),
                    _ => None,
                })
                .collect();
            term_uses.insert(FuncId(fi as u32), terms);
        }
        let mut inner = PipelineSim::new(config, program);
        inner.info.clear(); // the reference path supplies its own lookups
        inner.reg_ready = vec![0; max_regs];
        ReferencePipelineSim {
            info,
            term_uses,
            inner,
        }
    }

    fn lookup(&self, event: &InstEvent) -> SiteInfo {
        if event.site.index == usize::MAX {
            let cond = self
                .term_uses
                .get(&event.site.func)
                .and_then(|v| v.get(event.site.block.index()))
                .copied()
                .flatten();
            return SiteInfo {
                def: None,
                uses: [cond, None, None],
            };
        }
        self.info
            .get(&event.site.func)
            .and_then(|blocks| blocks.get(event.site.block.index()))
            .and_then(|insts| insts.get(event.site.index))
            .map(|i| SiteInfo {
                def: i.def,
                uses: i.uses,
            })
            .unwrap_or_default()
    }

    /// The final timing result.
    pub fn result(&self) -> PipelineResult {
        self.inner.result()
    }
}

impl Observer for ReferencePipelineSim {
    fn on_inst(&mut self, event: &InstEvent) {
        let info = self.lookup(event);
        self.inner.step(event, info);
    }

    fn on_branch(&mut self, site: InstSite, site_id: u32, taken: bool) {
        self.inner.on_branch(site, site_id, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_ir::program::{Function, Global, Program};
    use bsg_ir::types::{GlobalId, Ty};
    use bsg_ir::visa::{Address, BinOp, Inst, Operand, Terminator};

    /// A loop striding through memory with a dependent add chain.
    fn strided_loop(elems: i64, stride: i64, iters: i64) -> Program {
        let mut p = Program::new();
        let g = p.add_global(Global::zeroed("data", elems as usize));
        let mut f = Function::new("main");
        let i = f.fresh_reg();
        let idx = f.fresh_reg();
        let v = f.fresh_reg();
        let acc = f.fresh_reg();
        let c = f.fresh_reg();
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        f.blocks[0].insts = vec![
            Inst::Mov {
                dst: i,
                src: Operand::ImmInt(0),
            },
            Inst::Mov {
                dst: acc,
                src: Operand::ImmInt(0),
            },
        ];
        f.blocks[0].term = Terminator::Jump(header);
        f.blocks[header.index()].insts = vec![Inst::Bin {
            op: BinOp::Lt,
            ty: Ty::Int,
            dst: c,
            lhs: i.into(),
            rhs: Operand::ImmInt(iters),
        }];
        f.blocks[header.index()].term = Terminator::Branch {
            cond: c,
            taken: body,
            not_taken: exit,
        };
        f.blocks[body.index()].insts = vec![
            Inst::Bin {
                op: BinOp::Mul,
                ty: Ty::Int,
                dst: idx,
                lhs: i.into(),
                rhs: Operand::ImmInt(stride),
            },
            Inst::Load {
                dst: v,
                addr: Address::global_indexed(g, 0, idx, 1),
                ty: Ty::Int,
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: acc,
                lhs: acc.into(),
                rhs: v.into(),
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: i,
                lhs: i.into(),
                rhs: Operand::ImmInt(1),
            },
        ];
        f.blocks[body.index()].term = Terminator::Jump(header);
        f.blocks[exit.index()].term = Terminator::Return(Some(acc.into()));
        p.add_function(f);
        p
    }

    #[test]
    fn cpi_is_at_least_the_width_bound() {
        let p = strided_loop(1024, 0, 2000);
        let r = simulate(&p, PipelineConfig::ptlsim_2wide(16));
        assert!(r.instructions > 10_000);
        assert!(
            r.cpi() >= 0.5,
            "a 2-wide machine cannot beat 0.5 CPI, got {}",
            r.cpi()
        );
        assert!(
            r.cpi() < 5.0,
            "zero-stride loop should not thrash, got {}",
            r.cpi()
        );
    }

    #[test]
    fn cache_thrashing_raises_cpi() {
        // Stride of 64 words = 256 bytes over a large array defeats an 8KB L1.
        let friendly = simulate(
            &strided_loop(1 << 16, 0, 3000),
            PipelineConfig::ptlsim_2wide(8),
        );
        let thrash = simulate(
            &strided_loop(1 << 16, 64, 3000),
            PipelineConfig::ptlsim_2wide(8),
        );
        assert!(
            thrash.cpi() > friendly.cpi() * 1.5,
            "thrashing {} vs friendly {}",
            thrash.cpi(),
            friendly.cpi()
        );
        assert!(thrash.l1.hit_rate() < friendly.l1.hit_rate());
    }

    #[test]
    fn bigger_l1_improves_cpi_for_moderate_working_sets() {
        // 16KB working set: fits in 32KB, not in 8KB.
        let p = strided_loop(4096, 1, 40_000);
        let small = simulate(&p, PipelineConfig::ptlsim_2wide(8));
        let large = simulate(&p, PipelineConfig::ptlsim_2wide(32));
        assert!(
            large.cpi() <= small.cpi(),
            "32KB {} vs 8KB {}",
            large.cpi(),
            small.cpi()
        );
        assert!(large.l1.hit_rate() >= small.l1.hit_rate());
    }

    #[test]
    fn in_order_is_slower_than_out_of_order_on_dependent_loads() {
        let p = strided_loop(1 << 14, 9, 20_000);
        let ooo = simulate(&p, PipelineConfig::out_of_order(6, 128, 16, 256, 6));
        let epic = simulate(&p, PipelineConfig::epic(6, 16, 256));
        assert!(
            epic.cycles > ooo.cycles,
            "in-order {} cycles vs out-of-order {} cycles",
            epic.cycles,
            ooo.cycles
        );
    }

    #[test]
    fn branch_heavy_code_sees_mispredictions_in_the_result() {
        let p = strided_loop(512, 1, 5000);
        let r = simulate(&p, PipelineConfig::ptlsim_2wide(16));
        assert!(r.branches.branches >= 5000);
        assert!(
            r.branches.accuracy() > 0.9,
            "a counted loop is highly predictable"
        );
        let _ = GlobalId(0);
    }

    #[test]
    fn zero_sized_rob_does_not_panic() {
        let p = strided_loop(1024, 1, 200);
        let r = simulate(&p, PipelineConfig::out_of_order(2, 0, 8, 256, 10));
        assert!(r.cycles > 0);
        assert!(r.instructions > 0);
    }

    #[test]
    fn result_arithmetic() {
        let r = PipelineResult {
            cycles: 100,
            instructions: 50,
            branches: BranchStats::default(),
            l1: CacheStats::default(),
            l2: CacheStats::default(),
        };
        assert!((r.cpi() - 2.0).abs() < 1e-12);
        assert!((r.ipc() - 0.5).abs() < 1e-12);
    }
}
