//! Static register-type inference for the untagged register file.
//!
//! The predecoded engine wants to keep registers in raw `i64`/`f64` banks
//! instead of the 16-byte tagged [`Value`], but the VISA semantics are
//! defined over dynamic tags (`Value::as_int` truncates floats,
//! `Value::is_true` differs between `Int(0)` and `Float(-0.0)`, and printed
//! or returned values are compared tag-and-all by the differential suite).
//! Storing a register untagged is therefore only sound when *every* value
//! that can ever reach the register has one statically-known tag.
//!
//! This module computes that property as a forward fixpoint over a four-point
//! lattice (`Bot < {Int, Float} < Top`) covering:
//!
//! * **registers** — joined over every instruction that may write them,
//!   including call-argument writes from every call site, call-return writes
//!   (joined with the callee's return lattice) and the implicit `Int(0)`
//!   frame initialization for registers that may be read before written
//!   (decided by a per-function liveness pass);
//! * **memory regions** — one lattice point per global array and one per
//!   **frame slot** (statically-addressed frame accesses resolve to their
//!   wrapped slot at analysis time; register-indexed accesses conservatively
//!   touch every slot), joined over initial contents and every store, so a
//!   load's destination register inherits a known tag when the addressed
//!   region provably holds one type.  Per-slot granularity is what lets a
//!   float local in a `-O0` frame untag: its `Int(0)` zero-init joins only
//!   when a **slot-level liveness pass** shows the slot may be read before
//!   written, so a slot that is always stored first can be all-float even
//!   though the frame as a whole never is;
//! * **returns** — one lattice point per function, joined over its `Return`
//!   operands.
//!
//! A register whose lattice value is `Int` or `Float` is assigned to the
//! matching untagged bank; `Top` (or any register the analysis cannot pin
//! down, e.g. the destination of a call whose callee may abort mid-run and
//! leave the register unwritten) stays in the tagged `Value` bank.  The
//! differential test suite is the proof obligation: fused/untagged execution
//! must be bit-identical to the legacy tagged interpreter on every program,
//! so the analysis errs on the side of `Top` wherever retention or dynamic
//! typing could be observed.

use bsg_ir::program::{GlobalInit, Program};
use bsg_ir::types::{Ty, Value};
use bsg_ir::visa::{BinOp, Inst, MemBase, Operand, Terminator, UnOp};

/// Which physical bank a register lives in (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RegBank {
    /// Untagged `i64` bank: every reaching value is `Value::Int`.
    Int,
    /// Untagged `f64` bank: every reaching value is `Value::Float`.
    Float,
    /// Tagged `Value` bank (type not statically known).
    Tagged,
}

/// The inference lattice: `Bot < Int, Float < Top`.  Shared with
/// [`crate::verify`], which re-runs the same inference over the decoded step
/// array so the two computations cannot drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Lat {
    Bot,
    Int,
    Float,
    Top,
}

impl Lat {
    pub(crate) fn join(self, other: Lat) -> Lat {
        match (self, other) {
            (Lat::Bot, x) | (x, Lat::Bot) => x,
            (a, b) if a == b => a,
            _ => Lat::Top,
        }
    }

    fn of_ty(ty: Ty) -> Lat {
        match ty {
            Ty::Int => Lat::Int,
            Ty::Float => Lat::Float,
        }
    }

    fn bank(self) -> RegBank {
        match self {
            // `Bot` means the register is never written and never read before
            // a write on any executable path; any bank works, and the int
            // bank's `0` matches the frame's `Value::Int(0)` initialization.
            Lat::Bot | Lat::Int => RegBank::Int,
            Lat::Float => RegBank::Float,
            Lat::Top => RegBank::Tagged,
        }
    }
}

/// Static result type of `eval_bin(op, ty, ..)`: float arithmetic produces
/// floats, but float comparisons and float bitwise/shift operations produce
/// integers (see `bsg_ir::eval`).
pub(crate) fn bin_result(op: BinOp, ty: Ty) -> Lat {
    match ty {
        Ty::Int => Lat::Int,
        Ty::Float => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => Lat::Float,
            _ => Lat::Int,
        },
    }
}

/// Static result type of `eval_un(op, ty, ..)`.
pub(crate) fn un_result(op: UnOp, ty: Ty) -> Lat {
    match op {
        UnOp::Neg | UnOp::Abs => Lat::of_ty(ty),
        UnOp::Not | UnOp::LogicalNot | UnOp::ToInt => Lat::Int,
        UnOp::ToFloat | UnOp::Sqrt | UnOp::Sin | UnOp::Cos | UnOp::Log => Lat::Float,
    }
}

/// Initial-contents lattice of a global array, without materializing it.
fn global_init_lat(g: &bsg_ir::program::Global) -> Lat {
    match &g.init {
        GlobalInit::Zero => {
            if g.elems == 0 {
                Lat::Bot
            } else {
                // `Global::initial_values` fills with `Value::default()`
                // (= `Int(0)`) regardless of the declared element type.
                Lat::Int
            }
        }
        GlobalInit::Iota | GlobalInit::Random { .. } => {
            if g.elems == 0 {
                Lat::Bot
            } else {
                Lat::of_ty(g.ty)
            }
        }
        GlobalInit::Values(vs) => {
            let used = vs.len().min(g.elems);
            let mut lat = if vs.len() < g.elems {
                Lat::Int // the zero padding
            } else {
                Lat::Bot
            };
            for v in &vs[..used] {
                lat = lat.join(match v {
                    Value::Int(_) => Lat::Int,
                    Value::Float(_) => Lat::Float,
                });
            }
            lat
        }
    }
}

/// Per-function liveness at function entry: the registers that may be read
/// before any write on some path from the entry block, i.e. the registers
/// whose implicit `Int(0)` frame initialization is observable.
///
/// `Call` destinations deliberately do **not** kill: a callee that aborts
/// (budget/depth) returns `None` and the destination register keeps its prior
/// value, so a read after the call may still observe the implicit init.
fn entry_live(f: &bsg_ir::program::Function) -> Vec<bool> {
    let nregs = f.num_regs as usize;
    let nblocks = f.blocks.len();
    let mut live_in: Vec<Vec<bool>> = vec![vec![false; nregs]; nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        // Reverse order converges faster for reducible CFGs; correctness
        // only needs the fixpoint.
        for bi in (0..nblocks).rev() {
            let block = &f.blocks[bi];
            // live-out = union of successors' live-in.
            let mut live: Vec<bool> = vec![false; nregs];
            for succ in block.term.successors() {
                for (slot, s) in live.iter_mut().zip(&live_in[succ.index()]) {
                    *slot |= s;
                }
            }
            // Terminator uses.
            for r in block.term.uses() {
                if let Some(slot) = live.get_mut(r.0 as usize) {
                    *slot = true;
                }
            }
            // Body, backward.
            for inst in block.insts.iter().rev() {
                let kills = match inst {
                    // A call may leave its destination unwritten; treat the
                    // def as conditional (no kill).
                    Inst::Call { .. } => None,
                    other => other.def(),
                };
                if let Some(d) = kills {
                    if let Some(slot) = live.get_mut(d.0 as usize) {
                        *slot = false;
                    }
                }
                for r in inst.uses() {
                    if let Some(slot) = live.get_mut(r.0 as usize) {
                        *slot = true;
                    }
                }
            }
            if live != live_in[bi] {
                live_in[bi] = live;
                changed = true;
            }
        }
    }
    live_in.swap_remove(f.entry.index())
}

/// Number of analyzable frame slots of a function.  Frame accesses wrap
/// modulo `frame_words.max(1)` at run time (see `exec`), so the analysis
/// domain has at least one slot and a *static* offset resolves to exactly
/// one slot.
fn slot_count(f: &bsg_ir::program::Function) -> usize {
    (f.frame_words.max(1)) as usize
}

/// The slot a statically-addressed frame access resolves to, or `None` when
/// the access is register-indexed (dynamic: may touch any slot).
fn static_slot(addr: &bsg_ir::visa::Address, nslots: usize) -> Option<usize> {
    if addr.index.is_some() {
        None
    } else {
        Some(addr.offset.rem_euclid(nslots as i64) as usize)
    }
}

/// Per-function liveness of **frame slots** at function entry: the slots that
/// may be read before any static store on some path, i.e. the slots whose
/// implicit `Int(0)` initialization is observable.  Register-indexed loads
/// read every slot; register-indexed stores kill nothing (the written slot is
/// unknown).  Frames are per-activation, so calls neither read nor write the
/// caller's slots.
fn frame_entry_live(f: &bsg_ir::program::Function) -> Vec<bool> {
    let nslots = slot_count(f);
    let nblocks = f.blocks.len();
    // gen of one operand read: mark the slots a frame-mem operand may read.
    let gen_operand = |live: &mut [bool], op: &Operand| {
        if let Operand::Mem(a) = op {
            if a.base == MemBase::Frame {
                match static_slot(a, nslots) {
                    Some(s) => live[s] = true,
                    None => live.iter_mut().for_each(|l| *l = true),
                }
            }
        }
    };
    let mut live_in: Vec<Vec<bool>> = vec![vec![false; nslots]; nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..nblocks).rev() {
            let block = &f.blocks[bi];
            let mut live: Vec<bool> = vec![false; nslots];
            for succ in block.term.successors() {
                for (slot, s) in live.iter_mut().zip(&live_in[succ.index()]) {
                    *slot |= s;
                }
            }
            if let Terminator::Return(Some(op)) = &block.term {
                gen_operand(&mut live, op);
            }
            for inst in block.insts.iter().rev() {
                // Kill first (applies to the post-instruction state), then
                // gen: an instruction that reads and writes the same slot
                // (e.g. `store frame[2] <- frame[2]`) reads it first.
                if let Inst::Store { addr, .. } = inst {
                    if addr.base == MemBase::Frame {
                        if let Some(s) = static_slot(addr, nslots) {
                            live[s] = false;
                        }
                    }
                }
                match inst {
                    Inst::Bin { lhs, rhs, .. } => {
                        gen_operand(&mut live, lhs);
                        gen_operand(&mut live, rhs);
                    }
                    Inst::Un { src, .. } | Inst::Mov { src, .. } | Inst::Print { src } => {
                        gen_operand(&mut live, src);
                    }
                    Inst::Load { addr, .. } => {
                        gen_operand(&mut live, &Operand::Mem(*addr));
                    }
                    Inst::Store { src, .. } => gen_operand(&mut live, src),
                    Inst::Call { args, .. } => {
                        for a in args {
                            gen_operand(&mut live, a);
                        }
                    }
                    Inst::Nop => {}
                }
            }
            if live != live_in[bi] {
                live_in[bi] = live;
                changed = true;
            }
        }
    }
    live_in.swap_remove(f.entry.index())
}

/// Result of the whole-program type inference.
pub(crate) struct TypeInfo {
    /// Bank of each `(function, register)`.
    pub regs: Vec<Vec<RegBank>>,
    /// Bank of each `(function, frame slot)` (`slot_count` entries per
    /// function).  `Int`/`Float` when every value that can reach the slot —
    /// including the `Int(0)` zero-init where the slot-liveness pass shows it
    /// observable — has that one tag; `Tagged` otherwise.
    pub frame_slots: Vec<Vec<RegBank>>,
    /// Whether each `(function, register)`'s implicit `Int(0)` initialization
    /// is observable (read-before-write on some path, per the liveness pass).
    /// Registers where it is not may keep stale values on frame acquisition:
    /// every read is provably preceded by a write.
    pub reg_init: Vec<Vec<bool>>,
    /// The same observability per `(function, frame slot)`.
    pub slot_init: Vec<Vec<bool>>,
}

/// Infers one [`RegBank`] per `(function, register)` and per `(function,
/// frame slot)` for `program` (see the module docs for the lattice and its
/// soundness argument).
pub(crate) fn infer(program: &Program) -> TypeInfo {
    let nfuncs = program.functions.len();
    let mut regs: Vec<Vec<Lat>> = program
        .functions
        .iter()
        .map(|f| vec![Lat::Bot; f.num_regs as usize])
        .collect();
    let mut globals: Vec<Lat> = program.globals.iter().map(global_init_lat).collect();
    // Per-slot frame lattices.  Slots start at `Bot`; the `Int(0)` zero-init
    // joins below only where the slot-liveness pass shows a read may observe
    // it, which is what lets always-stored-first float locals untag.
    let mut frames: Vec<Vec<Lat>> = program
        .functions
        .iter()
        .map(|f| vec![Lat::Bot; slot_count(f)])
        .collect();
    let mut slot_init: Vec<Vec<bool>> = Vec::with_capacity(nfuncs);
    for (fi, f) in program.functions.iter().enumerate() {
        let live = frame_entry_live(f);
        for (s, live) in live.iter().enumerate() {
            if *live {
                frames[fi][s] = Lat::Int;
            }
        }
        slot_init.push(live);
    }
    let mut rets: Vec<Lat> = vec![Lat::Bot; nfuncs];

    // Which functions have call sites, and whether any call site omits
    // argument `i` (leaving the parameter at its `Int(0)` init).
    let mut has_caller = vec![false; nfuncs];
    let mut short_args: Vec<usize> = vec![usize::MAX; nfuncs]; // min args passed
    for f in &program.functions {
        for b in &f.blocks {
            for inst in &b.insts {
                if let Inst::Call { func, args, .. } = inst {
                    if let (Some(h), Some(s)) = (
                        has_caller.get_mut(func.index()),
                        short_args.get_mut(func.index()),
                    ) {
                        *h = true;
                        *s = (*s).min(args.len());
                    }
                }
            }
        }
    }

    // Seed the implicit `Int(0)` initialization where it may be observed.
    let mut reg_init: Vec<Vec<bool>> = program
        .functions
        .iter()
        .map(|f| vec![false; f.num_regs as usize])
        .collect();
    for (fi, f) in program.functions.iter().enumerate() {
        let live = entry_live(f);
        for (ri, lat) in regs[fi].iter_mut().enumerate() {
            let is_param_pos = f.params.iter().position(|p| p.0 as usize == ri);
            let live_here = live.get(ri).copied().unwrap_or(false);
            if !live_here {
                continue;
            }
            match is_param_pos {
                // Non-parameter read-before-write: sees the frame init.
                None => {
                    *lat = lat.join(Lat::Int);
                    reg_init[fi][ri] = true;
                }
                Some(pos) => {
                    // Parameters are written by the caller — unless this is
                    // the entry function (called with no arguments), the
                    // function has no callers, or some call site passes too
                    // few arguments.
                    let covered =
                        has_caller[fi] && short_args[fi] > pos && program.entry.index() != fi;
                    if !covered {
                        *lat = lat.join(Lat::Int);
                        reg_init[fi][ri] = true;
                    }
                }
            }
        }
    }

    // Forward fixpoint over every def in the program.
    let mut changed = true;
    while changed {
        changed = false;
        let join_into = |slot: &mut Lat, v: Lat, changed: &mut bool| {
            let next = slot.join(v);
            if next != *slot {
                *slot = next;
                *changed = true;
            }
        };
        for fi in 0..nfuncs {
            for bi in 0..program.functions[fi].blocks.len() {
                // Lattice value a frame read at `a` may observe: the one
                // addressed slot when static, the join of every slot when
                // register-indexed.
                let frame_read_lat = |frames: &Vec<Vec<Lat>>, a: &bsg_ir::visa::Address| -> Lat {
                    match static_slot(a, frames[fi].len()) {
                        Some(s) => frames[fi][s],
                        None => frames[fi].iter().fold(Lat::Bot, |acc, l| acc.join(*l)),
                    }
                };
                let operand_lat = |regs: &Vec<Vec<Lat>>,
                                   globals: &Vec<Lat>,
                                   frames: &Vec<Vec<Lat>>,
                                   op: &Operand|
                 -> Lat {
                    match op {
                        Operand::Reg(r) => regs[fi].get(r.0 as usize).copied().unwrap_or(Lat::Top),
                        Operand::ImmInt(_) => Lat::Int,
                        Operand::ImmFloat(_) => Lat::Float,
                        Operand::Mem(a) => match a.base {
                            MemBase::Global(g) => {
                                globals.get(g.index()).copied().unwrap_or(Lat::Top)
                            }
                            MemBase::Frame => frame_read_lat(frames, a),
                        },
                    }
                };
                for ii in 0..program.functions[fi].blocks[bi].insts.len() {
                    let inst = &program.functions[fi].blocks[bi].insts[ii];
                    match inst {
                        Inst::Bin { op, ty, dst, .. } => {
                            let v = bin_result(*op, *ty);
                            join_into(&mut regs[fi][dst.0 as usize], v, &mut changed);
                        }
                        Inst::Un { op, ty, dst, .. } => {
                            let v = un_result(*op, *ty);
                            join_into(&mut regs[fi][dst.0 as usize], v, &mut changed);
                        }
                        Inst::Mov { dst, src } => {
                            let v = operand_lat(&regs, &globals, &frames, src);
                            join_into(&mut regs[fi][dst.0 as usize], v, &mut changed);
                        }
                        Inst::Load { dst, addr, .. } => {
                            let v = match addr.base {
                                MemBase::Global(g) => {
                                    globals.get(g.index()).copied().unwrap_or(Lat::Top)
                                }
                                MemBase::Frame => frame_read_lat(&frames, addr),
                            };
                            join_into(&mut regs[fi][dst.0 as usize], v, &mut changed);
                        }
                        Inst::Store { src, addr, .. } => {
                            let v = operand_lat(&regs, &globals, &frames, src);
                            match addr.base {
                                MemBase::Global(g) => {
                                    if let Some(slot) = globals.get_mut(g.index()) {
                                        join_into(slot, v, &mut changed);
                                    }
                                }
                                MemBase::Frame => {
                                    // A static store reaches exactly one
                                    // slot; a dynamic store may reach any.
                                    match static_slot(addr, frames[fi].len()) {
                                        Some(s) => {
                                            join_into(&mut frames[fi][s], v, &mut changed);
                                        }
                                        None => {
                                            for s in 0..frames[fi].len() {
                                                join_into(&mut frames[fi][s], v, &mut changed);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        Inst::Call { func, args, dst } => {
                            let ci = func.index();
                            if ci < nfuncs {
                                let params = program.functions[ci].params.clone();
                                for (i, p) in params.iter().enumerate() {
                                    let v = match args.get(i) {
                                        Some(a) => operand_lat(&regs, &globals, &frames, a),
                                        None => continue, // seeded via short_args
                                    };
                                    if let Some(slot) = regs[ci].get_mut(p.0 as usize) {
                                        join_into(slot, v, &mut changed);
                                    }
                                }
                                if let Some(d) = dst {
                                    let v = rets[ci];
                                    join_into(&mut regs[fi][d.0 as usize], v, &mut changed);
                                }
                            } else if let Some(d) = dst {
                                join_into(&mut regs[fi][d.0 as usize], Lat::Top, &mut changed);
                            }
                        }
                        Inst::Print { .. } | Inst::Nop => {}
                    }
                }
                if let Terminator::Return(Some(op)) = &program.functions[fi].blocks[bi].term {
                    let v = operand_lat(&regs, &globals, &frames, op);
                    join_into(&mut rets[fi], v, &mut changed);
                }
            }
        }
    }

    TypeInfo {
        regs: regs
            .into_iter()
            .map(|f| f.into_iter().map(Lat::bank).collect())
            .collect(),
        frame_slots: frames
            .into_iter()
            .map(|f| {
                f.into_iter()
                    .map(|lat| match lat {
                        // `Bot` = never read (any read joins either the
                        // seeded init or a store): the int bank's 0 matches
                        // the `Int(0)` init, so the choice is unobservable.
                        Lat::Bot | Lat::Int => RegBank::Int,
                        Lat::Float => RegBank::Float,
                        Lat::Top => RegBank::Tagged,
                    })
                    .collect()
            })
            .collect(),
        reg_init,
        slot_init,
    }
}

/// Test/compat shim: just the register banks.
#[cfg(test)]
fn reg_banks(program: &Program) -> Vec<Vec<RegBank>> {
    infer(program).regs
}

/// Test shim: the per-slot frame banks of function 0.
#[cfg(test)]
fn frame_banks(program: &Program) -> Vec<RegBank> {
    infer(program).frame_slots.swap_remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_ir::program::{Function, Global};
    use bsg_ir::types::FuncId;
    use bsg_ir::visa::Address;

    #[test]
    fn int_loop_registers_are_int_banked() {
        // s = 0; i = 0; while (i < 10) { s += i; i += 1 }
        let mut p = Program::new();
        let mut f = Function::new("main");
        let s = f.fresh_reg();
        let i = f.fresh_reg();
        let c = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Mov {
                dst: s,
                src: Operand::ImmInt(0),
            },
            Inst::Mov {
                dst: i,
                src: Operand::ImmInt(0),
            },
            Inst::Bin {
                op: BinOp::Lt,
                ty: Ty::Int,
                dst: c,
                lhs: i.into(),
                rhs: Operand::ImmInt(10),
            },
        ];
        f.blocks[0].term = Terminator::Return(Some(s.into()));
        p.add_function(f);
        let banks = reg_banks(&p);
        assert_eq!(banks[0], vec![RegBank::Int, RegBank::Int, RegBank::Int]);
    }

    #[test]
    fn float_arithmetic_registers_are_float_banked() {
        let mut p = Program::new();
        let mut f = Function::new("main");
        let x = f.fresh_reg();
        let y = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Mov {
                dst: x,
                src: Operand::ImmFloat(1.5),
            },
            Inst::Bin {
                op: BinOp::Mul,
                ty: Ty::Float,
                dst: y,
                lhs: x.into(),
                rhs: Operand::ImmFloat(2.0),
            },
        ];
        f.blocks[0].term = Terminator::Return(Some(y.into()));
        p.add_function(f);
        let banks = reg_banks(&p);
        assert_eq!(banks[0], vec![RegBank::Float, RegBank::Float]);
    }

    #[test]
    fn mixed_writes_fall_back_to_tagged() {
        let mut p = Program::new();
        let mut f = Function::new("main");
        let x = f.fresh_reg();
        let b1 = f.add_block();
        f.blocks[0].insts = vec![Inst::Mov {
            dst: x,
            src: Operand::ImmFloat(1.0),
        }];
        f.blocks[0].term = Terminator::Jump(b1);
        f.blocks[b1.index()].insts = vec![Inst::Mov {
            dst: x,
            src: Operand::ImmInt(1),
        }];
        f.blocks[b1.index()].term = Terminator::Return(Some(x.into()));
        p.add_function(f);
        assert_eq!(reg_banks(&p)[0], vec![RegBank::Tagged]);
    }

    #[test]
    fn read_before_write_of_a_float_register_is_tagged() {
        // x is read (returned) along a path where only the implicit Int(0)
        // init reaches it, but a float is written on the other path.
        let mut p = Program::new();
        let mut f = Function::new("main");
        let c = f.fresh_reg();
        let x = f.fresh_reg();
        let wr = f.add_block();
        let out = f.add_block();
        f.blocks[0].insts = vec![Inst::Mov {
            dst: c,
            src: Operand::ImmInt(0),
        }];
        f.blocks[0].term = Terminator::Branch {
            cond: c,
            taken: wr,
            not_taken: out,
        };
        f.blocks[wr.index()].insts = vec![Inst::Mov {
            dst: x,
            src: Operand::ImmFloat(2.5),
        }];
        f.blocks[wr.index()].term = Terminator::Jump(out);
        f.blocks[out.index()].term = Terminator::Return(Some(x.into()));
        p.add_function(f);
        assert_eq!(reg_banks(&p)[0][x.0 as usize], RegBank::Tagged);
    }

    #[test]
    fn loads_from_an_int_global_stay_int_banked() {
        let mut p = Program::new();
        let g = p.add_global(Global::zeroed("g", 8));
        let mut f = Function::new("main");
        let v = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Store {
                src: Operand::ImmInt(3),
                addr: Address::global(g, 0),
                ty: Ty::Int,
            },
            Inst::Load {
                dst: v,
                addr: Address::global(g, 0),
                ty: Ty::Int,
            },
        ];
        f.blocks[0].term = Terminator::Return(Some(v.into()));
        p.add_function(f);
        assert_eq!(reg_banks(&p)[0], vec![RegBank::Int]);
    }

    #[test]
    fn a_float_store_poisons_the_global_region() {
        let mut p = Program::new();
        let g = p.add_global(Global::zeroed("g", 8));
        let mut f = Function::new("main");
        let v = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Store {
                src: Operand::ImmFloat(1.5),
                addr: Address::global(g, 3),
                ty: Ty::Float,
            },
            Inst::Load {
                dst: v,
                addr: Address::global(g, 0),
                ty: Ty::Int,
            },
        ];
        f.blocks[0].term = Terminator::Return(Some(v.into()));
        p.add_function(f);
        // Int(0) init joined with Float store -> Top -> tagged load dst.
        assert_eq!(reg_banks(&p)[0], vec![RegBank::Tagged]);
    }

    #[test]
    fn call_results_and_params_flow_across_functions() {
        // helper(k) { return k + 1 }  main { r = helper(2); return r }
        let mut p = Program::new();
        let mut main = Function::new("main");
        let r = main.fresh_reg();
        main.blocks[0].insts = vec![Inst::Call {
            func: FuncId(1),
            args: vec![Operand::ImmInt(2)],
            dst: Some(r),
        }];
        main.blocks[0].term = Terminator::Return(Some(r.into()));
        p.add_function(main);
        let mut helper = Function::new("helper");
        let k = helper.fresh_reg();
        let t = helper.fresh_reg();
        helper.params = vec![k];
        helper.blocks[0].insts = vec![Inst::Bin {
            op: BinOp::Add,
            ty: Ty::Int,
            dst: t,
            lhs: k.into(),
            rhs: Operand::ImmInt(1),
        }];
        helper.blocks[0].term = Terminator::Return(Some(t.into()));
        p.add_function(helper);
        let banks = reg_banks(&p);
        assert_eq!(banks[1], vec![RegBank::Int, RegBank::Int]);
        assert_eq!(banks[0], vec![RegBank::Int]);
    }

    #[test]
    fn float_returning_call_dst_is_tagged_for_retention() {
        // helper() { return 1.5 }  main { r = helper(); return r }
        // The callee may abort (budget/depth) leaving r at its Int(0) init,
        // so r cannot live in the float bank.
        let mut p = Program::new();
        let mut main = Function::new("main");
        let r = main.fresh_reg();
        main.blocks[0].insts = vec![Inst::Call {
            func: FuncId(1),
            args: vec![],
            dst: Some(r),
        }];
        main.blocks[0].term = Terminator::Return(Some(r.into()));
        p.add_function(main);
        let mut helper = Function::new("helper");
        helper.blocks[0].term = Terminator::Return(Some(Operand::ImmFloat(1.5)));
        p.add_function(helper);
        assert_eq!(reg_banks(&p)[0], vec![RegBank::Tagged]);
    }

    #[test]
    fn stored_first_float_slot_untags_per_slot() {
        // frame[0] = 2.5; x = frame[0] — the classic -O0 float local.  The
        // slot is always written before read, so the Int(0) init is
        // unobservable and the slot (and the load's destination) untag.
        let mut p = Program::new();
        let mut f = Function::new("main");
        f.frame_words = 2;
        let x = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Store {
                src: Operand::ImmFloat(2.5),
                addr: Address::frame(0),
                ty: Ty::Float,
            },
            Inst::Load {
                dst: x,
                addr: Address::frame(0),
                ty: Ty::Float,
            },
        ];
        f.blocks[0].term = Terminator::Return(Some(x.into()));
        p.add_function(f);
        assert_eq!(frame_banks(&p)[0], RegBank::Float);
        assert_eq!(reg_banks(&p)[0], vec![RegBank::Float]);
    }

    #[test]
    fn read_before_write_float_slot_stays_tagged() {
        // One path loads frame[0] before the float store reaches it: the
        // Int(0) init joins the Float store and the slot must stay tagged.
        let mut p = Program::new();
        let mut f = Function::new("main");
        f.frame_words = 1;
        let c = f.fresh_reg();
        let x = f.fresh_reg();
        let wr = f.add_block();
        let out = f.add_block();
        f.blocks[0].insts = vec![Inst::Mov {
            dst: c,
            src: Operand::ImmInt(0),
        }];
        f.blocks[0].term = Terminator::Branch {
            cond: c,
            taken: wr,
            not_taken: out,
        };
        f.blocks[wr.index()].insts = vec![Inst::Store {
            src: Operand::ImmFloat(1.5),
            addr: Address::frame(0),
            ty: Ty::Float,
        }];
        f.blocks[wr.index()].term = Terminator::Jump(out);
        f.blocks[out.index()].insts = vec![Inst::Load {
            dst: x,
            addr: Address::frame(0),
            ty: Ty::Float,
        }];
        f.blocks[out.index()].term = Terminator::Return(Some(x.into()));
        p.add_function(f);
        assert_eq!(frame_banks(&p)[0], RegBank::Tagged);
        assert_eq!(reg_banks(&p)[0][x.0 as usize], RegBank::Tagged);
    }

    #[test]
    fn mixed_frames_type_slot_by_slot() {
        // frame[0] holds ints, frame[1] holds floats; each untags separately
        // (whole-frame granularity would tag both).
        let mut p = Program::new();
        let mut f = Function::new("main");
        f.frame_words = 2;
        let i = f.fresh_reg();
        let x = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Store {
                src: Operand::ImmInt(7),
                addr: Address::frame(0),
                ty: Ty::Int,
            },
            Inst::Store {
                src: Operand::ImmFloat(0.5),
                addr: Address::frame(1),
                ty: Ty::Float,
            },
            Inst::Load {
                dst: i,
                addr: Address::frame(0),
                ty: Ty::Int,
            },
            Inst::Load {
                dst: x,
                addr: Address::frame(1),
                ty: Ty::Float,
            },
        ];
        f.blocks[0].term = Terminator::Return(Some(i.into()));
        p.add_function(f);
        assert_eq!(frame_banks(&p), vec![RegBank::Int, RegBank::Float]);
        let regs = reg_banks(&p);
        assert_eq!(regs[0][i.0 as usize], RegBank::Int);
        assert_eq!(regs[0][x.0 as usize], RegBank::Float);
    }

    #[test]
    fn dynamic_stores_poison_every_slot() {
        // frame[r] = 1.5 may hit any slot, so the int slot written before it
        // joins Float and degrades to Tagged.
        let mut p = Program::new();
        let mut f = Function::new("main");
        f.frame_words = 2;
        let r = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Store {
                src: Operand::ImmInt(3),
                addr: Address::frame(0),
                ty: Ty::Int,
            },
            Inst::Mov {
                dst: r,
                src: Operand::ImmInt(1),
            },
            Inst::Store {
                src: Operand::ImmFloat(1.5),
                addr: Address {
                    base: MemBase::Frame,
                    offset: 0,
                    index: Some(r),
                    scale: 1,
                },
                ty: Ty::Float,
            },
        ];
        f.blocks[0].term = Terminator::Return(None);
        p.add_function(f);
        // Slot 0 joins Int (static store) with Float (dynamic store) -> Top.
        // Slot 1 is never read, so only the dynamic Float store reaches it:
        // it lands in the float bank, which no read can ever observe.
        assert_eq!(frame_banks(&p), vec![RegBank::Tagged, RegBank::Float]);
    }

    #[test]
    fn static_offsets_wrap_to_their_runtime_slot() {
        // frame_words = 2, so offset 3 wraps to slot 1 (matching the
        // executor's rem_euclid semantics): the float store lands there and
        // slot 1 untags while slot 0 stays at its Bot -> Int default.
        let mut p = Program::new();
        let mut f = Function::new("main");
        f.frame_words = 2;
        let x = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Store {
                src: Operand::ImmFloat(4.25),
                addr: Address::frame(3),
                ty: Ty::Float,
            },
            Inst::Load {
                dst: x,
                addr: Address::frame(1),
                ty: Ty::Float,
            },
        ];
        f.blocks[0].term = Terminator::Return(Some(x.into()));
        p.add_function(f);
        assert_eq!(frame_banks(&p), vec![RegBank::Int, RegBank::Float]);
    }

    #[test]
    fn entry_function_params_include_the_implicit_init() {
        // Entry "main" has a parameter (never supplied): it reads Int(0).
        let mut p = Program::new();
        let mut main = Function::new("main");
        let a = main.fresh_reg();
        main.params = vec![a];
        main.blocks[0].insts = vec![Inst::Bin {
            op: BinOp::Add,
            ty: Ty::Float,
            dst: a,
            lhs: a.into(),
            rhs: Operand::ImmFloat(1.0),
        }];
        main.blocks[0].term = Terminator::Return(Some(a.into()));
        p.add_function(main);
        // a joins Int (implicit init, read before write) and Float (the add).
        assert_eq!(reg_banks(&p)[0], vec![RegBank::Tagged]);
    }
}
