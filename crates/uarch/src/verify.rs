//! Static verification of [`ExecImage`]s: machine-checks every invariant the
//! unchecked execution core assumes.
//!
//! The executor (`crate::exec`) indexes register banks, frame-slot banks,
//! global memory and the step array without bounds checks (release builds use
//! `get_unchecked`; see the ledger tags on the two `unsafe` blocks there).
//! Decode is what establishes those invariants, and until this module existed
//! the only evidence was code review.  [`verify_image`] re-derives each
//! invariant *from the decoded image alone* — a second, independent
//! implementation that never trusts decode — and fails with a structured
//! [`VerifyError`] naming the violated ledger invariant.
//!
//! The passes, in order:
//!
//! 1. **Structure** ([`invariant::STEP_STRUCTURE`]): the per-function block
//!    tables partition the step array, dense block indices are consistent
//!    with the image-wide tables, bank tables have the lengths the executor
//!    sizes its banks to, and a fused image's unfused twin agrees on every
//!    table the two share.
//! 2. **Per-step bounds and banks** ([`invariant::REG_BOUNDS`],
//!    [`invariant::REG_BANK`], [`invariant::GLOBAL_BOUNDS`],
//!    [`invariant::FRAME_SLOT_BOUNDS`], [`invariant::FRAME_SLOT_BANK`],
//!    [`invariant::EDGE_TARGET`], [`invariant::CALL_SITE`]): every register,
//!    slot, global and control-flow index in every step of **both** images —
//!    fused variants are checked through their decomposition, so a fused arm
//!    can never reference anything its constituents could not.
//! 3. **Fused replay** ([`invariant::FUSED_REPLAY`],
//!    [`invariant::TERMINATOR_PLACEMENT`]): a symbolic walk of every block of
//!    the fused image, decomposing each superinstruction into its constituent
//!    steps and requiring them to be semantically identical (`f64` compared
//!    bit-for-bit) to the unfused twin's steps at the same pcs.  Because the
//!    executor charges budget, checks halt and emits observer events *per
//!    constituent*, decomposition equality is exactly the
//!    budget-decrement/halt/event-replay equivalence of the fused arm and its
//!    unfused sequence.  Terminator-absorbing shapes must end their block;
//!    non-absorbing shapes must not cross it.
//! 4. **Type dataflow** ([`invariant::REG_BANK`],
//!    [`invariant::FRAME_SLOT_BANK`]): an independent abstract interpretation
//!    over the unfused steps on the `{Bot < Int, Float < Top}` lattice
//!    (shared with `crate::typing`, so the transfer functions cannot drift),
//!    proving every untagged `i64` bank assignment covers only proven-int
//!    values and every `f64` bank only proven-float values, on every path.
//! 5. **Zero-fill elision** ([`invariant::ZERO_FILL_ELISION`]): the backward
//!    liveness facts that let `FramePool::acquire` skip zero-filling are
//!    re-derived; any register or slot that may observe its initial value
//!    must be covered by the function's zero-fill flags.
//!
//! The verifier runs at decode time only — [`ExecImage::new`] invokes it
//! under `debug_assertions` or `--cfg bsg_safe_core`, and the `bsg-verify`
//! binary sweeps the workload registry and random programs in CI — so the
//! hot execute loop never pays for it.
//!
//! The [`Corruption`] kit provides programmatic image corruptors used by the
//! mutation self-test: each corruptor breaks exactly one invariant in an
//! otherwise-valid image, and the suite asserts the verifier rejects every
//! mutant while accepting every valid image (zero false positives).

use crate::image::{
    EdgeTarget, ExecImage, FloatAlu, FloatSrc, FrameSlot, FuncImage, GlobalMem, IntAlu, IntSrc,
    Step,
};
use crate::typing::{bin_result, un_result, Lat, RegBank};
use bsg_ir::types::{Reg, Value};
use bsg_ir::visa::{Inst, MemBase, Operand, Terminator};
use bsg_ir::Program;
use std::collections::HashMap;
use std::fmt;

/// Named invariants of the unchecked execution core.  Every `unsafe` block in
/// the workspace cites one or more of these ids in a `// SAFETY(ledger: ...)`
/// tag, and `bsg-verify --audit-unsafe` cross-checks the citations against
/// [`checked_invariants`] — an `unsafe` block can only cite an invariant this
/// module actually proves.
pub mod invariant {
    /// Block tables partition the step array; dense indices are consistent.
    pub const STEP_STRUCTURE: &str = "step-structure";
    /// Terminators sit exactly at `term_pc` slots; bodies hold none.
    pub const TERMINATOR_PLACEMENT: &str = "terminator-placement";
    /// Every jump/branch target resolves to a real block's first step, with
    /// consistent dense block/edge indices.
    pub const EDGE_TARGET: &str = "edge-target";
    /// Every register index is `< num_regs` of its function.
    pub const REG_BOUNDS: &str = "reg-bounds";
    /// Untagged bank accesses agree with the per-function bank tables, and
    /// the bank tables agree with an independent type inference.
    pub const REG_BANK: &str = "reg-bank";
    /// Every global reference stays within its array's flattened slice.
    pub const GLOBAL_BOUNDS: &str = "global-bounds";
    /// Every statically-resolved frame slot is `< frame_words.max(1)`.
    pub const FRAME_SLOT_BOUNDS: &str = "frame-slot-bounds";
    /// Untagged slot accesses agree with the per-slot bank tables, and the
    /// tables agree with an independent per-slot type inference.
    pub const FRAME_SLOT_BANK: &str = "frame-slot-bank";
    /// Any register/slot that may observe its initial value is covered by
    /// the function's zero-fill flags (`FramePool::acquire` elides the rest).
    pub const ZERO_FILL_ELISION: &str = "zero-fill-elision";
    /// Call targets index the function table; argument ranges index the pool.
    pub const CALL_SITE: &str = "call-site";
    /// Every fused superinstruction decomposes into constituents semantically
    /// identical to the unfused twin's steps (budget/halt/event replay).
    pub const FUSED_REPLAY: &str = "fused-replay";
}

/// All invariant ids [`verify_image`] actually checks, in pass order.
/// `bsg-verify --audit-unsafe` rejects any `SAFETY(ledger: ...)` citation
/// outside this list.
pub fn checked_invariants() -> &'static [&'static str] {
    &[
        invariant::STEP_STRUCTURE,
        invariant::TERMINATOR_PLACEMENT,
        invariant::EDGE_TARGET,
        invariant::REG_BOUNDS,
        invariant::REG_BANK,
        invariant::GLOBAL_BOUNDS,
        invariant::FRAME_SLOT_BOUNDS,
        invariant::FRAME_SLOT_BANK,
        invariant::ZERO_FILL_ELISION,
        invariant::CALL_SITE,
        invariant::FUSED_REPLAY,
    ]
}

/// A violated invariant: which one, where, and why.
#[derive(Debug, Clone)]
pub struct VerifyError {
    /// The violated ledger invariant (one of [`checked_invariants`]).
    pub invariant: &'static str,
    /// Function index the violation was found in, when attributable.
    pub func: Option<u32>,
    /// Step index the violation was found at, when attributable.
    pub pc: Option<u32>,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant `{}` violated", self.invariant)?;
        if let Some(fi) = self.func {
            write!(f, " in fn{fi}")?;
        }
        if let Some(pc) = self.pc {
            write!(f, " at pc {pc}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

impl std::error::Error for VerifyError {}

/// Summary of a successful verification.
#[derive(Debug, Clone, Copy)]
pub struct VerifyReport {
    /// Steps checked (fused image; the twin doubles this).
    pub steps: usize,
    /// Functions checked.
    pub funcs: usize,
    /// Fused superinstructions replayed against the twin.
    pub fused: usize,
}

fn fail(
    invariant: &'static str,
    func: Option<u32>,
    pc: Option<u32>,
    detail: String,
) -> VerifyError {
    VerifyError {
        invariant,
        func,
        pc,
        detail,
    }
}

/// Panics with a decode-time diagnostic when `program` references an index
/// the executor would have to bounds-check at run time.  This is the
/// program-level (pre-decode) half of validation — the single source of truth
/// `image::build` delegates to; [`verify_image`] then re-proves the same
/// facts (and more) over the decoded image itself.
pub(crate) fn validate_program(program: &Program) {
    let nfuncs = program.functions.len();
    let nglobals = program.globals.len();
    assert!(
        program.entry.index() < nfuncs,
        "entry function {} out of range ({nfuncs} functions)",
        program.entry
    );
    for (fi, f) in program.functions.iter().enumerate() {
        let nregs = f.num_regs;
        let check_reg = |r: Reg, what: &str| {
            assert!(
                r.0 < nregs,
                "function {fi} ({}): {what} register {r} out of range (num_regs = {nregs})",
                f.name
            );
        };
        for p in &f.params {
            check_reg(*p, "parameter");
        }
        assert!(
            f.entry.index() < f.blocks.len(),
            "function {fi} ({}): entry block {} out of range",
            f.name,
            f.entry
        );
        let check_addr = |a: &bsg_ir::visa::Address| {
            if let MemBase::Global(g) = a.base {
                assert!(
                    g.index() < nglobals,
                    "function {fi} ({}): global {g} out of range",
                    f.name
                );
                assert!(
                    program.globals[g.index()].elems > 0,
                    "function {fi} ({}): memory access to zero-length global {g}",
                    f.name
                );
            }
        };
        let check_operand = |op: &Operand| {
            if let Operand::Mem(a) = op {
                check_addr(a);
            }
        };
        for b in &f.blocks {
            for inst in &b.insts {
                if let Some(d) = inst.def() {
                    check_reg(d, "destination");
                }
                for u in inst.uses() {
                    check_reg(u, "source");
                }
                match inst {
                    Inst::Bin { lhs, rhs, .. } => {
                        check_operand(lhs);
                        check_operand(rhs);
                    }
                    Inst::Un { src, .. } | Inst::Mov { src, .. } | Inst::Print { src } => {
                        check_operand(src)
                    }
                    Inst::Load { addr, .. } => check_addr(addr),
                    Inst::Store { src, addr, .. } => {
                        check_operand(src);
                        check_addr(addr);
                    }
                    Inst::Call { func, args, .. } => {
                        assert!(
                            func.index() < nfuncs,
                            "function {fi} ({}): call target {func} out of range",
                            f.name
                        );
                        for a in args {
                            check_operand(a);
                        }
                    }
                    Inst::Nop => {}
                }
            }
            for u in b.term.uses() {
                check_reg(u, "terminator source");
            }
            if let Terminator::Return(Some(op)) = &b.term {
                check_operand(op);
            }
            for succ in b.term.successors() {
                assert!(
                    succ.index() < f.blocks.len(),
                    "function {fi} ({}): branch target {succ} out of range",
                    f.name
                );
            }
        }
    }
}

/// Statically proves every invariant the unchecked execution core assumes
/// about `image` (see the module docs for the pass list).  Returns a summary
/// on success; the first violated invariant otherwise.  Cost is linear-ish in
/// image size (the dataflow fixpoint converges in a few sweeps) and is paid
/// at decode/CI time only — never on the execute loop.
pub fn verify_image(image: &ExecImage) -> Result<VerifyReport, VerifyError> {
    let base = image.unfused_twin();
    let has_twin = !std::ptr::eq(image, base);

    check_structure(image)?;
    let mut replayed = 0;
    if has_twin {
        check_structure(base)?;
        check_twin_match(image, base)?;
        check_shape(base, false)?;
        check_shape(image, true)?;
        replayed = check_replay(image, base)?;
    } else {
        // An image without a twin must be entirely unfused: the executor's
        // fused arms assume a twin exists for observer-specialized dispatch,
        // and the replay proof needs it.
        check_shape(image, false)?;
    }

    let checker = StepChecker::new(image);
    checker.check_all()?;
    if has_twin {
        StepChecker::new(base).check_all()?;
    }

    check_dataflow(base)?;

    // The replay walk independently counted the fused superinstructions it
    // proved; the image's own tally must agree (a drift here would mean the
    // dispatch loop and the fusion pass disagree about what is fused).
    if replayed != image.num_fused() {
        return Err(fail(
            invariant::FUSED_REPLAY,
            None,
            None,
            format!(
                "replay proved {replayed} fused steps but the image reports {}",
                image.num_fused()
            ),
        ));
    }

    Ok(VerifyReport {
        steps: image.steps.len(),
        funcs: image.funcs.len(),
        fused: replayed,
    })
}

fn is_terminator(step: &Step) -> bool {
    matches!(
        step,
        Step::Jump(_) | Step::Branch { .. } | Step::Return { .. }
    )
}

// ---------------------------------------------------------------------------
// Pass 1: structure.
// ---------------------------------------------------------------------------

fn check_structure(img: &ExecImage) -> Result<(), VerifyError> {
    use invariant::*;
    let nsteps = img.steps.len();
    let e = |d: String| fail(STEP_STRUCTURE, None, None, d);
    if img.num_sites() != nsteps {
        return Err(e(format!(
            "site table length {} != step count {nsteps}",
            img.num_sites()
        )));
    }
    if (img.entry as usize) >= img.funcs.len() {
        return Err(e(format!(
            "entry function {} out of range ({} functions)",
            img.entry,
            img.funcs.len()
        )));
    }
    let mut next_pc: u32 = 0;
    let mut next_block: u32 = 0;
    for (fi, f) in img.funcs.iter().enumerate() {
        let fe = |d: String| fail(STEP_STRUCTURE, Some(fi as u32), None, d);
        let nb = f.block_pc.len();
        if nb == 0 || f.term_pc.len() != nb {
            return Err(fe(format!(
                "block tables malformed ({nb} starts, {} terminators)",
                f.term_pc.len()
            )));
        }
        if f.block_idx_base != next_block {
            return Err(fe(format!(
                "block_idx_base {} != running block count {next_block}",
                f.block_idx_base
            )));
        }
        if f.block_idx_base as usize + nb > img.num_blocks() {
            return Err(fe(format!(
                "dense block indices {}..{} exceed block-key table ({})",
                f.block_idx_base,
                f.block_idx_base as usize + nb,
                img.num_blocks()
            )));
        }
        for b in 0..nb {
            if f.block_pc[b] != next_pc {
                return Err(fe(format!(
                    "block {b} starts at pc {} (expected {next_pc})",
                    f.block_pc[b]
                )));
            }
            if f.term_pc[b] < f.block_pc[b] || (f.term_pc[b] as usize) >= nsteps {
                return Err(fe(format!(
                    "block {b} terminator pc {} outside [{}, {nsteps})",
                    f.term_pc[b], f.block_pc[b]
                )));
            }
            next_pc = f.term_pc[b] + 1;
            let key = img.block_key(f.block_idx_base + b as u32);
            if key.0.index() != fi || key.1.index() != b {
                return Err(fe(format!(
                    "block key for dense index {} is ({}, {}), expected (fn{fi}, bb{b})",
                    f.block_idx_base + b as u32,
                    key.0,
                    key.1
                )));
            }
        }
        if f.entry_block.index() >= nb {
            return Err(fe(format!("entry block {} out of range", f.entry_block)));
        }
        if f.entry_pc != f.block_pc[f.entry_block.index()]
            || f.entry_block_idx != f.block_idx_base + f.entry_block.0
        {
            return Err(fe("entry pc/block index inconsistent".into()));
        }
        if f.banks.len() != f.num_regs as usize {
            return Err(fail(
                REG_BOUNDS,
                Some(fi as u32),
                None,
                format!(
                    "bank table length {} != num_regs {}",
                    f.banks.len(),
                    f.num_regs
                ),
            ));
        }
        if img.max_regs() < f.num_regs {
            return Err(fe(format!(
                "max_regs {} < num_regs {} (register pools undersized)",
                img.max_regs(),
                f.num_regs
            )));
        }
        for p in &f.params {
            if p.0 >= f.num_regs {
                return Err(fail(
                    REG_BOUNDS,
                    Some(fi as u32),
                    None,
                    format!("parameter register {p} out of range"),
                ));
            }
        }
        if f.frame.nslots == 0 || f.slot_banks.len() != f.frame.nslots as usize {
            return Err(fail(
                FRAME_SLOT_BOUNDS,
                Some(fi as u32),
                None,
                format!(
                    "slot-bank table length {} != nslots {} (must be >= 1)",
                    f.slot_banks.len(),
                    f.frame.nslots
                ),
            ));
        }
        for (si, bank) in f.slot_banks.iter().enumerate() {
            let covered = match bank {
                RegBank::Int => f.frame.has_int,
                RegBank::Float => f.frame.has_float,
                RegBank::Tagged => f.frame.has_tagged,
            };
            if !covered {
                return Err(fail(
                    FRAME_SLOT_BOUNDS,
                    Some(fi as u32),
                    None,
                    format!(
                        "slot {si} lives in {bank:?} bank but frame layout omits it (bank unsized)"
                    ),
                ));
            }
        }
        next_block += nb as u32;
    }
    if next_pc as usize != nsteps {
        return Err(e(format!(
            "blocks cover {next_pc} steps, image has {nsteps}"
        )));
    }
    if next_block as usize != img.num_blocks() {
        return Err(e(format!(
            "functions declare {next_block} blocks, image has {}",
            img.num_blocks()
        )));
    }
    Ok(())
}

fn func_image_eq(a: &FuncImage, b: &FuncImage) -> bool {
    a.entry_pc == b.entry_pc
        && a.entry_block == b.entry_block
        && a.entry_block_idx == b.entry_block_idx
        && a.block_idx_base == b.block_idx_base
        && a.block_pc == b.block_pc
        && a.term_pc == b.term_pc
        && a.num_regs == b.num_regs
        && a.params == b.params
        && a.banks == b.banks
        && a.slot_banks == b.slot_banks
        && frame_layout_eq(a, b)
}

fn frame_layout_eq(a: &FuncImage, b: &FuncImage) -> bool {
    let (x, y) = (&a.frame, &b.frame);
    x.nslots == y.nslots
        && x.has_int == y.has_int
        && x.has_float == y.has_float
        && x.has_tagged == y.has_tagged
        && x.zero_reg_ints == y.zero_reg_ints
        && x.zero_reg_tagged == y.zero_reg_tagged
        && x.zero_slots_int == y.zero_slots_int
        && x.zero_slots_tagged == y.zero_slots_tagged
}

fn value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => false,
    }
}

fn operand_eq(a: &Operand, b: &Operand) -> bool {
    match (a, b) {
        (Operand::Reg(x), Operand::Reg(y)) => x == y,
        (Operand::ImmInt(x), Operand::ImmInt(y)) => x == y,
        (Operand::ImmFloat(x), Operand::ImmFloat(y)) => x.to_bits() == y.to_bits(),
        (Operand::Mem(x), Operand::Mem(y)) => x == y,
        _ => false,
    }
}

fn check_twin_match(img: &ExecImage, base: &ExecImage) -> Result<(), VerifyError> {
    let e = |d: String| fail(invariant::STEP_STRUCTURE, None, None, d);
    if !std::ptr::eq(base.unfused_twin(), base) {
        return Err(e("unfused twin itself carries a twin".into()));
    }
    if img.steps.len() != base.steps.len() {
        return Err(e(format!(
            "fused image has {} steps, twin has {}",
            img.steps.len(),
            base.steps.len()
        )));
    }
    if img.entry != base.entry || img.funcs.len() != base.funcs.len() {
        return Err(e("entry/function tables differ between twins".into()));
    }
    for (fi, (a, b)) in img.funcs.iter().zip(&base.funcs).enumerate() {
        if !func_image_eq(a, b) {
            return Err(fail(
                invariant::STEP_STRUCTURE,
                Some(fi as u32),
                None,
                "function image differs between fused image and twin".into(),
            ));
        }
    }
    if img.global_bounds != base.global_bounds
        || img.layout.global_bases != base.layout.global_bases
        || img.layout.frame_base != base.layout.frame_base
        || img.layout.frame_stride != base.layout.frame_stride
    {
        return Err(e("global layout differs between twins".into()));
    }
    if img.initial_globals.len() != base.initial_globals.len()
        || !img
            .initial_globals
            .iter()
            .zip(&base.initial_globals)
            .all(|(a, b)| value_eq(a, b))
    {
        return Err(e("initial global values differ between twins".into()));
    }
    if img.call_args.len() != base.call_args.len()
        || !img
            .call_args
            .iter()
            .zip(&base.call_args)
            .all(|(a, b)| operand_eq(a, b))
    {
        return Err(e("call argument pools differ between twins".into()));
    }
    Ok(())
}

/// Terminator placement + footprint discipline.  `fused_allowed` is false for
/// unfused images (every step must cover exactly one slot).
fn check_shape(img: &ExecImage, fused_allowed: bool) -> Result<(), VerifyError> {
    for (fi, f) in img.funcs.iter().enumerate() {
        for b in 0..f.block_pc.len() {
            let start = f.block_pc[b] as usize;
            let term = f.term_pc[b] as usize;
            for pc in start..=term {
                let step = &img.steps[pc];
                if pc == term {
                    if !is_terminator(step) {
                        return Err(fail(
                            invariant::TERMINATOR_PLACEMENT,
                            Some(fi as u32),
                            Some(pc as u32),
                            format!("terminator slot of block {b} holds {}", step.variant_name()),
                        ));
                    }
                } else if is_terminator(step) {
                    return Err(fail(
                        invariant::TERMINATOR_PLACEMENT,
                        Some(fi as u32),
                        Some(pc as u32),
                        format!("body slot of block {b} holds {}", step.variant_name()),
                    ));
                } else if !fused_allowed && step.footprint() != Some(1) {
                    return Err(fail(
                        invariant::STEP_STRUCTURE,
                        Some(fi as u32),
                        Some(pc as u32),
                        format!("fused step {} in unfused image", step.variant_name()),
                    ));
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Pass 2: fused replay (decomposition + semantic equality with the twin).
// ---------------------------------------------------------------------------

/// The constituent steps a fused superinstruction replays, in executed order,
/// plus whether the shape absorbs its block's terminator.  `None` for
/// non-fused steps.  This table is the executable specification of every
/// fused arm: the executor charges budget, checks halt and emits observer
/// events once per constituent, so proving the constituents identical to the
/// unfused twin's steps proves the replay protocol equal.
pub(crate) fn decompose(step: &Step) -> Option<(Vec<Step>, bool)> {
    let absorbs = step.footprint().is_none();
    let parts = match step {
        Step::IntPair(a, b) => vec![Step::IntAlu(*a), Step::IntAlu(*b)],
        Step::IntCmpBr {
            a,
            cond,
            taken,
            not_taken,
        } => vec![
            Step::IntAlu(*a),
            Step::Branch {
                cond: *cond,
                bank: RegBank::Int,
                taken: *taken,
                not_taken: *not_taken,
            },
        ],
        Step::IntAluJump { a, target } => vec![Step::IntAlu(*a), Step::Jump(*target)],
        Step::IntPairJump { a, b, target } => {
            vec![Step::IntAlu(*a), Step::IntAlu(*b), Step::Jump(*target)]
        }
        Step::LoadGIntAlu { dst, mem, b } => vec![
            Step::LoadGlobal {
                dst: *dst,
                bank: RegBank::Int,
                mem: *mem,
            },
            Step::IntAlu(*b),
        ],
        Step::IntAluLoadG { a, dst, mem } => vec![
            Step::IntAlu(*a),
            Step::LoadGlobal {
                dst: *dst,
                bank: RegBank::Int,
                mem: *mem,
            },
        ],
        Step::LoadFIntAlu { dst, s, b } => {
            vec![Step::LoadFI { dst: *dst, s: *s }, Step::IntAlu(*b)]
        }
        Step::IntAluStoreF { a, src, s } => {
            vec![Step::IntAlu(*a), Step::StoreFI { src: *src, s: *s }]
        }
        Step::LoadFAluStoreF {
            dst,
            ls,
            b,
            src,
            ss,
        } => vec![
            Step::LoadFI { dst: *dst, s: *ls },
            Step::IntAlu(*b),
            Step::StoreFI { src: *src, s: *ss },
        ],
        Step::LoadFFloatAlu { dst, s, b } => {
            vec![Step::LoadFF { dst: *dst, s: *s }, Step::FloatAlu(*b)]
        }
        Step::FloatAluStoreF { a, src, s } => {
            vec![Step::FloatAlu(*a), Step::StoreFF { src: *src, s: *s }]
        }
        Step::FloatPair(a, b) => vec![Step::FloatAlu(*a), Step::FloatAlu(*b)],
        Step::LoadFILoadG {
            dst1,
            s1,
            dst2,
            bank2,
            mem,
        } => vec![
            Step::LoadFI { dst: *dst1, s: *s1 },
            Step::LoadGlobal {
                dst: *dst2,
                bank: *bank2,
                mem: *mem,
            },
        ],
        Step::StoreFLoadF { src, ss, dst, ls } => vec![
            Step::StoreFI { src: *src, s: *ss },
            Step::LoadFI { dst: *dst, s: *ls },
        ],
        Step::LoadFIStoreG { dst, s, src, mem } => vec![
            Step::LoadFI { dst: *dst, s: *s },
            Step::StoreGlobal {
                src: *src,
                mem: *mem,
            },
        ],
        Step::FloatPairStoreF { a, b, src, s } => vec![
            Step::FloatAlu(*a),
            Step::FloatAlu(*b),
            Step::StoreFF { src: *src, s: *s },
        ],
        Step::LoadGCmpBr {
            dst,
            mem,
            a,
            cond,
            taken,
            not_taken,
        } => vec![
            Step::LoadGlobal {
                dst: *dst,
                bank: RegBank::Int,
                mem: *mem,
            },
            Step::IntAlu(*a),
            Step::Branch {
                cond: *cond,
                bank: RegBank::Int,
                taken: *taken,
                not_taken: *not_taken,
            },
        ],
        Step::LoadGFloatAlu { dst, mem, b } => vec![
            Step::LoadGlobal {
                dst: *dst,
                bank: RegBank::Float,
                mem: *mem,
            },
            Step::FloatAlu(*b),
        ],
        Step::LoadFPairI { dst1, s1, dst2, s2 } => vec![
            Step::LoadFI { dst: *dst1, s: *s1 },
            Step::LoadFI { dst: *dst2, s: *s2 },
        ],
        Step::LoadFPairF { dst1, s1, dst2, s2 } => vec![
            Step::LoadFF { dst: *dst1, s: *s1 },
            Step::LoadFF { dst: *dst2, s: *s2 },
        ],
        Step::LoadFCmpBr {
            dst,
            s,
            a,
            cond,
            taken,
            not_taken,
        } => vec![
            Step::LoadFI { dst: *dst, s: *s },
            Step::IntAlu(*a),
            Step::Branch {
                cond: *cond,
                bank: RegBank::Int,
                taken: *taken,
                not_taken: *not_taken,
            },
        ],
        Step::StoreFIJump { src, s, target } => {
            vec![Step::StoreFI { src: *src, s: *s }, Step::Jump(*target)]
        }
        Step::StoreFFJump { src, s, target } => {
            vec![Step::StoreFF { src: *src, s: *s }, Step::Jump(*target)]
        }
        Step::LoadFUnFF {
            dst,
            s,
            op,
            udst,
            usrc,
        } => vec![
            Step::LoadFF { dst: *dst, s: *s },
            Step::UnFF {
                op: *op,
                dst: *udst,
                src: *usrc,
            },
        ],
        Step::UnFFStoreF {
            op,
            udst,
            usrc,
            src,
            s,
        } => vec![
            Step::UnFF {
                op: *op,
                dst: *udst,
                src: *usrc,
            },
            Step::StoreFF { src: *src, s: *s },
        ],
        Step::LoadFUnFFStoreFF {
            dst,
            ls,
            op,
            udst,
            usrc,
            ssrc,
            ss,
        } => vec![
            Step::LoadFF { dst: *dst, s: *ls },
            Step::UnFF {
                op: *op,
                dst: *udst,
                src: *usrc,
            },
            Step::StoreFF { src: *ssrc, s: *ss },
        ],
        Step::LoadFFAluStoreFF {
            dst,
            ls,
            b,
            src,
            ss,
        } => vec![
            Step::LoadFF { dst: *dst, s: *ls },
            Step::FloatAlu(*b),
            Step::StoreFF { src: *src, s: *ss },
        ],
        _ => return None,
    };
    Some((parts, absorbs))
}

fn int_src_eq(a: &IntSrc, b: &IntSrc) -> bool {
    match (a, b) {
        (IntSrc::Reg(x), IntSrc::Reg(y)) => x == y,
        (IntSrc::Imm(x), IntSrc::Imm(y)) => x == y,
        _ => false,
    }
}

fn float_src_eq(a: &FloatSrc, b: &FloatSrc) -> bool {
    match (a, b) {
        (FloatSrc::F(x), FloatSrc::F(y)) | (FloatSrc::I(x), FloatSrc::I(y)) => x == y,
        (FloatSrc::Imm(x), FloatSrc::Imm(y)) => x.to_bits() == y.to_bits(),
        _ => false,
    }
}

fn int_alu_eq(a: &IntAlu, b: &IntAlu) -> bool {
    a.op == b.op && a.dst == b.dst && int_src_eq(&a.lhs, &b.lhs) && int_src_eq(&a.rhs, &b.rhs)
}

fn float_alu_eq(a: &FloatAlu, b: &FloatAlu) -> bool {
    a.op == b.op && a.dst == b.dst && float_src_eq(&a.lhs, &b.lhs) && float_src_eq(&a.rhs, &b.rhs)
}

fn slot_eq(a: &FrameSlot, b: &FrameSlot) -> bool {
    a.slot == b.slot && a.elem == b.elem
}

fn edge_eq(a: &EdgeTarget, b: &EdgeTarget) -> bool {
    a.pc == b.pc && a.block == b.block && a.block_idx == b.block_idx && a.edge_idx == b.edge_idx
}

fn gmem_eq(a: &GlobalMem, b: &GlobalMem) -> bool {
    a.start == b.start
        && a.len == b.len
        && a.mask == b.mask
        && a.base_byte == b.base_byte
        && a.offset == b.offset
        && a.index == b.index
        && a.index_bank == b.index_bank
        && a.scale == b.scale
}

/// Semantic equality of two **unfused** steps, with `f64` immediates compared
/// bit-for-bit (a `PartialEq` derive would make two NaN-carrying steps
/// unequal to themselves).  Any fused variant on either side is unequal.
fn step_sem_eq(a: &Step, b: &Step) -> bool {
    match (a, b) {
        (Step::IntAlu(x), Step::IntAlu(y)) => int_alu_eq(x, y),
        (Step::FloatAlu(x), Step::FloatAlu(y)) | (Step::FloatCmp(x), Step::FloatCmp(y)) => {
            float_alu_eq(x, y)
        }
        (
            Step::UnII {
                op: o1,
                dst: d1,
                src: s1,
            },
            Step::UnII {
                op: o2,
                dst: d2,
                src: s2,
            },
        )
        | (
            Step::UnFF {
                op: o1,
                dst: d1,
                src: s1,
            },
            Step::UnFF {
                op: o2,
                dst: d2,
                src: s2,
            },
        )
        | (
            Step::UnIF {
                op: o1,
                dst: d1,
                src: s1,
            },
            Step::UnIF {
                op: o2,
                dst: d2,
                src: s2,
            },
        ) => o1 == o2 && d1 == d2 && s1 == s2,
        (Step::IMovI { dst: d1, imm: i1 }, Step::IMovI { dst: d2, imm: i2 }) => {
            d1 == d2 && i1 == i2
        }
        (Step::FMovI { dst: d1, imm: i1 }, Step::FMovI { dst: d2, imm: i2 }) => {
            d1 == d2 && i1.to_bits() == i2.to_bits()
        }
        (Step::IMovRR { dst: d1, src: s1 }, Step::IMovRR { dst: d2, src: s2 })
        | (Step::FMovRR { dst: d1, src: s1 }, Step::FMovRR { dst: d2, src: s2 }) => {
            d1 == d2 && s1 == s2
        }
        (
            Step::IntBin {
                op: o1,
                dst: d1,
                lhs: l1,
                rhs: r1,
            },
            Step::IntBin {
                op: o2,
                dst: d2,
                lhs: l2,
                rhs: r2,
            },
        )
        | (
            Step::FloatBin {
                op: o1,
                dst: d1,
                lhs: l1,
                rhs: r1,
            },
            Step::FloatBin {
                op: o2,
                dst: d2,
                lhs: l2,
                rhs: r2,
            },
        ) => o1 == o2 && d1 == d2 && operand_eq(l1, l2) && operand_eq(r1, r2),
        (
            Step::Un {
                op: o1,
                ty: t1,
                dst: d1,
                src: s1,
            },
            Step::Un {
                op: o2,
                ty: t2,
                dst: d2,
                src: s2,
            },
        ) => o1 == o2 && t1 == t2 && d1 == d2 && operand_eq(s1, s2),
        (Step::Mov { dst: d1, src: s1 }, Step::Mov { dst: d2, src: s2 }) => {
            d1 == d2 && operand_eq(s1, s2)
        }
        (
            Step::LoadGlobal {
                dst: d1,
                bank: b1,
                mem: m1,
            },
            Step::LoadGlobal {
                dst: d2,
                bank: b2,
                mem: m2,
            },
        ) => d1 == d2 && b1 == b2 && gmem_eq(m1, m2),
        (Step::LoadFI { dst: d1, s: s1 }, Step::LoadFI { dst: d2, s: s2 })
        | (Step::LoadFF { dst: d1, s: s1 }, Step::LoadFF { dst: d2, s: s2 }) => {
            d1 == d2 && slot_eq(s1, s2)
        }
        (Step::StoreFI { src: x1, s: s1 }, Step::StoreFI { src: x2, s: s2 }) => {
            int_src_eq(x1, x2) && slot_eq(s1, s2)
        }
        (Step::StoreFF { src: x1, s: s1 }, Step::StoreFF { src: x2, s: s2 }) => {
            float_src_eq(x1, x2) && slot_eq(s1, s2)
        }
        (
            Step::LoadFrame {
                dst: d1,
                bank: b1,
                mem: m1,
            },
            Step::LoadFrame {
                dst: d2,
                bank: b2,
                mem: m2,
            },
        ) => {
            d1 == d2
                && b1 == b2
                && m1.offset == m2.offset
                && m1.index == m2.index
                && m1.index_bank == m2.index_bank
                && m1.scale == m2.scale
        }
        (Step::StoreGlobal { src: x1, mem: m1 }, Step::StoreGlobal { src: x2, mem: m2 }) => {
            operand_eq(x1, x2) && gmem_eq(m1, m2)
        }
        (Step::StoreFrame { src: x1, mem: m1 }, Step::StoreFrame { src: x2, mem: m2 }) => {
            operand_eq(x1, x2)
                && m1.offset == m2.offset
                && m1.index == m2.index
                && m1.index_bank == m2.index_bank
                && m1.scale == m2.scale
        }
        (
            Step::Call {
                func: f1,
                args_start: s1,
                args_len: l1,
                dst: d1,
            },
            Step::Call {
                func: f2,
                args_start: s2,
                args_len: l2,
                dst: d2,
            },
        ) => f1 == f2 && s1 == s2 && l1 == l2 && d1 == d2,
        (Step::Print { src: s1 }, Step::Print { src: s2 }) => operand_eq(s1, s2),
        (Step::Nop, Step::Nop) => true,
        (Step::Jump(t1), Step::Jump(t2)) => edge_eq(t1, t2),
        (
            Step::Branch {
                cond: c1,
                bank: b1,
                taken: t1,
                not_taken: n1,
            },
            Step::Branch {
                cond: c2,
                bank: b2,
                taken: t2,
                not_taken: n2,
            },
        ) => c1 == c2 && b1 == b2 && edge_eq(t1, t2) && edge_eq(n1, n2),
        (Step::Return { value: v1 }, Step::Return { value: v2 }) => match (v1, v2) {
            (None, None) => true,
            (Some(x), Some(y)) => operand_eq(x, y),
            _ => false,
        },
        _ => false,
    }
}

/// Walks every block of the fused image, decomposing each superinstruction
/// and requiring its constituents to be semantically identical to the twin's
/// steps at the same pcs.  Returns the number of fused steps replayed.
fn check_replay(img: &ExecImage, base: &ExecImage) -> Result<usize, VerifyError> {
    let mut replayed = 0usize;
    for (fi, f) in img.funcs.iter().enumerate() {
        for b in 0..f.block_pc.len() {
            let start = f.block_pc[b] as usize;
            let term = f.term_pc[b] as usize;
            let mut i = start;
            loop {
                if i > term {
                    return Err(fail(
                        invariant::FUSED_REPLAY,
                        Some(fi as u32),
                        Some(i as u32),
                        format!("dispatch walk overran block {b} (terminator at {term})"),
                    ));
                }
                let step = &img.steps[i];
                if i == term {
                    if !step_sem_eq(step, &base.steps[i]) {
                        return Err(fail(
                            invariant::FUSED_REPLAY,
                            Some(fi as u32),
                            Some(i as u32),
                            format!(
                                "terminator {} differs from twin's {}",
                                step.variant_name(),
                                base.steps[i].variant_name()
                            ),
                        ));
                    }
                    break;
                }
                match decompose(step) {
                    None => {
                        if !step_sem_eq(step, &base.steps[i]) {
                            return Err(fail(
                                invariant::FUSED_REPLAY,
                                Some(fi as u32),
                                Some(i as u32),
                                format!(
                                    "step {} differs from twin's {}",
                                    step.variant_name(),
                                    base.steps[i].variant_name()
                                ),
                            ));
                        }
                        i += 1;
                    }
                    Some((parts, absorbs)) => {
                        replayed += 1;
                        let end = i + parts.len() - 1;
                        if absorbs && end != term {
                            return Err(fail(
                                invariant::FUSED_REPLAY,
                                Some(fi as u32),
                                Some(i as u32),
                                format!(
                                    "terminator-absorbing {} covers pcs {i}..={end} but block {b} \
                                     terminates at {term} (a budget/halt arm would be skipped)",
                                    step.variant_name()
                                ),
                            ));
                        }
                        if !absorbs && end >= term {
                            return Err(fail(
                                invariant::FUSED_REPLAY,
                                Some(fi as u32),
                                Some(i as u32),
                                format!(
                                    "{} covers pcs {i}..={end}, crossing block {b}'s terminator \
                                     at {term}",
                                    step.variant_name()
                                ),
                            ));
                        }
                        for (j, part) in parts.iter().enumerate() {
                            if !step_sem_eq(part, &base.steps[i + j]) {
                                return Err(fail(
                                    invariant::FUSED_REPLAY,
                                    Some(fi as u32),
                                    Some((i + j) as u32),
                                    format!(
                                        "constituent {j} of {} ({}) differs from twin's {}",
                                        step.variant_name(),
                                        part.variant_name(),
                                        base.steps[i + j].variant_name()
                                    ),
                                ));
                            }
                        }
                        if absorbs {
                            break;
                        }
                        i += parts.len();
                    }
                }
            }
        }
    }
    Ok(replayed)
}

// ---------------------------------------------------------------------------
// Pass 3: per-step bounds and bank discipline.
// ---------------------------------------------------------------------------

struct StepChecker<'a> {
    img: &'a ExecImage,
    /// Flattened-store start -> global id, for non-empty globals.
    start_to_gid: HashMap<u32, usize>,
}

impl<'a> StepChecker<'a> {
    fn new(img: &'a ExecImage) -> Self {
        let start_to_gid = img
            .global_bounds
            .iter()
            .enumerate()
            .filter(|(_, (_, len))| *len >= 1)
            .map(|(g, (start, _))| (*start, g))
            .collect();
        Self { img, start_to_gid }
    }

    fn check_all(&self) -> Result<(), VerifyError> {
        for (fi, f) in self.img.funcs.iter().enumerate() {
            for b in 0..f.block_pc.len() {
                let start = f.block_pc[b] as usize;
                let term = f.term_pc[b] as usize;
                for pc in start..=term {
                    self.check_step(fi as u32, f, b as u32, pc as u32, &self.img.steps[pc])?;
                }
            }
        }
        Ok(())
    }

    fn check_step(
        &self,
        fi: u32,
        f: &FuncImage,
        block: u32,
        pc: u32,
        step: &Step,
    ) -> Result<(), VerifyError> {
        if let Some((parts, _)) = decompose(step) {
            for part in &parts {
                self.check_simple(fi, f, block, pc, part)?;
            }
            return Ok(());
        }
        self.check_simple(fi, f, block, pc, step)
    }

    fn reg(
        &self,
        fi: u32,
        f: &FuncImage,
        pc: u32,
        r: u32,
        want: Option<RegBank>,
    ) -> Result<(), VerifyError> {
        let Some(bank) = f.banks.get(r as usize) else {
            return Err(fail(
                invariant::REG_BOUNDS,
                Some(fi),
                Some(pc),
                format!("register r{r} out of range (num_regs = {})", f.num_regs),
            ));
        };
        if let Some(w) = want {
            if *bank != w {
                return Err(fail(
                    invariant::REG_BANK,
                    Some(fi),
                    Some(pc),
                    format!("register r{r} is {bank:?}-banked, step assumes {w:?}"),
                ));
            }
        }
        Ok(())
    }

    fn int_src(&self, fi: u32, f: &FuncImage, pc: u32, s: &IntSrc) -> Result<(), VerifyError> {
        match s {
            IntSrc::Reg(r) => self.reg(fi, f, pc, *r, Some(RegBank::Int)),
            IntSrc::Imm(_) => Ok(()),
        }
    }

    fn float_src(&self, fi: u32, f: &FuncImage, pc: u32, s: &FloatSrc) -> Result<(), VerifyError> {
        match s {
            FloatSrc::F(r) => self.reg(fi, f, pc, *r, Some(RegBank::Float)),
            FloatSrc::I(r) => self.reg(fi, f, pc, *r, Some(RegBank::Int)),
            FloatSrc::Imm(_) => Ok(()),
        }
    }

    fn int_alu(&self, fi: u32, f: &FuncImage, pc: u32, a: &IntAlu) -> Result<(), VerifyError> {
        self.reg(fi, f, pc, a.dst, Some(RegBank::Int))?;
        self.int_src(fi, f, pc, &a.lhs)?;
        self.int_src(fi, f, pc, &a.rhs)
    }

    fn float_alu(
        &self,
        fi: u32,
        f: &FuncImage,
        pc: u32,
        a: &FloatAlu,
        dst_bank: RegBank,
    ) -> Result<(), VerifyError> {
        self.reg(fi, f, pc, a.dst, Some(dst_bank))?;
        self.float_src(fi, f, pc, &a.lhs)?;
        self.float_src(fi, f, pc, &a.rhs)
    }

    fn slot(
        &self,
        fi: u32,
        f: &FuncImage,
        pc: u32,
        s: &FrameSlot,
        want: RegBank,
    ) -> Result<(), VerifyError> {
        let nslots = f.slot_banks.len();
        let Some(bank) = f.slot_banks.get(s.slot as usize) else {
            return Err(fail(
                invariant::FRAME_SLOT_BOUNDS,
                Some(fi),
                Some(pc),
                format!("frame slot {} out of range ({nslots} slots)", s.slot),
            ));
        };
        if i64::from(s.slot) != s.elem.rem_euclid(nslots.max(1) as i64) {
            return Err(fail(
                invariant::FRAME_SLOT_BOUNDS,
                Some(fi),
                Some(pc),
                format!(
                    "slot {} is not element {} wrapped modulo {nslots}",
                    s.slot, s.elem
                ),
            ));
        }
        if *bank != want {
            return Err(fail(
                invariant::FRAME_SLOT_BANK,
                Some(fi),
                Some(pc),
                format!(
                    "frame slot {} is {bank:?}-banked, step assumes {want:?}",
                    s.slot
                ),
            ));
        }
        Ok(())
    }

    fn gmem(&self, fi: u32, f: &FuncImage, pc: u32, m: &GlobalMem) -> Result<(), VerifyError> {
        let e = |d: String| fail(invariant::GLOBAL_BOUNDS, Some(fi), Some(pc), d);
        let Some(&gid) = self.start_to_gid.get(&m.start) else {
            return Err(e(format!(
                "no global starts at flattened index {}",
                m.start
            )));
        };
        let (start, len) = self.img.global_bounds[gid];
        if m.len != len || m.len == 0 {
            return Err(e(format!(
                "reference claims {} elements for g{gid}, bounds table says {len}",
                m.len
            )));
        }
        if (start as usize) + (len as usize) > self.img.initial_globals.len() {
            return Err(e(format!(
                "g{gid} slice {start}+{len} exceeds flattened store ({})",
                self.img.initial_globals.len()
            )));
        }
        let expect_mask = if m.len.is_power_of_two() {
            u64::from(m.len) - 1
        } else {
            u64::MAX
        };
        if m.mask != expect_mask {
            return Err(e(format!(
                "wrap mask {:#x} wrong for length {} (expected {expect_mask:#x})",
                m.mask, m.len
            )));
        }
        match self.img.layout.global_bases.get(gid) {
            Some(&base) if base == m.base_byte => {}
            _ => {
                return Err(e(format!(
                    "base byte address {} disagrees with memory layout",
                    m.base_byte
                )))
            }
        }
        if m.index != u32::MAX {
            self.reg(fi, f, pc, m.index, Some(m.index_bank))?;
        }
        Ok(())
    }

    fn operand(&self, fi: u32, f: &FuncImage, pc: u32, op: &Operand) -> Result<(), VerifyError> {
        match op {
            Operand::Reg(r) => self.reg(fi, f, pc, r.0, None),
            Operand::ImmInt(_) | Operand::ImmFloat(_) => Ok(()),
            Operand::Mem(a) => {
                if let MemBase::Global(g) = a.base {
                    let ok = self
                        .img
                        .global_bounds
                        .get(g.index())
                        .is_some_and(|(_, len)| *len >= 1);
                    if !ok {
                        return Err(fail(
                            invariant::GLOBAL_BOUNDS,
                            Some(fi),
                            Some(pc),
                            format!("operand references missing or zero-length global {g}"),
                        ));
                    }
                }
                if let Some(r) = a.index {
                    self.reg(fi, f, pc, r.0, None)?;
                }
                Ok(())
            }
        }
    }

    fn edge(
        &self,
        fi: u32,
        f: &FuncImage,
        block: u32,
        pc: u32,
        t: &EdgeTarget,
    ) -> Result<(), VerifyError> {
        let e = |d: String| fail(invariant::EDGE_TARGET, Some(fi), Some(pc), d);
        let Some(&target_pc) = f.block_pc.get(t.block.index()) else {
            return Err(e(format!("target block {} out of range", t.block)));
        };
        if t.pc != target_pc {
            return Err(e(format!(
                "target pc {} is not the first step of {} (which starts at {target_pc})",
                t.pc, t.block
            )));
        }
        if t.block_idx != f.block_idx_base + t.block.0 {
            return Err(e(format!(
                "dense block index {} inconsistent for {}",
                t.block_idx, t.block
            )));
        }
        if (t.edge_idx as usize) >= self.img.num_edges() {
            return Err(e(format!("edge index {} out of range", t.edge_idx)));
        }
        let (from, to) = self.img.edge_blocks(t.edge_idx);
        if from != f.block_idx_base + block || to != t.block_idx {
            return Err(e(format!(
                "edge {} maps ({from}, {to}), step implies ({}, {})",
                t.edge_idx,
                f.block_idx_base + block,
                t.block_idx
            )));
        }
        Ok(())
    }

    /// Bounds/bank checks for one **unfused** step (fused steps are routed
    /// through [`decompose`] by `check_step`).
    fn check_simple(
        &self,
        fi: u32,
        f: &FuncImage,
        block: u32,
        pc: u32,
        step: &Step,
    ) -> Result<(), VerifyError> {
        match step {
            Step::IntAlu(a) => self.int_alu(fi, f, pc, a),
            Step::FloatAlu(a) => self.float_alu(fi, f, pc, a, RegBank::Float),
            Step::FloatCmp(a) => self.float_alu(fi, f, pc, a, RegBank::Int),
            Step::UnII { dst, src, .. } => {
                self.reg(fi, f, pc, *dst, Some(RegBank::Int))?;
                self.reg(fi, f, pc, *src, Some(RegBank::Int))
            }
            Step::UnFF { dst, src, .. } => {
                self.reg(fi, f, pc, *dst, Some(RegBank::Float))?;
                self.reg(fi, f, pc, *src, Some(RegBank::Float))
            }
            Step::UnIF { dst, src, .. } => {
                self.reg(fi, f, pc, *dst, Some(RegBank::Float))?;
                self.reg(fi, f, pc, *src, Some(RegBank::Int))
            }
            Step::IMovI { dst, .. } => self.reg(fi, f, pc, *dst, Some(RegBank::Int)),
            Step::FMovI { dst, .. } => self.reg(fi, f, pc, *dst, Some(RegBank::Float)),
            Step::IMovRR { dst, src } => {
                self.reg(fi, f, pc, *dst, Some(RegBank::Int))?;
                self.reg(fi, f, pc, *src, Some(RegBank::Int))
            }
            Step::FMovRR { dst, src } => {
                self.reg(fi, f, pc, *dst, Some(RegBank::Float))?;
                self.reg(fi, f, pc, *src, Some(RegBank::Float))
            }
            Step::IntBin { dst, lhs, rhs, .. } | Step::FloatBin { dst, lhs, rhs, .. } => {
                self.reg(fi, f, pc, *dst, None)?;
                self.operand(fi, f, pc, lhs)?;
                self.operand(fi, f, pc, rhs)
            }
            Step::Un { dst, src, .. } | Step::Mov { dst, src } => {
                self.reg(fi, f, pc, *dst, None)?;
                self.operand(fi, f, pc, src)
            }
            Step::LoadGlobal { dst, bank, mem } => {
                self.reg(fi, f, pc, *dst, Some(*bank))?;
                self.gmem(fi, f, pc, mem)
            }
            Step::LoadFI { dst, s } => {
                self.reg(fi, f, pc, *dst, Some(RegBank::Int))?;
                self.slot(fi, f, pc, s, RegBank::Int)
            }
            Step::LoadFF { dst, s } => {
                self.reg(fi, f, pc, *dst, Some(RegBank::Float))?;
                self.slot(fi, f, pc, s, RegBank::Float)
            }
            Step::StoreFI { src, s } => {
                self.int_src(fi, f, pc, src)?;
                self.slot(fi, f, pc, s, RegBank::Int)
            }
            Step::StoreFF { src, s } => {
                self.float_src(fi, f, pc, src)?;
                self.slot(fi, f, pc, s, RegBank::Float)
            }
            Step::LoadFrame { dst, bank, mem } => {
                self.reg(fi, f, pc, *dst, Some(*bank))?;
                if mem.index != u32::MAX {
                    self.reg(fi, f, pc, mem.index, Some(mem.index_bank))?;
                }
                Ok(())
            }
            Step::StoreGlobal { src, mem } => {
                self.operand(fi, f, pc, src)?;
                self.gmem(fi, f, pc, mem)
            }
            Step::StoreFrame { src, mem } => {
                self.operand(fi, f, pc, src)?;
                if mem.index != u32::MAX {
                    self.reg(fi, f, pc, mem.index, Some(mem.index_bank))?;
                }
                Ok(())
            }
            Step::Call {
                func,
                args_start,
                args_len,
                dst,
            } => {
                if (*func as usize) >= self.img.funcs.len() {
                    return Err(fail(
                        invariant::CALL_SITE,
                        Some(fi),
                        Some(pc),
                        format!(
                            "call target fn{func} out of range ({} functions)",
                            self.img.funcs.len()
                        ),
                    ));
                }
                let end = (*args_start as usize) + (*args_len as usize);
                if end > self.img.call_args.len() {
                    return Err(fail(
                        invariant::CALL_SITE,
                        Some(fi),
                        Some(pc),
                        format!(
                            "argument range {args_start}..{end} exceeds pool ({})",
                            self.img.call_args.len()
                        ),
                    ));
                }
                for arg in &self.img.call_args[*args_start as usize..end] {
                    self.operand(fi, f, pc, arg)?;
                }
                if *dst != u32::MAX {
                    self.reg(fi, f, pc, *dst, None)?;
                }
                Ok(())
            }
            Step::Print { src } => self.operand(fi, f, pc, src),
            Step::Nop => Ok(()),
            Step::Jump(t) => self.edge(fi, f, block, pc, t),
            Step::Branch {
                cond,
                bank,
                taken,
                not_taken,
            } => {
                self.reg(fi, f, pc, *cond, Some(*bank))?;
                self.edge(fi, f, block, pc, taken)?;
                self.edge(fi, f, block, pc, not_taken)
            }
            Step::Return { value } => {
                if let Some(op) = value {
                    self.operand(fi, f, pc, op)?;
                }
                Ok(())
            }
            // Fused variants are decomposed by `check_step` before reaching
            // here; a fused step arriving means the decomposition table and
            // the step enum drifted apart.
            other => Err(fail(
                invariant::STEP_STRUCTURE,
                Some(fi),
                Some(pc),
                format!(
                    "fused variant {} has no decomposition entry",
                    other.variant_name()
                ),
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 4/5: independent type dataflow + zero-fill elision proof.
// ---------------------------------------------------------------------------

fn wrap_slot(offset: i64, nslots: usize) -> usize {
    offset.rem_euclid(nslots.max(1) as i64) as usize
}

/// The register an operand reads, mirroring the IR's `op_reg` (memory
/// operands read their index register).
fn op_reg(op: &Operand) -> Option<u32> {
    match op {
        Operand::Reg(r) => Some(r.0),
        Operand::Mem(a) => a.index.map(|r| r.0),
        _ => None,
    }
}

fn int_src_use(s: &IntSrc, f: &mut dyn FnMut(u32)) {
    if let IntSrc::Reg(r) = s {
        f(*r);
    }
}

fn float_src_use(s: &FloatSrc, f: &mut dyn FnMut(u32)) {
    match s {
        FloatSrc::F(r) | FloatSrc::I(r) => f(*r),
        FloatSrc::Imm(_) => {}
    }
}

/// Visits every register `step` reads, mirroring `Inst::uses` /
/// `Terminator::uses` over the decoded form (fused steps recurse through
/// their decomposition).
fn for_each_use(step: &Step, call_args: &[Operand], f: &mut dyn FnMut(u32)) {
    if let Some((parts, _)) = decompose(step) {
        for part in &parts {
            for_each_use(part, call_args, f);
        }
        return;
    }
    let mut op = |o: &Operand| {
        if let Some(r) = op_reg(o) {
            f(r)
        }
    };
    match step {
        Step::IntAlu(a) => {
            int_src_use(&a.lhs, f);
            int_src_use(&a.rhs, f);
        }
        Step::FloatAlu(a) | Step::FloatCmp(a) => {
            float_src_use(&a.lhs, f);
            float_src_use(&a.rhs, f);
        }
        Step::UnII { src, .. }
        | Step::UnFF { src, .. }
        | Step::UnIF { src, .. }
        | Step::IMovRR { src, .. }
        | Step::FMovRR { src, .. } => f(*src),
        Step::IMovI { .. } | Step::FMovI { .. } | Step::Nop | Step::Jump(_) => {}
        Step::IntBin { lhs, rhs, .. } | Step::FloatBin { lhs, rhs, .. } => {
            op(lhs);
            op(rhs);
        }
        Step::Un { src, .. } | Step::Mov { src, .. } | Step::Print { src } => op(src),
        Step::LoadGlobal { mem, .. } if mem.index != u32::MAX => f(mem.index),
        Step::LoadFrame { mem, .. } if mem.index != u32::MAX => f(mem.index),
        Step::LoadGlobal { .. } | Step::LoadFrame { .. } => {}
        Step::LoadFI { .. } | Step::LoadFF { .. } => {}
        Step::StoreFI { src, .. } => int_src_use(src, f),
        Step::StoreFF { src, .. } => float_src_use(src, f),
        Step::StoreGlobal { src, mem } => {
            op(src);
            if mem.index != u32::MAX {
                f(mem.index)
            }
        }
        Step::StoreFrame { src, mem } => {
            op(src);
            if mem.index != u32::MAX {
                f(mem.index)
            }
        }
        Step::Call {
            args_start,
            args_len,
            ..
        } => {
            let start = *args_start as usize;
            let end = (start + *args_len as usize).min(call_args.len());
            for arg in call_args.get(start..end).unwrap_or(&[]) {
                op(arg);
            }
        }
        Step::Branch { cond, .. } => f(*cond),
        Step::Return { value: Some(v) } => op(v),
        Step::Return { value: None } => {}
        // Fused variants were decomposed above.
        _ => {}
    }
}

/// The register `step` defines, for liveness kills.  Calls deliberately
/// return `None` — the typing pass treats a call's destination as a
/// may-write, exactly mirroring `typing::entry_live`.  Unfused steps only
/// (liveness runs on the twin).
fn step_def_kill(step: &Step) -> Option<u32> {
    match step {
        Step::IntAlu(a) => Some(a.dst),
        Step::FloatAlu(a) | Step::FloatCmp(a) => Some(a.dst),
        Step::UnII { dst, .. }
        | Step::UnFF { dst, .. }
        | Step::UnIF { dst, .. }
        | Step::IMovI { dst, .. }
        | Step::FMovI { dst, .. }
        | Step::IMovRR { dst, .. }
        | Step::FMovRR { dst, .. }
        | Step::IntBin { dst, .. }
        | Step::FloatBin { dst, .. }
        | Step::Un { dst, .. }
        | Step::Mov { dst, .. }
        | Step::LoadGlobal { dst, .. }
        | Step::LoadFI { dst, .. }
        | Step::LoadFF { dst, .. }
        | Step::LoadFrame { dst, .. } => Some(*dst),
        _ => None,
    }
}

fn successors(base: &ExecImage, f: &FuncImage, b: usize) -> [Option<usize>; 2] {
    match &base.steps[f.term_pc[b] as usize] {
        Step::Jump(t) => [Some(t.block.index()), None],
        Step::Branch {
            taken, not_taken, ..
        } => [Some(taken.block.index()), Some(not_taken.block.index())],
        _ => [None, None],
    }
}

/// Registers of `fi` that may be read before written (mirrors
/// `typing::entry_live` over the decoded steps).
fn reg_entry_live(base: &ExecImage, fi: usize) -> Vec<bool> {
    let f = &base.funcs[fi];
    let nregs = f.num_regs as usize;
    let nb = f.block_pc.len();
    let mut live_in = vec![vec![false; nregs]; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            let mut live = vec![false; nregs];
            for succ in successors(base, f, b).into_iter().flatten() {
                if let Some(l) = live_in.get(succ) {
                    for (d, v) in live.iter_mut().zip(l) {
                        *d |= v;
                    }
                }
            }
            let start = f.block_pc[b] as usize;
            let term = f.term_pc[b] as usize;
            for pc in (start..=term).rev() {
                let step = &base.steps[pc];
                if let Some(d) = step_def_kill(step) {
                    if let Some(p) = live.get_mut(d as usize) {
                        *p = false;
                    }
                }
                for_each_use(step, &base.call_args, &mut |r| {
                    if let Some(p) = live.get_mut(r as usize) {
                        *p = true;
                    }
                });
            }
            if live != live_in[b] {
                live_in[b] = live;
                changed = true;
            }
        }
    }
    live_in[f.entry_block.index()].clone()
}

/// Frame slots of `fi` that may be read before written (mirrors
/// `typing::frame_entry_live` over the decoded steps): a static load gens its
/// slot, a dynamic load gens all, a static store kills its slot *before*
/// genning its operand reads, and a dynamic store kills nothing.
fn slot_entry_live(base: &ExecImage, fi: usize) -> Vec<bool> {
    let f = &base.funcs[fi];
    let nslots = f.slot_banks.len();
    let nb = f.block_pc.len();
    let mut live_in = vec![vec![false; nslots]; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            let mut live = vec![false; nslots];
            for succ in successors(base, f, b).into_iter().flatten() {
                if let Some(l) = live_in.get(succ) {
                    for (d, v) in live.iter_mut().zip(l) {
                        *d |= v;
                    }
                }
            }
            let start = f.block_pc[b] as usize;
            let term = f.term_pc[b] as usize;
            for pc in (start..=term).rev() {
                slot_transfer(&base.steps[pc], &base.call_args, nslots, &mut live);
            }
            if live != live_in[b] {
                live_in[b] = live;
                changed = true;
            }
        }
    }
    live_in[f.entry_block.index()].clone()
}

fn slot_transfer(step: &Step, call_args: &[Operand], nslots: usize, live: &mut [bool]) {
    let gen_op = |op: &Operand, live: &mut [bool]| {
        if let Operand::Mem(a) = op {
            if a.base == MemBase::Frame {
                if a.index.is_some() {
                    live.iter_mut().for_each(|p| *p = true);
                } else if let Some(p) = live.get_mut(wrap_slot(a.offset, nslots)) {
                    *p = true;
                }
            }
        }
    };
    match step {
        Step::StoreFI { s, .. } | Step::StoreFF { s, .. } => {
            if let Some(p) = live.get_mut(s.slot as usize) {
                *p = false;
            }
        }
        Step::StoreFrame { src, mem } => {
            if mem.index == u32::MAX {
                if let Some(p) = live.get_mut(wrap_slot(mem.offset, nslots)) {
                    *p = false;
                }
            }
            gen_op(src, live);
        }
        Step::LoadFI { s, .. } | Step::LoadFF { s, .. } => {
            if let Some(p) = live.get_mut(s.slot as usize) {
                *p = true;
            }
        }
        Step::LoadFrame { mem, .. } => {
            if mem.index == u32::MAX {
                if let Some(p) = live.get_mut(wrap_slot(mem.offset, nslots)) {
                    *p = true;
                }
            } else {
                live.iter_mut().for_each(|p| *p = true);
            }
        }
        Step::IntBin { lhs, rhs, .. } | Step::FloatBin { lhs, rhs, .. } => {
            gen_op(lhs, live);
            gen_op(rhs, live);
        }
        Step::Un { src, .. } | Step::Mov { src, .. } | Step::Print { src } => gen_op(src, live),
        Step::StoreGlobal { src, .. } => gen_op(src, live),
        Step::Call {
            args_start,
            args_len,
            ..
        } => {
            let start = *args_start as usize;
            let end = (start + *args_len as usize).min(call_args.len());
            for arg in call_args.get(start..end).unwrap_or(&[]) {
                gen_op(arg, live);
            }
        }
        Step::Return { value: Some(op) } => gen_op(op, live),
        _ => {}
    }
}

fn value_lat(v: &Value) -> Lat {
    match v {
        Value::Int(_) => Lat::Int,
        Value::Float(_) => Lat::Float,
    }
}

struct Flow<'a> {
    base: &'a ExecImage,
    /// Per-function register lattice points.
    regs: Vec<Vec<Lat>>,
    /// Per-function frame-slot lattice points.
    frames: Vec<Vec<Lat>>,
    /// Per-global region lattice points.
    regions: Vec<Lat>,
    /// Per-function return lattice points.
    rets: Vec<Lat>,
    start_to_gid: HashMap<u32, usize>,
}

impl Flow<'_> {
    fn operand_lat(&self, fi: usize, op: &Operand) -> Lat {
        match op {
            Operand::Reg(r) => self.regs[fi].get(r.0 as usize).copied().unwrap_or(Lat::Top),
            Operand::ImmInt(_) => Lat::Int,
            Operand::ImmFloat(_) => Lat::Float,
            Operand::Mem(a) => match a.base {
                MemBase::Global(g) => self.regions.get(g.index()).copied().unwrap_or(Lat::Top),
                MemBase::Frame => {
                    let slots = &self.frames[fi];
                    if a.index.is_some() {
                        slots.iter().copied().fold(Lat::Bot, Lat::join)
                    } else {
                        slots
                            .get(wrap_slot(a.offset, slots.len()))
                            .copied()
                            .unwrap_or(Lat::Top)
                    }
                }
            },
        }
    }

    fn int_src_lat(&self, fi: usize, s: &IntSrc) -> Lat {
        match s {
            IntSrc::Reg(r) => self.regs[fi].get(*r as usize).copied().unwrap_or(Lat::Top),
            IntSrc::Imm(_) => Lat::Int,
        }
    }

    fn float_src_lat(&self, fi: usize, s: &FloatSrc) -> Lat {
        match s {
            FloatSrc::F(r) | FloatSrc::I(r) => {
                self.regs[fi].get(*r as usize).copied().unwrap_or(Lat::Top)
            }
            FloatSrc::Imm(_) => Lat::Float,
        }
    }

    fn region_lat(&self, mem: &GlobalMem) -> Lat {
        self.start_to_gid
            .get(&mem.start)
            .and_then(|g| self.regions.get(*g))
            .copied()
            .unwrap_or(Lat::Top)
    }
}

fn join_reg(regs: &mut [Lat], r: u32, v: Lat, changed: &mut bool) {
    if let Some(p) = regs.get_mut(r as usize) {
        let j = p.join(v);
        if j != *p {
            *p = j;
            *changed = true;
        }
    }
}

fn join_lat(p: &mut Lat, v: Lat, changed: &mut bool) {
    let j = p.join(v);
    if j != *p {
        *p = j;
        *changed = true;
    }
}

/// Re-runs the whole-program type inference over the unfused steps and
/// checks every bank assignment and zero-fill flag against it (soundness
/// direction: a bank may be *wider* than the recomputed lattice point, never
/// narrower).
fn check_dataflow(base: &ExecImage) -> Result<(), VerifyError> {
    let nfuncs = base.funcs.len();

    // Which functions are called, and the fewest arguments any call passes —
    // params beyond that may observe their initial value (typing seeds them
    // Int); the entry function's params always may.
    let mut has_caller = vec![false; nfuncs];
    let mut short_args = vec![usize::MAX; nfuncs];
    for step in &base.steps {
        if let Step::Call { func, args_len, .. } = step {
            if let Some(h) = has_caller.get_mut(*func as usize) {
                *h = true;
                short_args[*func as usize] = short_args[*func as usize].min(*args_len as usize);
            }
        }
    }

    // Region lattices from the flattened initial values: `Global::initial_values`
    // always materializes exactly `elems` values, so joining the stored tags
    // is precision-identical to typing's `global_init_lat`.
    let regions: Vec<Lat> = base
        .global_bounds
        .iter()
        .map(|&(start, len)| {
            base.initial_globals
                .get(start as usize..(start as usize + len as usize))
                .unwrap_or(&[])
                .iter()
                .map(value_lat)
                .fold(Lat::Bot, Lat::join)
        })
        .collect();

    let mut flow = Flow {
        base,
        regs: base
            .funcs
            .iter()
            .map(|f| vec![Lat::Bot; f.num_regs as usize])
            .collect(),
        frames: base
            .funcs
            .iter()
            .map(|f| vec![Lat::Bot; f.slot_banks.len()])
            .collect(),
        regions,
        rets: vec![Lat::Bot; nfuncs],
        start_to_gid: base
            .global_bounds
            .iter()
            .enumerate()
            .filter(|(_, (_, len))| *len >= 1)
            .map(|(g, (start, _))| (*start, g))
            .collect(),
    };

    // Seed: registers and slots that may observe their initial (zeroed)
    // value join Int, mirroring typing's seeding; remember which, for the
    // zero-fill elision check.
    let mut obs_reg: Vec<Vec<bool>> = Vec::with_capacity(nfuncs);
    let mut obs_slot: Vec<Vec<bool>> = Vec::with_capacity(nfuncs);
    for fi in 0..nfuncs {
        let f = &base.funcs[fi];
        let live = reg_entry_live(base, fi);
        let mut obs = vec![false; f.num_regs as usize];
        for (ri, is_live) in live.iter().enumerate() {
            if !is_live {
                continue;
            }
            let covered = f
                .params
                .iter()
                .position(|p| p.0 as usize == ri)
                .is_some_and(|pos| {
                    has_caller[fi] && short_args[fi] > pos && base.entry as usize != fi
                });
            if !covered {
                obs[ri] = true;
                let p = &mut flow.regs[fi][ri];
                *p = p.join(Lat::Int);
            }
        }
        obs_reg.push(obs);
        let slot_live = slot_entry_live(base, fi);
        for (si, is_live) in slot_live.iter().enumerate() {
            if *is_live {
                let p = &mut flow.frames[fi][si];
                *p = p.join(Lat::Int);
            }
        }
        obs_slot.push(slot_live);
    }

    // Forward fixpoint over the unfused steps, mirroring typing's transfer
    // functions variant by variant.
    let mut changed = true;
    while changed {
        changed = false;
        for fi in 0..nfuncs {
            let nblocks = base.funcs[fi].block_pc.len();
            for b in 0..nblocks {
                let start = base.funcs[fi].block_pc[b] as usize;
                let term = base.funcs[fi].term_pc[b] as usize;
                for pc in start..=term {
                    flow_transfer(&mut flow, fi, &base.steps[pc], &mut changed);
                }
            }
        }
    }

    // Bank tables must cover the recomputed lattice points.
    for (fi, f) in base.funcs.iter().enumerate() {
        for (ri, bank) in f.banks.iter().enumerate() {
            let lat = flow.regs[fi][ri];
            let ok = match bank {
                RegBank::Int => matches!(lat, Lat::Bot | Lat::Int),
                RegBank::Float => matches!(lat, Lat::Bot | Lat::Float),
                RegBank::Tagged => true,
            };
            if !ok {
                return Err(fail(
                    invariant::REG_BANK,
                    Some(fi as u32),
                    None,
                    format!(
                        "register r{ri} is {bank:?}-banked but dataflow proves {lat:?} values \
                         reach it"
                    ),
                ));
            }
        }
        for (si, bank) in f.slot_banks.iter().enumerate() {
            let lat = flow.frames[fi][si];
            let ok = match bank {
                RegBank::Int => matches!(lat, Lat::Bot | Lat::Int),
                RegBank::Float => matches!(lat, Lat::Bot | Lat::Float),
                RegBank::Tagged => true,
            };
            if !ok {
                return Err(fail(
                    invariant::FRAME_SLOT_BANK,
                    Some(fi as u32),
                    None,
                    format!(
                        "frame slot {si} is {bank:?}-banked but dataflow proves {lat:?} values \
                         reach it"
                    ),
                ));
            }
        }

        // Zero-fill elision: every register/slot that may observe its initial
        // value must be covered by the frame layout's zero-fill flags.
        for (ri, obs) in obs_reg[fi].iter().enumerate() {
            if !obs {
                continue;
            }
            let (needed, have) = match f.banks[ri] {
                RegBank::Int => ("zero_reg_ints", f.frame.zero_reg_ints),
                RegBank::Tagged => ("zero_reg_tagged", f.frame.zero_reg_tagged),
                RegBank::Float => {
                    return Err(fail(
                        invariant::ZERO_FILL_ELISION,
                        Some(fi as u32),
                        None,
                        format!(
                            "register r{ri} may observe its initial value yet is float-banked \
                             (the float bank is never zero-filled)"
                        ),
                    ))
                }
            };
            if !have {
                return Err(fail(
                    invariant::ZERO_FILL_ELISION,
                    Some(fi as u32),
                    None,
                    format!(
                        "register r{ri} may observe its initial value but {needed} is unset \
                         (FramePool::acquire would skip the fill)"
                    ),
                ));
            }
        }
        for (si, obs) in obs_slot[fi].iter().enumerate() {
            if !obs {
                continue;
            }
            let (needed, have) = match f.slot_banks[si] {
                RegBank::Int => ("zero_slots_int", f.frame.zero_slots_int),
                RegBank::Tagged => ("zero_slots_tagged", f.frame.zero_slots_tagged),
                RegBank::Float => {
                    return Err(fail(
                        invariant::ZERO_FILL_ELISION,
                        Some(fi as u32),
                        None,
                        format!(
                            "frame slot {si} may observe its initial value yet is float-banked \
                             (the float slot bank is never zero-filled)"
                        ),
                    ))
                }
            };
            if !have {
                return Err(fail(
                    invariant::ZERO_FILL_ELISION,
                    Some(fi as u32),
                    None,
                    format!(
                        "frame slot {si} may observe its initial value but {needed} is unset \
                         (FramePool::acquire would skip the fill)"
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// One forward transfer, mirroring `typing::infer`'s per-inst transfer over
/// the decoded (unfused) step.  Untagged variants use the constant lattice
/// points their decode guards imply (e.g. an `IMovI` folded from a constant
/// `Bin` joins `Int`, which equals `bin_result` for every foldable case).
fn flow_transfer(flow: &mut Flow<'_>, fi: usize, step: &Step, changed: &mut bool) {
    use bsg_ir::types::Ty;
    match step {
        Step::IntAlu(a) => join_reg(&mut flow.regs[fi], a.dst, Lat::Int, changed),
        Step::FloatAlu(a) | Step::FloatCmp(a) => {
            let v = bin_result(a.op, Ty::Float);
            join_reg(&mut flow.regs[fi], a.dst, v, changed);
        }
        Step::UnII { dst, .. } => join_reg(&mut flow.regs[fi], *dst, Lat::Int, changed),
        Step::UnFF { dst, .. } | Step::UnIF { dst, .. } => {
            join_reg(&mut flow.regs[fi], *dst, Lat::Float, changed)
        }
        Step::IMovI { dst, .. } => join_reg(&mut flow.regs[fi], *dst, Lat::Int, changed),
        Step::FMovI { dst, .. } => join_reg(&mut flow.regs[fi], *dst, Lat::Float, changed),
        Step::IMovRR { dst, src } | Step::FMovRR { dst, src } => {
            let v = flow.regs[fi]
                .get(*src as usize)
                .copied()
                .unwrap_or(Lat::Top);
            join_reg(&mut flow.regs[fi], *dst, v, changed);
        }
        Step::IntBin { op, dst, .. } => {
            let v = bin_result(*op, Ty::Int);
            join_reg(&mut flow.regs[fi], *dst, v, changed);
        }
        Step::FloatBin { op, dst, .. } => {
            let v = bin_result(*op, Ty::Float);
            join_reg(&mut flow.regs[fi], *dst, v, changed);
        }
        Step::Un { op, ty, dst, .. } => {
            let v = un_result(*op, *ty);
            join_reg(&mut flow.regs[fi], *dst, v, changed);
        }
        Step::Mov { dst, src } => {
            let v = flow.operand_lat(fi, src);
            join_reg(&mut flow.regs[fi], *dst, v, changed);
        }
        Step::LoadGlobal { dst, mem, .. } => {
            let v = flow.region_lat(mem);
            join_reg(&mut flow.regs[fi], *dst, v, changed);
        }
        Step::LoadFI { dst, s } | Step::LoadFF { dst, s } => {
            let v = flow.frames[fi]
                .get(s.slot as usize)
                .copied()
                .unwrap_or(Lat::Top);
            join_reg(&mut flow.regs[fi], *dst, v, changed);
        }
        Step::LoadFrame { dst, mem, .. } => {
            let v = if mem.index == u32::MAX {
                let slots = &flow.frames[fi];
                slots
                    .get(wrap_slot(mem.offset, slots.len()))
                    .copied()
                    .unwrap_or(Lat::Top)
            } else {
                flow.frames[fi].iter().copied().fold(Lat::Bot, Lat::join)
            };
            join_reg(&mut flow.regs[fi], *dst, v, changed);
        }
        Step::StoreFI { src, s } => {
            let v = flow.int_src_lat(fi, src);
            if let Some(p) = flow.frames[fi].get_mut(s.slot as usize) {
                join_lat(p, v, changed);
            }
        }
        Step::StoreFF { src, s } => {
            let v = flow.float_src_lat(fi, src);
            if let Some(p) = flow.frames[fi].get_mut(s.slot as usize) {
                join_lat(p, v, changed);
            }
        }
        Step::StoreGlobal { src, mem } => {
            let v = flow.operand_lat(fi, src);
            if let Some(&g) = flow.start_to_gid.get(&mem.start) {
                if let Some(p) = flow.regions.get_mut(g) {
                    join_lat(p, v, changed);
                }
            }
        }
        Step::StoreFrame { src, mem } => {
            let v = flow.operand_lat(fi, src);
            if mem.index == u32::MAX {
                let w = wrap_slot(mem.offset, flow.frames[fi].len());
                if let Some(p) = flow.frames[fi].get_mut(w) {
                    join_lat(p, v, changed);
                }
            } else {
                for p in flow.frames[fi].iter_mut() {
                    join_lat(p, v, changed);
                }
            }
        }
        Step::Call {
            func,
            args_start,
            args_len,
            dst,
        } => {
            let ci = *func as usize;
            if ci < flow.base.funcs.len() {
                let params = flow.base.funcs[ci].params.clone();
                for (i, p) in params.iter().enumerate() {
                    if i < *args_len as usize {
                        let arg = &flow.base.call_args[*args_start as usize + i];
                        let v = flow.operand_lat(fi, arg);
                        join_reg(&mut flow.regs[ci], p.0, v, changed);
                    }
                }
                if *dst != u32::MAX {
                    let v = flow.rets[ci];
                    join_reg(&mut flow.regs[fi], *dst, v, changed);
                }
            } else if *dst != u32::MAX {
                join_reg(&mut flow.regs[fi], *dst, Lat::Top, changed);
            }
        }
        Step::Return { value: Some(op) } => {
            let v = flow.operand_lat(fi, op);
            let p = &mut flow.rets[fi];
            join_lat(p, v, changed);
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Mutation kit: programmatic image corruptors for the self-test.
// ---------------------------------------------------------------------------

/// One way to corrupt an otherwise-valid image, breaking exactly the
/// invariant named in its docs.  The mutation self-test asserts
/// [`verify_image`] rejects every applicable corruption of every valid image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Point the first statically-resolved [`FrameSlot`] one past the
    /// slot-bank table (breaks `frame-slot-bounds`).
    FrameSlotOutOfRange,
    /// Retype the first untagged access to the opposite bank — e.g. an int
    /// immediate move becomes a float immediate move to the same (int-banked)
    /// register (breaks `reg-bank`).
    MistypedBankAccess,
    /// Drop one constituent's budget-decrement/event arm from a fused
    /// terminator-absorbing step — e.g. `IntCmpBr` forgets its ALU and
    /// becomes a bare `Branch` (breaks `fused-replay` /
    /// `terminator-placement`).
    DroppedBudgetArm,
    /// Point the first jump/branch target past the end of the step array
    /// (breaks `edge-target`).
    DanglingJumpTarget,
    /// Point the first destination register at `num_regs` (breaks
    /// `reg-bounds`).
    RegOutOfRange,
    /// Grow the first global reference's length by one element (breaks
    /// `global-bounds`).
    GlobalRegionLie,
    /// Clear a function's zero-fill flags even though some register or slot
    /// may observe its initial value (breaks `zero-fill-elision`).
    ZeroFillElisionLie,
}

/// Every corruption the kit knows, for exhaustive sweeps.
pub const ALL_CORRUPTIONS: [Corruption; 7] = [
    Corruption::FrameSlotOutOfRange,
    Corruption::MistypedBankAccess,
    Corruption::DroppedBudgetArm,
    Corruption::DanglingJumpTarget,
    Corruption::RegOutOfRange,
    Corruption::GlobalRegionLie,
    Corruption::ZeroFillElisionLie,
];

fn first_slot_mut(step: &mut Step) -> Option<&mut FrameSlot> {
    match step {
        Step::LoadFI { s, .. }
        | Step::LoadFF { s, .. }
        | Step::StoreFI { s, .. }
        | Step::StoreFF { s, .. }
        | Step::LoadFIntAlu { s, .. }
        | Step::LoadFFloatAlu { s, .. }
        | Step::IntAluStoreF { s, .. }
        | Step::FloatAluStoreF { s, .. }
        | Step::LoadFILoadG { s1: s, .. }
        | Step::StoreFLoadF { ss: s, .. }
        | Step::LoadFIStoreG { s, .. }
        | Step::FloatPairStoreF { s, .. }
        | Step::LoadFPairI { s1: s, .. }
        | Step::LoadFPairF { s1: s, .. }
        | Step::LoadFCmpBr { s, .. }
        | Step::StoreFIJump { s, .. }
        | Step::StoreFFJump { s, .. }
        | Step::LoadFUnFF { s, .. }
        | Step::UnFFStoreF { s, .. }
        | Step::LoadFUnFFStoreFF { ls: s, .. }
        | Step::LoadFFAluStoreFF { ls: s, .. }
        | Step::LoadFAluStoreF { ls: s, .. } => Some(s),
        _ => None,
    }
}

fn first_edge_mut(step: &mut Step) -> Option<&mut EdgeTarget> {
    match step {
        Step::Jump(t)
        | Step::IntAluJump { target: t, .. }
        | Step::IntPairJump { target: t, .. }
        | Step::StoreFIJump { target: t, .. }
        | Step::StoreFFJump { target: t, .. } => Some(t),
        Step::Branch { taken: t, .. }
        | Step::IntCmpBr { taken: t, .. }
        | Step::LoadFCmpBr { taken: t, .. }
        | Step::LoadGCmpBr { taken: t, .. } => Some(t),
        _ => None,
    }
}

fn first_dst_mut(step: &mut Step) -> Option<&mut u32> {
    match step {
        Step::IntAlu(a)
        | Step::IntPair(a, _)
        | Step::IntCmpBr { a, .. }
        | Step::IntAluJump { a, .. }
        | Step::IntPairJump { a, .. }
        | Step::IntAluLoadG { a, .. }
        | Step::IntAluStoreF { a, .. } => Some(&mut a.dst),
        Step::FloatAlu(a)
        | Step::FloatCmp(a)
        | Step::FloatPair(a, _)
        | Step::FloatAluStoreF { a, .. }
        | Step::FloatPairStoreF { a, .. } => Some(&mut a.dst),
        Step::UnII { dst, .. }
        | Step::UnFF { dst, .. }
        | Step::UnIF { dst, .. }
        | Step::IMovI { dst, .. }
        | Step::FMovI { dst, .. }
        | Step::IMovRR { dst, .. }
        | Step::FMovRR { dst, .. }
        | Step::IntBin { dst, .. }
        | Step::FloatBin { dst, .. }
        | Step::Un { dst, .. }
        | Step::Mov { dst, .. }
        | Step::LoadGlobal { dst, .. }
        | Step::LoadFI { dst, .. }
        | Step::LoadFF { dst, .. }
        | Step::LoadFrame { dst, .. }
        | Step::LoadGIntAlu { dst, .. }
        | Step::LoadFIntAlu { dst, .. }
        | Step::LoadFFloatAlu { dst, .. }
        | Step::LoadGFloatAlu { dst, .. }
        | Step::LoadFCmpBr { dst, .. }
        | Step::LoadGCmpBr { dst, .. }
        | Step::LoadFAluStoreF { dst, .. }
        | Step::LoadFFAluStoreFF { dst, .. }
        | Step::LoadFUnFF { dst, .. }
        | Step::LoadFUnFFStoreFF { dst, .. }
        | Step::StoreFLoadF { dst, .. }
        | Step::LoadFIStoreG { dst, .. } => Some(dst),
        Step::LoadFILoadG { dst1, .. }
        | Step::LoadFPairI { dst1, .. }
        | Step::LoadFPairF { dst1, .. } => Some(dst1),
        _ => None,
    }
}

fn first_gmem_mut(step: &mut Step) -> Option<&mut GlobalMem> {
    match step {
        Step::LoadGlobal { mem, .. }
        | Step::StoreGlobal { mem, .. }
        | Step::LoadGIntAlu { mem, .. }
        | Step::IntAluLoadG { mem, .. }
        | Step::LoadFILoadG { mem, .. }
        | Step::LoadFIStoreG { mem, .. }
        | Step::LoadGCmpBr { mem, .. }
        | Step::LoadGFloatAlu { mem, .. } => Some(mem),
        _ => None,
    }
}

/// Returns a clone of `image` with `c` applied to the first applicable site,
/// or `None` when the image has no applicable site (e.g. no global references
/// for [`Corruption::GlobalRegionLie`]).  The result is guaranteed to differ
/// semantically from `image` — the self-test asserts [`verify_image`]
/// rejects it.
pub fn corrupt_image(image: &ExecImage, c: Corruption) -> Option<ExecImage> {
    let mut img = image.clone();
    // Per-function step ranges and table sizes, captured up front so the
    // mutation loop can hold `&mut` steps.
    let ranges: Vec<(usize, usize, u32, u32)> = img
        .funcs
        .iter()
        .map(|f| {
            (
                f.block_pc[0] as usize,
                *f.term_pc.last().unwrap() as usize,
                f.num_regs,
                f.slot_banks.len() as u32,
            )
        })
        .collect();
    let nsteps = img.steps.len();
    let applied = match c {
        Corruption::FrameSlotOutOfRange => ranges.iter().any(|&(start, end, _, nslots)| {
            img.steps[start..=end]
                .iter_mut()
                .any(|step| first_slot_mut(step).map(|s| s.slot = nslots).is_some())
        }),
        Corruption::MistypedBankAccess => img.steps.iter_mut().any(|step| match step {
            Step::IMovI { dst, .. } => {
                *step = Step::FMovI {
                    dst: *dst,
                    imm: 1.0,
                };
                true
            }
            Step::LoadFI { dst, s } => {
                *step = Step::LoadFF { dst: *dst, s: *s };
                true
            }
            Step::StoreFI { s, .. } => {
                *step = Step::StoreFF {
                    src: FloatSrc::Imm(0.5),
                    s: *s,
                };
                true
            }
            Step::IMovRR { dst, src } => {
                *step = Step::FMovRR {
                    dst: *dst,
                    src: *src,
                };
                true
            }
            _ => false,
        }),
        Corruption::DroppedBudgetArm => img.steps.iter_mut().any(|step| match step {
            Step::IntAluJump { target, .. }
            | Step::StoreFIJump { target, .. }
            | Step::StoreFFJump { target, .. } => {
                *step = Step::Jump(*target);
                true
            }
            Step::IntCmpBr {
                cond,
                taken,
                not_taken,
                ..
            } => {
                *step = Step::Branch {
                    cond: *cond,
                    bank: RegBank::Int,
                    taken: *taken,
                    not_taken: *not_taken,
                };
                true
            }
            Step::IntPairJump { a, target, .. } => {
                *step = Step::IntAluJump {
                    a: *a,
                    target: *target,
                };
                true
            }
            Step::LoadFCmpBr {
                a,
                cond,
                taken,
                not_taken,
                ..
            }
            | Step::LoadGCmpBr {
                a,
                cond,
                taken,
                not_taken,
                ..
            } => {
                *step = Step::IntCmpBr {
                    a: *a,
                    cond: *cond,
                    taken: *taken,
                    not_taken: *not_taken,
                };
                true
            }
            _ => false,
        }),
        Corruption::DanglingJumpTarget => img.steps.iter_mut().any(|step| {
            first_edge_mut(step)
                .map(|t| t.pc = nsteps as u32 + 7)
                .is_some()
        }),
        Corruption::RegOutOfRange => ranges.iter().any(|&(start, end, num_regs, _)| {
            img.steps[start..=end]
                .iter_mut()
                .any(|step| first_dst_mut(step).map(|d| *d = num_regs).is_some())
        }),
        Corruption::GlobalRegionLie => img
            .steps
            .iter_mut()
            .any(|step| first_gmem_mut(step).map(|m| m.len += 1).is_some()),
        Corruption::ZeroFillElisionLie => {
            let target = img.funcs.iter().position(|f| {
                f.frame.zero_reg_ints
                    || f.frame.zero_reg_tagged
                    || f.frame.zero_slots_int
                    || f.frame.zero_slots_tagged
            });
            match target {
                None => false,
                Some(fi) => {
                    let clear = |f: &mut FuncImage| {
                        f.frame.zero_reg_ints = false;
                        f.frame.zero_reg_tagged = false;
                        f.frame.zero_slots_int = false;
                        f.frame.zero_slots_tagged = false;
                    };
                    clear(&mut img.funcs[fi]);
                    // Clear the twin too, so the lie is structurally
                    // consistent and only the elision proof can catch it.
                    if let Some(twin) = img.unfused.as_deref_mut() {
                        clear(&mut twin.funcs[fi]);
                    }
                    true
                }
            }
        }
    };
    applied.then_some(img)
}
