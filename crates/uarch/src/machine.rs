//! The real-hardware machine models of Table III.
//!
//! The paper runs its cross-architecture experiments (Figure 11) on five
//! machines: two Pentium 4 systems (x86), a Core 2 and a Core i7 (x86-64),
//! and an Itanium 2 (IA-64, in-order EPIC).  Each [`MachineConfig`] couples a
//! pipeline timing model with a clock frequency and names the ISA its
//! binaries must be compiled for; the experiment harness compiles each
//! workload for that ISA and divides simulated cycles by the clock to obtain
//! wall-clock execution time.

use crate::batch::simulate_image_batch;
use crate::image::ExecImage;
use crate::pipeline::{simulate, simulate_image, PipelineConfig, PipelineResult};
use bsg_ir::Program;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The instruction-set architecture a machine executes (mirrors the compiler
/// crate's `TargetIsa`; kept separate so the microarchitecture substrate does
/// not depend on the compiler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineIsa {
    /// 32-bit x86.
    X86,
    /// x86-64.
    X86_64,
    /// IA-64 (EPIC).
    Ia64,
}

impl fmt::Display for MachineIsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MachineIsa::X86 => "x86",
            MachineIsa::X86_64 => "x86_64",
            MachineIsa::Ia64 => "IA64",
        };
        write!(f, "{s}")
    }
}

/// A machine under study (one row of Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable machine name as used in the paper.
    pub name: String,
    /// ISA the machine executes.
    pub isa: MachineIsa,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Short description (the "description" column of Table III).
    pub description: String,
    /// Pipeline/cache model.
    pub pipeline: PipelineConfig,
}

impl MachineConfig {
    /// The five machines of Table III.
    pub fn table3() -> Vec<MachineConfig> {
        vec![
            MachineConfig {
                name: "Pentium 4, 3GHz".into(),
                isa: MachineIsa::X86,
                freq_ghz: 3.0,
                description: "Pentium 4 at 3GHz w/ 1MB L2".into(),
                // Long pipeline: narrow sustained width, high mispredict penalty.
                pipeline: PipelineConfig::out_of_order(2, 96, 16, 1024, 24),
            },
            MachineConfig {
                name: "Core 2".into(),
                isa: MachineIsa::X86_64,
                freq_ghz: 2.2,
                description: "Core 2 at 2.2GHz w/ 2MB L2".into(),
                pipeline: PipelineConfig::out_of_order(4, 96, 32, 2048, 15),
            },
            MachineConfig {
                name: "Pentium 4, 2.8GHz".into(),
                isa: MachineIsa::X86,
                freq_ghz: 2.8,
                description: "Pentium 4 at 2.8GHz w/ 1MB L2".into(),
                pipeline: PipelineConfig::out_of_order(2, 96, 16, 1024, 24),
            },
            MachineConfig {
                name: "Itanium 2".into(),
                isa: MachineIsa::Ia64,
                freq_ghz: 0.9,
                description: "Itanium 2 at 900MHz w/ 256KB L2".into(),
                pipeline: PipelineConfig::epic(6, 16, 256),
            },
            MachineConfig {
                name: "Core i7".into(),
                isa: MachineIsa::X86_64,
                freq_ghz: 2.67,
                description: "Core i7 at 2.67GHz w/ 8MB L2".into(),
                pipeline: PipelineConfig::out_of_order(4, 160, 32, 8192, 14),
            },
        ]
    }

    /// The extended machine roster: Table III's five machines plus two
    /// config-space probes the batched path makes near-free (ROADMAP's
    /// scenario item) — a wider out-of-order x86-64 part and an in-order
    /// embedded x86 core.  The legacy five stay first, in Table III order,
    /// so extended sweeps are supersets of the paper's.
    pub fn table3_extended() -> Vec<MachineConfig> {
        let mut machines = Self::table3();
        machines.push(MachineConfig {
            name: "Xeon X5680".into(),
            isa: MachineIsa::X86_64,
            freq_ghz: 3.33,
            description: "6-wide Xeon at 3.33GHz w/ 12MB L2".into(),
            pipeline: PipelineConfig::out_of_order(6, 224, 32, 12288, 14),
        });
        machines.push(MachineConfig {
            name: "Atom N270".into(),
            isa: MachineIsa::X86,
            freq_ghz: 1.6,
            description: "in-order Atom at 1.6GHz w/ 512KB L2".into(),
            // The EPIC constructor is the in-order model; 2-wide here.
            pipeline: PipelineConfig::epic(2, 24, 512),
        });
        machines
    }

    /// Runs a (pre-compiled) program on this machine model.
    pub fn run(&self, program: &Program) -> MachineResult {
        let timing = simulate(program, self.pipeline);
        self.result_of(timing)
    }

    /// [`run`](Self::run) over a prebuilt [`ExecImage`] (amortizes predecode
    /// when the same compiled artifact is timed on several machines).
    ///
    /// The pipeline model is a heavyweight observer, so `simulate_image`
    /// automatically runs the image's unfused twin — callers keep handing
    /// over the store's (fused) image and the right dispatch loop is chosen
    /// here, not at every call site.
    pub fn run_image(&self, image: &ExecImage) -> MachineResult {
        self.result_of(simulate_image(image, self.pipeline))
    }

    /// Times one compiled image on **many** machine models with a single
    /// functional execution ([`simulate_image_batch`]): each element is
    /// bit-identical to the corresponding [`run_image`](Self::run_image)
    /// call, at roughly the cost of one.  Callers group machines by ISA
    /// themselves — every machine in the batch times the *same* image, so
    /// the grouping decision (which machines may legally share a binary)
    /// stays with the layer that compiles.
    pub fn run_batch(machines: &[MachineConfig], image: &ExecImage) -> Vec<MachineResult> {
        let configs: Vec<PipelineConfig> = machines.iter().map(|m| m.pipeline).collect();
        machines
            .iter()
            .zip(simulate_image_batch(image, &configs))
            .map(|(m, timing)| m.result_of(timing))
            .collect()
    }

    fn result_of(&self, timing: PipelineResult) -> MachineResult {
        MachineResult {
            machine: self.name.clone(),
            time_ns: timing.cycles as f64 / self.freq_ghz,
            timing,
        }
    }
}

/// The outcome of running a program on a machine model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineResult {
    /// Machine name.
    pub machine: String,
    /// Wall-clock execution time in nanoseconds.
    pub time_ns: f64,
    /// Pipeline-level details.
    pub timing: PipelineResult,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_ir::program::{Function, Global, Program};
    use bsg_ir::types::Ty;
    use bsg_ir::visa::{Address, BinOp, Inst, Operand, Terminator};

    fn small_loop() -> Program {
        let mut p = Program::new();
        let g = p.add_global(Global::zeroed("d", 2048));
        let mut f = Function::new("main");
        let i = f.fresh_reg();
        let v = f.fresh_reg();
        let c = f.fresh_reg();
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        f.blocks[0].insts = vec![Inst::Mov {
            dst: i,
            src: Operand::ImmInt(0),
        }];
        f.blocks[0].term = Terminator::Jump(header);
        f.blocks[header.index()].insts = vec![Inst::Bin {
            op: BinOp::Lt,
            ty: Ty::Int,
            dst: c,
            lhs: i.into(),
            rhs: Operand::ImmInt(4000),
        }];
        f.blocks[header.index()].term = Terminator::Branch {
            cond: c,
            taken: body,
            not_taken: exit,
        };
        f.blocks[body.index()].insts = vec![
            Inst::Load {
                dst: v,
                addr: Address::global_indexed(g, 0, i, 1),
                ty: Ty::Int,
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: v,
                lhs: v.into(),
                rhs: i.into(),
            },
            Inst::Store {
                src: v.into(),
                addr: Address::global_indexed(g, 0, i, 1),
                ty: Ty::Int,
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: i,
                lhs: i.into(),
                rhs: Operand::ImmInt(1),
            },
        ];
        f.blocks[body.index()].term = Terminator::Jump(header);
        f.blocks[exit.index()].term = Terminator::Return(Some(i.into()));
        p.add_function(f);
        p
    }

    #[test]
    fn table3_has_the_papers_five_machines_and_three_isas() {
        let machines = MachineConfig::table3();
        assert_eq!(machines.len(), 5);
        let isas: std::collections::HashSet<_> = machines.iter().map(|m| m.isa).collect();
        assert_eq!(isas.len(), 3);
        assert!(machines.iter().any(|m| m.name.contains("Itanium")));
        assert!(machines.iter().any(|m| m.name.contains("Core i7")));
        let itanium = machines.iter().find(|m| m.isa == MachineIsa::Ia64).unwrap();
        assert!(
            itanium.pipeline.in_order,
            "the Itanium model is in-order EPIC"
        );
    }

    #[test]
    fn faster_clock_means_lower_time_for_the_same_microarchitecture() {
        let machines = MachineConfig::table3();
        let p4_3 = machines
            .iter()
            .find(|m| m.name == "Pentium 4, 3GHz")
            .unwrap();
        let p4_28 = machines
            .iter()
            .find(|m| m.name == "Pentium 4, 2.8GHz")
            .unwrap();
        let prog = small_loop();
        let t3 = p4_3.run(&prog);
        let t28 = p4_28.run(&prog);
        assert_eq!(t3.timing.cycles, t28.timing.cycles, "identical pipelines");
        assert!(t3.time_ns < t28.time_ns, "the 3GHz part finishes sooner");
    }

    #[test]
    fn core_i7_outperforms_the_itanium_on_unscheduled_code() {
        // This mirrors the overall ranking of Figure 11: Core i7 fastest,
        // Itanium 2 slowest (low clock, in-order).
        let machines = MachineConfig::table3();
        let i7 = machines.iter().find(|m| m.name == "Core i7").unwrap();
        let itanium = machines.iter().find(|m| m.name == "Itanium 2").unwrap();
        let prog = small_loop();
        assert!(i7.run(&prog).time_ns < itanium.run(&prog).time_ns);
    }

    #[test]
    fn machine_result_reports_time_and_name() {
        let machines = MachineConfig::table3();
        let r = machines[0].run(&small_loop());
        assert!(r.time_ns > 0.0);
        assert_eq!(r.machine, machines[0].name);
        assert!(MachineIsa::Ia64.to_string().contains("IA64"));
    }
}
