//! Branch predictors.
//!
//! The paper evaluates branch behaviour with a *hybrid* predictor combining a
//! bimodal component and a history-based component (§IV, PTLSim
//! configuration); Figure 9 reports prediction accuracy for original and
//! synthetic workloads.  This module provides [`Bimodal`], [`GShare`] and the
//! meta-chooser [`Hybrid`] built from both, plus a small observer that
//! measures accuracy over an execution.

use crate::exec::{InstSite, Observer};
use serde::{Deserialize, Serialize};

/// A branch's identity as seen by the predictors: the dense site id assigned
/// by the program's [`ExecImage`](crate::image::ExecImage).  Using the dense
/// id (rather than the three-field [`InstSite`]) keeps table indexing to one
/// multiply on the simulation hot path.
pub type BranchSite = u32;

/// A 2-bit saturating counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Counter2(u8);

impl Counter2 {
    /// A counter initialized to "weakly taken".
    pub fn weakly_taken() -> Self {
        Counter2(2)
    }

    /// The predicted direction.
    pub fn predict(self) -> bool {
        self.0 >= 2
    }

    /// Updates toward the actual outcome.
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// A branch-direction predictor.
pub trait Predictor {
    /// Predicts the direction of the branch at `site`.
    fn predict(&self, site: BranchSite) -> bool;
    /// Informs the predictor of the actual outcome.
    fn update(&mut self, site: BranchSite, taken: bool);

    /// Predicts, updates, and reports whether the prediction was correct.
    fn predict_and_update(&mut self, site: BranchSite, taken: bool) -> bool {
        let p = self.predict(site);
        self.update(site, taken);
        p == taken
    }
}

fn site_hash(site: BranchSite) -> u64 {
    // A cheap deterministic mix of the static branch location.
    u64::from(site).wrapping_mul(0x9E3779B97F4A7C15)
}

/// Bimodal predictor: a table of 2-bit counters indexed by the branch site.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<Counter2>,
}

impl Bimodal {
    /// Creates a predictor with `entries` counters (rounded up to a power of two).
    pub fn new(entries: usize) -> Self {
        Bimodal {
            table: vec![Counter2::weakly_taken(); entries.next_power_of_two().max(16)],
        }
    }

    fn index(&self, site: BranchSite) -> usize {
        (site_hash(site) as usize) & (self.table.len() - 1)
    }
}

impl Predictor for Bimodal {
    fn predict(&self, site: BranchSite) -> bool {
        self.table[self.index(site)].predict()
    }
    fn update(&mut self, site: BranchSite, taken: bool) {
        let i = self.index(site);
        self.table[i].update(taken);
    }
}

/// GShare predictor: counters indexed by the site hash xor the global history.
#[derive(Debug, Clone)]
pub struct GShare {
    table: Vec<Counter2>,
    history: u64,
    history_bits: u32,
}

impl GShare {
    /// Creates a predictor with `entries` counters and `history_bits` of global history.
    pub fn new(entries: usize, history_bits: u32) -> Self {
        GShare {
            table: vec![Counter2::weakly_taken(); entries.next_power_of_two().max(16)],
            history: 0,
            history_bits: history_bits.min(24),
        }
    }

    fn index(&self, site: BranchSite) -> usize {
        let mask = (1u64 << self.history_bits) - 1;
        ((site_hash(site) ^ (self.history & mask)) as usize) & (self.table.len() - 1)
    }
}

impl Predictor for GShare {
    fn predict(&self, site: BranchSite) -> bool {
        self.table[self.index(site)].predict()
    }
    fn update(&mut self, site: BranchSite, taken: bool) {
        let i = self.index(site);
        self.table[i].update(taken);
        self.history = (self.history << 1) | taken as u64;
    }
}

/// Hybrid predictor: a meta table of 2-bit counters chooses, per branch,
/// between the bimodal and the history-based component (the paper's PTLSim
/// configuration).
#[derive(Debug, Clone)]
pub struct Hybrid {
    bimodal: Bimodal,
    gshare: GShare,
    meta: Vec<Counter2>,
}

impl Hybrid {
    /// Creates a hybrid predictor with `entries` counters per component.
    pub fn new(entries: usize) -> Self {
        Hybrid {
            bimodal: Bimodal::new(entries),
            gshare: GShare::new(entries, 12),
            meta: vec![Counter2::weakly_taken(); entries.next_power_of_two().max(16)],
        }
    }

    /// The PTLSim-like default configuration (4K entries).
    pub fn default_config() -> Self {
        Hybrid::new(4096)
    }

    fn meta_index(&self, site: BranchSite) -> usize {
        (site_hash(site) as usize) & (self.meta.len() - 1)
    }
}

impl Predictor for Hybrid {
    fn predict(&self, site: BranchSite) -> bool {
        if self.meta[self.meta_index(site)].predict() {
            self.gshare.predict(site)
        } else {
            self.bimodal.predict(site)
        }
    }

    fn update(&mut self, site: BranchSite, taken: bool) {
        let bp = self.bimodal.predict(site);
        let gp = self.gshare.predict(site);
        // Train the chooser toward whichever component was right (only when
        // they disagree).
        if bp != gp {
            let i = self.meta_index(site);
            self.meta[i].update(gp == taken);
        }
        self.bimodal.update(site, taken);
        self.gshare.update(site, taken);
    }

    /// Fused predict + update computing each component's table index once
    /// (the default implementation recomputes them in `update`); this sits on
    /// the pipeline model's per-branch hot path.
    fn predict_and_update(&mut self, site: BranchSite, taken: bool) -> bool {
        let bi = self.bimodal.index(site);
        let gi = self.gshare.index(site);
        let mi = self.meta_index(site);
        let bp = self.bimodal.table[bi].predict();
        let gp = self.gshare.table[gi].predict();
        let p = if self.meta[mi].predict() { gp } else { bp };
        if bp != gp {
            self.meta[mi].update(gp == taken);
        }
        self.bimodal.table[bi].update(taken);
        self.gshare.table[gi].update(taken);
        self.gshare.history = (self.gshare.history << 1) | taken as u64;
        p == taken
    }
}

/// Accuracy statistics of a predictor over an execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Conditional branches executed.
    pub branches: u64,
    /// Correct predictions.
    pub correct: u64,
}

impl BranchStats {
    /// Prediction accuracy in `[0, 1]` (1.0 when no branches executed).
    pub fn accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            self.correct as f64 / self.branches as f64
        }
    }

    /// Misprediction rate in `[0, 1]`.
    pub fn misprediction_rate(&self) -> f64 {
        1.0 - self.accuracy()
    }
}

/// An observer that measures a predictor's accuracy over an execution.
pub struct PredictorObserver<P> {
    /// The predictor under evaluation.
    pub predictor: P,
    /// Accumulated statistics.
    pub stats: BranchStats,
}

impl<P: Predictor> PredictorObserver<P> {
    /// Wraps a predictor.
    pub fn new(predictor: P) -> Self {
        PredictorObserver {
            predictor,
            stats: BranchStats::default(),
        }
    }
}

impl<P: Predictor> Observer for PredictorObserver<P> {
    fn on_branch(&mut self, _site: InstSite, site_id: u32, taken: bool) {
        self.stats.branches += 1;
        if self.predictor.predict_and_update(site_id, taken) {
            self.stats.correct += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u32) -> BranchSite {
        n
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter2::default();
        assert!(!c.predict());
        for _ in 0..10 {
            c.update(true);
        }
        assert!(c.predict());
        c.update(false);
        assert!(
            c.predict(),
            "one not-taken does not flip a saturated counter"
        );
        c.update(false);
        assert!(!c.predict());
    }

    #[test]
    fn bimodal_learns_biased_branches() {
        let mut p = Bimodal::new(1024);
        let mut correct = 0;
        for i in 0..1000 {
            if p.predict_and_update(site(1), true) {
                correct += 1;
            }
            let _ = i;
        }
        assert!(
            correct >= 990,
            "always-taken branch should be almost perfectly predicted"
        );
    }

    #[test]
    fn bimodal_struggles_with_alternating_branches() {
        let mut p = Bimodal::new(1024);
        let mut correct = 0;
        for i in 0..1000 {
            if p.predict_and_update(site(2), i % 2 == 0) {
                correct += 1;
            }
        }
        assert!(
            correct <= 600,
            "alternating branch defeats a bimodal predictor: {correct}"
        );
    }

    #[test]
    fn gshare_learns_short_periodic_patterns() {
        let mut p = GShare::new(4096, 8);
        let mut correct_late = 0;
        for i in 0..4000 {
            let taken = i % 3 == 0;
            let ok = p.predict_and_update(site(3), taken);
            if i >= 2000 && ok {
                correct_late += 1;
            }
        }
        assert!(
            correct_late as f64 / 2000.0 > 0.95,
            "gshare should lock onto a period-3 pattern: {correct_late}"
        );
    }

    #[test]
    fn hybrid_is_at_least_as_good_as_bimodal_on_mixed_behaviour() {
        let mut hybrid = Hybrid::default_config();
        let mut bimodal = Bimodal::new(4096);
        let mut h_ok = 0u64;
        let mut b_ok = 0u64;
        for i in 0..6000u64 {
            // Branch 1: strongly biased. Branch 2: period 4 pattern.
            let (s, taken) = if i % 2 == 0 {
                (site(10), true)
            } else {
                (site(11), (i / 2) % 4 == 0)
            };
            if hybrid.predict_and_update(s, taken) {
                h_ok += 1;
            }
            if bimodal.predict_and_update(s, taken) {
                b_ok += 1;
            }
        }
        assert!(h_ok >= b_ok, "hybrid {h_ok} vs bimodal {b_ok}");
    }

    #[test]
    fn stats_accuracy() {
        let s = BranchStats {
            branches: 200,
            correct: 150,
        };
        assert!((s.accuracy() - 0.75).abs() < 1e-12);
        assert!((s.misprediction_rate() - 0.25).abs() < 1e-12);
        assert_eq!(BranchStats::default().accuracy(), 1.0);
    }
}
