//! The predecoded execution image.
//!
//! [`ExecImage`] flattens a [`Program`] into contiguous arrays once, so the
//! executor and every observer work with dense integer indices instead of
//! chasing the nested `Program -> Function -> Block -> Inst` representation
//! and hashing `(FuncId, BlockId, index)` triples on the hot path:
//!
//! * every static instruction *and* terminator becomes one [`Step`] in a flat
//!   array; the array index is the instruction's **dense site id** (a `u32`),
//!   which the executor passes to observers in every event;
//! * a parallel [`SiteMeta`] table predecodes what observers would otherwise
//!   re-derive per dynamic instruction: the [`InstClass`], the destination
//!   register and up to three source registers (fixed arity — no `Vec` from
//!   [`Inst::uses`]), plus the original [`InstSite`] for converting results
//!   back to serializable keys;
//! * basic blocks and static CFG edges get dense program-wide indices too, so
//!   profile collectors can count block executions and edge traversals in
//!   flat vectors;
//! * control-flow targets are resolved to step indices (program counters) at
//!   build time, so taken branches are a single integer assignment.
//!
//! # The untagged register file
//!
//! Decode runs the [`crate::typing`] inference first and assigns every
//! register to one of three banks: a raw `i64` bank, a raw `f64` bank, or the
//! tagged `Value` bank for registers whose type is not statically known.
//! Frame slots get the same treatment **per slot**: each function carries a
//! slot-bank table, statically-addressed accesses resolve their slot and
//! bank at decode (lowering to untagged [`Step::LoadFI`] / [`Step::LoadFF`] /
//! [`Step::StoreFI`] / [`Step::StoreFF`] when the banks line up), and
//! register-indexed accesses consult the table at run time.  Steps whose
//! operands and destination all live in untagged banks lower to dedicated
//! variants ([`IntAlu`], [`Step::FloatAlu`], ...) that never touch a `Value`
//! tag; everything else lowers to general variants that read and write
//! registers through the per-function bank table, preserving exact tagged
//! semantics.
//!
//! # Superinstruction fusion
//!
//! With `fuse` enabled (the default), a post-pass walks every basic block and
//! fuses common adjacent step pairs into single dispatch points:
//!
//! * two adjacent untagged integer ALU steps ([`Step::IntPair`]);
//! * an integer ALU feeding the block's conditional branch
//!   ([`Step::IntCmpBr`]) — every counted-loop header;
//! * an integer ALU followed by the block's unconditional jump
//!   ([`Step::IntAluJump`]) — every loop latch;
//! * an untagged global load adjacent to an integer ALU
//!   ([`Step::LoadGIntAlu`] / [`Step::IntAluLoadG`]) — address-generation and
//!   load-consume idioms;
//! * untagged **frame-slot** loads/stores adjacent to their ALU
//!   ([`Step::LoadFIntAlu`], [`Step::IntAluStoreF`], [`Step::LoadFFloatAlu`],
//!   [`Step::FloatAluStoreF`]) and the three-step read-modify-write shape
//!   ([`Step::LoadFAluStoreF`] / [`Step::LoadFFAluStoreFF`]) — `-O0` reloads
//!   every scalar before use and spills it after every def, so frame-slot
//!   traffic dominates `-O0` loop bodies.
//!
//! Fusion never changes observable semantics: the fused step replays each
//! constituent's budget/halt protocol and observer events exactly as the
//! unfused sequence would (the differential suite compares all three engines
//! — legacy, unfused, fused — event by event).  The consumed constituent's
//! slot keeps its original step, which is unreachable (branch targets only
//! enter blocks at their first step), so the site tables are untouched.
//!
//! Building the image costs one pass over the program and is reused across
//! runs: initial global values and the memory layout are captured so repeated
//! executions (cache sweeps, pipeline sweeps, differential tests) skip all
//! per-run setup except copying the initial memory.
//!
//! Decode also **validates** every dense index the executor will use (register
//! ids against `num_regs`, call targets against the function table, memory
//! references against non-empty globals, and — via [`frame_slot`] — every
//! statically-resolved frame-slot index against the slot-bank table length
//! `frame_words.max(1)`), which is what makes the executor's unchecked
//! indexing core sound — see the safety discussion in [`crate::exec`].

use crate::exec::InstSite;
use crate::typing::{infer, RegBank};
use bsg_ir::eval::{eval_bin, eval_un};
use bsg_ir::program::MemoryLayout;
use bsg_ir::types::{BlockId, FuncId, Reg, Ty, Value};
use bsg_ir::visa::{Address, BinOp, Inst, InstClass, MemBase, Operand, Terminator, UnOp};
use bsg_ir::Program;

/// A resolved control-flow target: where execution continues and which dense
/// indices to report to observers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EdgeTarget {
    /// Step index execution continues at (first step of the target block).
    pub pc: u32,
    /// Target block id (for observer callbacks).
    pub block: BlockId,
    /// Dense program-wide index of the target block.
    pub block_idx: u32,
    /// Dense program-wide index of this static CFG edge.
    pub edge_idx: u32,
}

/// A predecoded reference to a global-array location: the base byte address
/// and array length are resolved at image-build time, so the executor does a
/// bounds branch instead of an `i64` division (`rem_euclid`) on the
/// overwhelmingly common in-bounds access.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GlobalMem {
    /// First element of this array within the image's flattened global store.
    pub start: u32,
    /// Array length in elements (validated ≥ 1 at decode).
    pub len: u32,
    /// `len - 1` when the array length is a power of two, else `u64::MAX`.
    /// For power-of-two lengths, masking a two's-complement element index is
    /// exactly `rem_euclid` for every `i64` input, so the wrap costs one
    /// `and` instead of a division.
    pub mask: u64,
    /// Base byte address from the program's memory layout.
    pub base_byte: u64,
    /// Constant word offset.
    pub offset: i64,
    /// Index register, `u32::MAX` when absent.
    pub index: u32,
    /// Bank of the index register (meaningless when absent).
    pub index_bank: RegBank,
    /// Scale applied to the index register.
    pub scale: i64,
}

/// A predecoded reference to a frame-slot location.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FrameMem {
    /// Constant word offset.
    pub offset: i64,
    /// Index register, `u32::MAX` when absent.
    pub index: u32,
    /// Bank of the index register (meaningless when absent).
    pub index_bank: RegBank,
    /// Scale applied to the index register.
    pub scale: i64,
}

/// A **statically-addressed** frame slot, fully resolved at decode: the
/// wrapped slot index (validated `< frame_words.max(1)`, which is what the
/// executor sizes every slot bank to) plus the unwrapped element index that
/// the byte address observers see is derived from.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FrameSlot {
    /// Wrapped slot index (`elem.rem_euclid(frame_words.max(1))`).
    pub slot: u32,
    /// Unwrapped element index (for `MemoryLayout::frame_addr`).
    pub elem: i64,
}

/// Resolves a static frame offset to its slot, asserting the decode-time
/// invariant the executor's unchecked slot indexing relies on.
fn frame_slot(offset: i64, nslots: u32) -> FrameSlot {
    let slot = offset.rem_euclid(i64::from(nslots.max(1))) as u32;
    assert!(
        slot < nslots.max(1),
        "decoded frame slot {slot} out of range ({nslots} slots)"
    );
    FrameSlot { slot, elem: offset }
}

/// Source of an untagged integer ALU operand.
#[derive(Debug, Clone, Copy)]
pub(crate) enum IntSrc {
    /// Register in the `i64` bank.
    Reg(u32),
    /// Immediate.
    Imm(i64),
}

/// One untagged integer ALU micro-operation: `ints[dst] = lhs op rhs`.
/// The common currency of the fusion pass — every fused integer
/// superinstruction is built from these.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IntAlu {
    /// Operation (semantics of `exec::int_bin`).
    pub op: BinOp,
    /// Destination register (int bank).
    pub dst: u32,
    /// Left operand.
    pub lhs: IntSrc,
    /// Right operand.
    pub rhs: IntSrc,
}

/// Source of an untagged float ALU operand.  Integer-bank registers and
/// integer immediates are converted with `as f64`, which is exactly
/// `Value::as_float` for values the type analysis proved to be integers.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FloatSrc {
    /// Register in the `f64` bank.
    F(u32),
    /// Register in the `i64` bank (converted on read).
    I(u32),
    /// Immediate (integer immediates pre-converted at decode).
    Imm(f64),
}

/// One untagged float operation: `lhs op rhs` over `f64` operands.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FloatAlu {
    /// Operation (arithmetic for [`Step::FloatAlu`], comparison for
    /// [`Step::FloatCmp`]).
    pub op: BinOp,
    /// Destination register (float bank for arithmetic, int bank for
    /// comparisons).
    pub dst: u32,
    /// Left operand.
    pub lhs: FloatSrc,
    /// Right operand.
    pub rhs: FloatSrc,
}

/// One predecoded instruction or terminator.
///
/// Predecoding resolves every dispatch that is static: operand banks are
/// resolved through the type analysis, loads/stores are split by memory base
/// with bounds and base addresses precomputed, and control-flow targets are
/// step indices.  Variants prefixed by their bank discipline (`Int*`, `F*`)
/// never touch a `Value` tag; the general variants (`IntBin`, `FloatBin`,
/// `Un`, `Mov`, ...) go through the per-function bank table and cover every
/// remaining shape exactly.
#[derive(Debug, Clone)]
pub(crate) enum Step {
    /// One untagged integer ALU operation.
    IntAlu(IntAlu),
    /// Fused pair of adjacent untagged integer ALU operations.
    IntPair(IntAlu, IntAlu),
    /// Fused integer ALU + conditional branch on `ints[cond]`.
    IntCmpBr {
        /// The ALU constituent (at this step's site).
        a: IntAlu,
        /// Condition register (int bank; usually `a.dst`).
        cond: u32,
        /// Target when `ints[cond] != 0`.
        taken: EdgeTarget,
        /// Target when `ints[cond] == 0`.
        not_taken: EdgeTarget,
    },
    /// Fused integer ALU + unconditional jump (loop latches).
    IntAluJump {
        /// The ALU constituent.
        a: IntAlu,
        /// Jump target.
        target: EdgeTarget,
    },
    /// Fused triple: two integer ALUs + the block's unconditional jump
    /// (accumulate + induction-step + latch, the classic loop-body tail).
    IntPairJump {
        /// First ALU constituent (at this step's site).
        a: IntAlu,
        /// Second ALU constituent (at site `pc + 1`).
        b: IntAlu,
        /// Jump target (terminator at site `pc + 2`).
        target: EdgeTarget,
    },
    /// Fused untagged global load + integer ALU.
    LoadGIntAlu {
        /// Load destination (int bank).
        dst: u32,
        /// Predecoded memory reference.
        mem: GlobalMem,
        /// The ALU constituent (at site `pc + 1`).
        b: IntAlu,
    },
    /// Fused integer ALU + untagged global load (address generation).
    IntAluLoadG {
        /// The ALU constituent (at this step's site).
        a: IntAlu,
        /// Load destination (int bank).
        dst: u32,
        /// Predecoded memory reference.
        mem: GlobalMem,
    },
    /// Fused untagged frame-slot load + integer ALU.
    LoadFIntAlu {
        /// Load destination (int bank).
        dst: u32,
        /// Loaded slot (int bank).
        s: FrameSlot,
        /// The ALU constituent (at site `pc + 1`).
        b: IntAlu,
    },
    /// Fused integer ALU + untagged frame-slot store.
    IntAluStoreF {
        /// The ALU constituent (at this step's site).
        a: IntAlu,
        /// Stored operand (int-provable).
        src: IntSrc,
        /// Stored slot (int bank).
        s: FrameSlot,
    },
    /// Fused read-modify-write triple: untagged frame load + integer ALU +
    /// untagged frame store — the dominant `-O0` loop-body shape (`-O0`
    /// reloads every scalar before use and spills it after every def).
    LoadFAluStoreF {
        /// Load destination (int bank).
        dst: u32,
        /// Loaded slot (int bank).
        ls: FrameSlot,
        /// The ALU constituent (at site `pc + 1`).
        b: IntAlu,
        /// Stored operand (int-provable; store at site `pc + 2`).
        src: IntSrc,
        /// Stored slot (int bank).
        ss: FrameSlot,
    },
    /// Fused untagged float frame-slot load + float ALU.
    LoadFFloatAlu {
        /// Load destination (float bank).
        dst: u32,
        /// Loaded slot (float bank).
        s: FrameSlot,
        /// The float ALU constituent (at site `pc + 1`).
        b: FloatAlu,
    },
    /// Fused float ALU + untagged float frame-slot store.
    FloatAluStoreF {
        /// The float ALU constituent (at this step's site).
        a: FloatAlu,
        /// Stored operand (float-provable).
        src: FloatSrc,
        /// Stored slot (float bank).
        s: FrameSlot,
    },
    /// Fused pair of adjacent untagged float ALUs (float expression chains:
    /// the multiply-add sequences of DFT/trig bodies).
    FloatPair(FloatAlu, FloatAlu),
    /// Fused untagged int frame load + global load — load the index
    /// variable, then the array element it addresses (`a[i]` at `-O0`).
    LoadFILoadG {
        /// Frame-load destination (int bank).
        dst1: u32,
        /// Loaded slot (int bank).
        s1: FrameSlot,
        /// Global-load destination (site `pc + 1`).
        dst2: u32,
        /// Bank of `dst2`.
        bank2: RegBank,
        /// Predecoded global reference (its index register may be `dst1`).
        mem: GlobalMem,
    },
    /// Fused untagged int frame store + int frame load — the `-O0` statement
    /// boundary (`x = e; ... y ...` spills `x`, then reloads the next
    /// operand).
    StoreFLoadF {
        /// Stored operand (int-provable).
        src: IntSrc,
        /// Stored slot (int bank).
        ss: FrameSlot,
        /// Load destination (int bank; site `pc + 1`).
        dst: u32,
        /// Loaded slot (int bank).
        ls: FrameSlot,
    },
    /// Fused untagged int frame load + global store — load the index (or
    /// stored) variable, then store to the array (`a[i] = e` at `-O0`).
    LoadFIStoreG {
        /// Frame-load destination (int bank).
        dst: u32,
        /// Loaded slot (int bank).
        s: FrameSlot,
        /// Stored operand (site `pc + 1`).
        src: Operand,
        /// Predecoded global reference.
        mem: GlobalMem,
    },
    /// Fused pair of float ALUs + float frame store (`v = a*b + c*d` tails:
    /// the pair fusion consumes the ALU the store would otherwise fuse with).
    FloatPairStoreF {
        /// First ALU constituent.
        a: FloatAlu,
        /// Second ALU constituent (site `pc + 1`).
        b: FloatAlu,
        /// Stored operand (float-provable; store at site `pc + 2`).
        src: FloatSrc,
        /// Stored slot (float bank).
        s: FrameSlot,
    },
    /// Fused untagged global load + compare + conditional branch — loop
    /// conditions over array elements (`while (tree[n] != 0)`).
    LoadGCmpBr {
        /// Load destination (int bank).
        dst: u32,
        /// Predecoded global reference.
        mem: GlobalMem,
        /// The compare constituent (at site `pc + 1`).
        a: IntAlu,
        /// Condition register (int bank).
        cond: u32,
        /// Target when `ints[cond] != 0`.
        taken: EdgeTarget,
        /// Target when `ints[cond] == 0`.
        not_taken: EdgeTarget,
    },
    /// Fused untagged float global load + float ALU (`sig[t] * cr`).
    LoadGFloatAlu {
        /// Load destination (float bank).
        dst: u32,
        /// Predecoded global reference.
        mem: GlobalMem,
        /// The float ALU constituent (at site `pc + 1`).
        b: FloatAlu,
    },
    /// Fused pair of adjacent untagged int frame-slot loads (binary-operator
    /// operand reloads: `-O0` loads both variables of `a op b` back to back).
    LoadFPairI {
        /// First load destination (int bank).
        dst1: u32,
        /// First loaded slot (int bank).
        s1: FrameSlot,
        /// Second load destination (int bank; site `pc + 1`).
        dst2: u32,
        /// Second loaded slot (int bank).
        s2: FrameSlot,
    },
    /// Fused pair of adjacent untagged float frame-slot loads.
    LoadFPairF {
        /// First load destination (float bank).
        dst1: u32,
        /// First loaded slot (float bank).
        s1: FrameSlot,
        /// Second load destination (float bank; site `pc + 1`).
        dst2: u32,
        /// Second loaded slot (float bank).
        s2: FrameSlot,
    },
    /// Fused untagged frame load + compare + conditional branch — the `-O0`
    /// while-header shape (`while (i < n)` reloads `i` before the compare).
    LoadFCmpBr {
        /// Load destination (int bank).
        dst: u32,
        /// Loaded slot (int bank).
        s: FrameSlot,
        /// The compare constituent (at site `pc + 1`).
        a: IntAlu,
        /// Condition register (int bank).
        cond: u32,
        /// Target when `ints[cond] != 0`.
        taken: EdgeTarget,
        /// Target when `ints[cond] == 0`.
        not_taken: EdgeTarget,
    },
    /// Fused untagged int frame store + the block's unconditional jump (the
    /// `-O0` loop-latch shape: spill the induction variable, jump back).
    StoreFIJump {
        /// Stored operand (int-provable).
        src: IntSrc,
        /// Stored slot (int bank).
        s: FrameSlot,
        /// Jump target (terminator at site `pc + 1`).
        target: EdgeTarget,
    },
    /// Float counterpart of [`Step::StoreFIJump`].
    StoreFFJump {
        /// Stored operand (float-provable).
        src: FloatSrc,
        /// Stored slot (float bank).
        s: FrameSlot,
        /// Jump target (terminator at site `pc + 1`).
        target: EdgeTarget,
    },
    /// Fused float frame load + float unary.
    LoadFUnFF {
        /// Load destination (float bank).
        dst: u32,
        /// Loaded slot (float bank).
        s: FrameSlot,
        /// Unary operation (the `un_ff` subset; at site `pc + 1`).
        op: UnOp,
        /// Unary destination (float bank).
        udst: u32,
        /// Unary source (float bank).
        usrc: u32,
    },
    /// Fused float unary + float frame store.
    UnFFStoreF {
        /// Unary operation (the `un_ff` subset).
        op: UnOp,
        /// Unary destination (float bank).
        udst: u32,
        /// Unary source (float bank).
        usrc: u32,
        /// Stored operand (float-provable; store at site `pc + 1`).
        src: FloatSrc,
        /// Stored slot (float bank).
        s: FrameSlot,
    },
    /// Fused triple: float frame load + float unary + float frame store —
    /// `y = f(x)` over float `-O0` locals (`cr = cos(ang)` and friends).
    LoadFUnFFStoreFF {
        /// Load destination (float bank).
        dst: u32,
        /// Loaded slot (float bank).
        ls: FrameSlot,
        /// Unary operation (the `un_ff` subset; at site `pc + 1`).
        op: UnOp,
        /// Unary destination (float bank).
        udst: u32,
        /// Unary source (float bank).
        usrc: u32,
        /// Stored operand (float-provable; store at site `pc + 2`).
        ssrc: FloatSrc,
        /// Stored slot (float bank).
        ss: FrameSlot,
    },
    /// Fused float read-modify-write triple: float frame load + float ALU +
    /// float frame store (`x = x op e` on a float `-O0` local).
    LoadFFAluStoreFF {
        /// Load destination (float bank).
        dst: u32,
        /// Loaded slot (float bank).
        ls: FrameSlot,
        /// The float ALU constituent (at site `pc + 1`).
        b: FloatAlu,
        /// Stored operand (float-provable; store at site `pc + 2`).
        src: FloatSrc,
        /// Stored slot (float bank).
        ss: FrameSlot,
    },
    /// Untagged float arithmetic (`Add`/`Sub`/`Mul`/`Div`/`Rem`), `f64` in,
    /// `f64` out.
    FloatAlu(FloatAlu),
    /// Untagged float comparison, `f64` in, `i64` (0/1) out.
    FloatCmp(FloatAlu),
    /// Untagged unary: `i64` in, `i64` out.
    UnII {
        /// Operation (one of the int-to-int subset).
        op: UnOp,
        /// Destination register (int bank).
        dst: u32,
        /// Source register (int bank).
        src: u32,
    },
    /// Untagged unary: `f64` in, `f64` out.
    UnFF {
        /// Operation (one of the float-to-float subset).
        op: UnOp,
        /// Destination register (float bank).
        dst: u32,
        /// Source register (float bank).
        src: u32,
    },
    /// Untagged unary: `i64` in, `f64` out — the `un_ff` operation subset
    /// applied to a proven-int source (`ToFloat(k)`, `sqrt` of an int, ...).
    /// Reading the int bank with `as f64` is exactly `Value::as_float` on a
    /// proven-int value, so this matches `eval_un` bit for bit.
    UnIF {
        /// Operation (one of the float-result subset accepted by `un_is_ff`).
        op: UnOp,
        /// Destination register (float bank).
        dst: u32,
        /// Source register (int bank).
        src: u32,
    },
    /// `ints[dst] = imm`.
    IMovI {
        /// Destination register (int bank).
        dst: u32,
        /// Immediate.
        imm: i64,
    },
    /// `floats[dst] = imm`.
    FMovI {
        /// Destination register (float bank).
        dst: u32,
        /// Immediate.
        imm: f64,
    },
    /// `ints[dst] = ints[src]`.
    IMovRR {
        /// Destination register (int bank).
        dst: u32,
        /// Source register (int bank).
        src: u32,
    },
    /// `floats[dst] = floats[src]`.
    FMovRR {
        /// Destination register (float bank).
        dst: u32,
        /// Source register (float bank).
        src: u32,
    },
    /// `dst = lhs op rhs` on integers, general operand/bank shapes.
    IntBin {
        /// Operation.
        op: BinOp,
        /// Destination register (any bank).
        dst: u32,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = lhs op rhs` on floats, general operand/bank shapes.
    FloatBin {
        /// Operation.
        op: BinOp,
        /// Destination register (any bank).
        dst: u32,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = op src`, general operand/bank shapes.
    Un {
        /// Operation.
        op: UnOp,
        /// Operation type.
        ty: Ty,
        /// Destination register (any bank).
        dst: u32,
        /// Source operand.
        src: Operand,
    },
    /// `dst = src`, general operand/bank shapes.
    Mov {
        /// Destination register (any bank).
        dst: u32,
        /// Source operand.
        src: Operand,
    },
    /// `dst = global[elem]`.
    LoadGlobal {
        /// Destination register.
        dst: u32,
        /// Bank of `dst` (resolves the write without a table lookup).
        bank: RegBank,
        /// Predecoded memory reference.
        mem: GlobalMem,
    },
    /// `ints[dst] = int_slots[s]` — untagged static frame load.
    LoadFI {
        /// Destination register (int bank).
        dst: u32,
        /// Loaded slot (int bank).
        s: FrameSlot,
    },
    /// `floats[dst] = float_slots[s]` — untagged static frame load.
    LoadFF {
        /// Destination register (float bank).
        dst: u32,
        /// Loaded slot (float bank).
        s: FrameSlot,
    },
    /// `int_slots[s] = src` — untagged static frame store.
    StoreFI {
        /// Stored operand (int-provable).
        src: IntSrc,
        /// Stored slot (int bank).
        s: FrameSlot,
    },
    /// `float_slots[s] = src` — untagged static frame store.
    StoreFF {
        /// Stored operand (float-provable).
        src: FloatSrc,
        /// Stored slot (float bank).
        s: FrameSlot,
    },
    /// `dst = frame[elem]`, general shapes: register-indexed (the slot and
    /// its bank resolve at run time through the per-slot bank table) or a
    /// static slot whose bank combination has no untagged variant.
    LoadFrame {
        /// Destination register.
        dst: u32,
        /// Bank of `dst`.
        bank: RegBank,
        /// Predecoded memory reference.
        mem: FrameMem,
    },
    /// `global[elem] = src`.
    StoreGlobal {
        /// Stored operand.
        src: Operand,
        /// Predecoded memory reference.
        mem: GlobalMem,
    },
    /// `frame[elem] = src`.
    StoreFrame {
        /// Stored operand.
        src: Operand,
        /// Predecoded memory reference.
        mem: FrameMem,
    },
    /// Call `func`; arguments live in the image's argument pool at
    /// `args_start..args_start + args_len`; `dst == u32::MAX` means the
    /// return value is discarded.
    Call {
        /// Callee function index (validated against the function table).
        func: u32,
        /// First argument in the pool.
        args_start: u32,
        /// Argument count.
        args_len: u32,
        /// Destination register, `u32::MAX` when unused.
        dst: u32,
    },
    /// Emit `src` to the output stream.
    Print {
        /// Printed operand.
        src: Operand,
    },
    /// No operation.
    Nop,
    /// Unconditional transfer.
    Jump(EdgeTarget),
    /// Conditional transfer on `cond` being non-zero.
    Branch {
        /// Condition register.
        cond: u32,
        /// Bank of `cond`.
        bank: RegBank,
        /// Target when the condition is non-zero.
        taken: EdgeTarget,
        /// Target when the condition is zero.
        not_taken: EdgeTarget,
    },
    /// Return, optionally with a value.
    Return {
        /// Returned operand.
        value: Option<Operand>,
    },
}

impl Step {
    /// Variant name for diagnostics ([`ExecImage::step_histogram`]).
    pub(crate) fn variant_name(&self) -> &'static str {
        match self {
            Step::IntAlu(_) => "IntAlu",
            Step::IntPair(..) => "IntPair",
            Step::IntCmpBr { .. } => "IntCmpBr",
            Step::IntAluJump { .. } => "IntAluJump",
            Step::IntPairJump { .. } => "IntPairJump",
            Step::LoadGIntAlu { .. } => "LoadGIntAlu",
            Step::IntAluLoadG { .. } => "IntAluLoadG",
            Step::LoadFIntAlu { .. } => "LoadFIntAlu",
            Step::IntAluStoreF { .. } => "IntAluStoreF",
            Step::LoadFFloatAlu { .. } => "LoadFFloatAlu",
            Step::FloatAluStoreF { .. } => "FloatAluStoreF",
            Step::FloatPair(..) => "FloatPair",
            Step::LoadFIStoreG { .. } => "LoadFIStoreG",
            Step::FloatPairStoreF { .. } => "FloatPairStoreF",
            Step::LoadGCmpBr { .. } => "LoadGCmpBr",
            Step::LoadFILoadG { .. } => "LoadFILoadG",
            Step::StoreFLoadF { .. } => "StoreFLoadF",
            Step::LoadGFloatAlu { .. } => "LoadGFloatAlu",
            Step::LoadFAluStoreF { .. } => "LoadFAluStoreF",
            Step::LoadFPairI { .. } => "LoadFPairI",
            Step::LoadFPairF { .. } => "LoadFPairF",
            Step::LoadFCmpBr { .. } => "LoadFCmpBr",
            Step::StoreFIJump { .. } => "StoreFIJump",
            Step::StoreFFJump { .. } => "StoreFFJump",
            Step::LoadFUnFF { .. } => "LoadFUnFF",
            Step::UnFFStoreF { .. } => "UnFFStoreF",
            Step::LoadFUnFFStoreFF { .. } => "LoadFUnFFStoreFF",
            Step::LoadFFAluStoreFF { .. } => "LoadFFAluStoreFF",
            Step::FloatAlu(_) => "FloatAlu",
            Step::FloatCmp(_) => "FloatCmp",
            Step::UnII { .. } => "UnII",
            Step::UnFF { .. } => "UnFF",
            Step::UnIF { .. } => "UnIF",
            Step::IMovI { .. } => "IMovI",
            Step::FMovI { .. } => "FMovI",
            Step::IMovRR { .. } => "IMovRR",
            Step::FMovRR { .. } => "FMovRR",
            Step::IntBin { .. } => "IntBin",
            Step::FloatBin { .. } => "FloatBin",
            Step::Un { .. } => "Un",
            Step::Mov { .. } => "Mov",
            Step::LoadFI { .. } => "LoadFI",
            Step::LoadFF { .. } => "LoadFF",
            Step::StoreFI { .. } => "StoreFI",
            Step::StoreFF { .. } => "StoreFF",
            Step::LoadGlobal { .. } => "LoadGlobal",
            Step::LoadFrame { .. } => "LoadFrame",
            Step::StoreGlobal { .. } => "StoreGlobal",
            Step::StoreFrame { .. } => "StoreFrame",
            Step::Call { .. } => "Call",
            Step::Print { .. } => "Print",
            Step::Nop => "Nop",
            Step::Jump(_) => "Jump",
            Step::Branch { .. } => "Branch",
            Step::Return { .. } => "Return",
        }
    }

    /// How many step slots this dispatch point covers (`None`: absorbs the
    /// block's terminator, i.e. covers through end of block).  Must agree
    /// with the executor's `pc` advance per arm.
    pub(crate) fn footprint(&self) -> Option<usize> {
        match self {
            Step::IntPair(..)
            | Step::LoadGIntAlu { .. }
            | Step::IntAluLoadG { .. }
            | Step::LoadFIntAlu { .. }
            | Step::IntAluStoreF { .. }
            | Step::LoadFPairI { .. }
            | Step::LoadFPairF { .. }
            | Step::LoadFUnFF { .. }
            | Step::UnFFStoreF { .. }
            | Step::LoadFFloatAlu { .. }
            | Step::FloatAluStoreF { .. }
            | Step::FloatPair(..)
            | Step::LoadFIStoreG { .. }
            | Step::LoadFILoadG { .. }
            | Step::StoreFLoadF { .. }
            | Step::LoadGFloatAlu { .. } => Some(2),
            Step::LoadFAluStoreF { .. }
            | Step::LoadFFAluStoreFF { .. }
            | Step::FloatPairStoreF { .. }
            | Step::LoadFUnFFStoreFF { .. } => Some(3),
            Step::IntCmpBr { .. }
            | Step::IntAluJump { .. }
            | Step::IntPairJump { .. }
            | Step::LoadFCmpBr { .. }
            | Step::LoadGCmpBr { .. }
            | Step::StoreFIJump { .. }
            | Step::StoreFFJump { .. } => None,
            _ => Some(1),
        }
    }
}

/// Predecoded per-site metadata: everything observers need that is static.
#[derive(Debug, Clone, Copy)]
pub struct SiteMeta {
    /// Instruction classification (terminators classify as
    /// [`InstClass::Branch`], matching the executor's event stream).
    pub class: InstClass,
    /// Destination register, if any.
    pub def: Option<Reg>,
    /// Source registers, fixed arity.  Non-call instructions read at most
    /// three registers (the fourth-and-later arguments of calls are not
    /// tracked here; the timing models never needed them).
    pub uses: [Option<Reg>; 3],
    /// The original static location, for converting dense ids back to
    /// serializable profile keys.
    pub site: InstSite,
}

/// Per-function slice of the image.
#[derive(Debug, Clone)]
pub(crate) struct FuncImage {
    /// Step index of the entry block's first step.
    pub entry_pc: u32,
    /// Entry block id.
    pub entry_block: BlockId,
    /// Dense index of the entry block.
    pub entry_block_idx: u32,
    /// Dense block index of block 0 of this function (block `b` of the
    /// function has dense index `block_idx_base + b`).
    pub block_idx_base: u32,
    /// First step index of every block.
    pub block_pc: Vec<u32>,
    /// Terminator step index of every block.
    pub term_pc: Vec<u32>,
    /// Number of virtual registers.
    pub num_regs: u32,
    /// Registers receiving arguments.
    pub params: Vec<Reg>,
    /// Bank of each register (indexed by register id; length `num_regs`).
    pub banks: Vec<RegBank>,
    /// Bank of each frame slot (length `frame_words.max(1)`; indexed by the
    /// wrapped slot).  Statically-addressed accesses resolve their bank at
    /// decode; register-indexed accesses consult this table at run time.
    pub slot_banks: Vec<RegBank>,
    /// Which slot banks this function's frame actually uses (drives sizing
    /// and zero-filling on frame acquisition).
    pub frame: FrameLayout,
}

/// Slot-bank usage summary of one function's frame.  Only banks that appear
/// in `slot_banks` are ever indexed by a slot, so only those need sizing; the
/// float bank additionally never needs zero-filling (a float slot is only
/// float because every read is preceded by a store).
#[derive(Debug, Clone, Copy)]
pub(crate) struct FrameLayout {
    /// Slot count (`frame_words.max(1)`) — the length every sized slot bank
    /// gets, and the modulus of the executor's wrapping.
    pub nslots: u32,
    /// Some slot lives in the untagged `i64` bank.
    pub has_int: bool,
    /// Some slot lives in the untagged `f64` bank.
    pub has_float: bool,
    /// Some slot lives in the tagged bank.
    pub has_tagged: bool,
    /// Some *int-banked register* may observe its `Int(0)` init, so the
    /// `ints` register bank must be zero-filled on acquisition.  When false,
    /// every read of every int register is provably preceded by a write
    /// (`typing`'s liveness pass), so stale pooled values are unobservable
    /// and the fill is skipped — calls are frequent enough at `-O0` for the
    /// memset to show up.
    pub zero_reg_ints: bool,
    /// Same for the tagged register bank.
    pub zero_reg_tagged: bool,
    /// Same for the int slot bank.
    pub zero_slots_int: bool,
    /// Same for the tagged slot bank.
    pub zero_slots_tagged: bool,
}

/// A program flattened for execution (see the module docs).
#[derive(Debug, Clone)]
pub struct ExecImage {
    pub(crate) steps: Vec<Step>,
    pub(crate) funcs: Vec<FuncImage>,
    pub(crate) call_args: Vec<Operand>,
    sites: Vec<SiteMeta>,
    /// Dense block index -> (function, block).
    block_keys: Vec<(FuncId, BlockId)>,
    /// Dense edge index -> (from, to) dense block indices.
    edge_blocks: Vec<(u32, u32)>,
    pub(crate) entry: u32,
    pub(crate) layout: MemoryLayout,
    /// All global arrays flattened into one backing store (copied once per
    /// run); `global_bounds[g]` is the `(start, len)` slice of global `g`.
    pub(crate) initial_globals: Vec<Value>,
    pub(crate) global_bounds: Vec<(u32, u32)>,
    max_regs: u32,
    /// Number of fused superinstructions (diagnostics / tests).
    fused_steps: u32,
    /// The unfused twin of a fused image (built alongside it by
    /// [`ExecImage::new`]).  Heavyweight observers (pipeline model, full
    /// profiler) measurably *lose* to fusion — the fused arms enlarge the
    /// monomorphized loop and i-cache pressure beats the dispatch savings —
    /// so observer-specialized entry points ([`ExecImage::unfused_twin`])
    /// run the twin while `NullObserver` keeps the fused fast loop.
    pub(crate) unfused: Option<Box<ExecImage>>,
}

fn site_meta(inst: &Inst, site: InstSite) -> SiteMeta {
    let mut uses = [None; 3];
    for (slot, reg) in uses.iter_mut().zip(inst.uses()) {
        *slot = Some(reg);
    }
    SiteMeta {
        class: inst.class(),
        def: inst.def(),
        uses,
        site,
    }
}

/// Whether `eval_un(op, ty, Int(_))` is an `i64 -> i64` function (the
/// [`Step::UnII`] subset; must stay in sync with `exec::un_ii`).
fn un_is_ii(op: UnOp, ty: Ty) -> bool {
    matches!(
        (op, ty),
        (UnOp::Neg, Ty::Int)
            | (UnOp::Abs, Ty::Int)
            | (UnOp::Not, _)
            | (UnOp::LogicalNot, _)
            | (UnOp::ToInt, _)
    )
}

/// Whether `eval_un(op, ty, Float(_))` is an `f64 -> f64` function (the
/// [`Step::UnFF`] subset; must stay in sync with `exec::un_ff`).
fn un_is_ff(op: UnOp, ty: Ty) -> bool {
    matches!(
        (op, ty),
        (UnOp::Neg, Ty::Float)
            | (UnOp::Abs, Ty::Float)
            | (UnOp::ToFloat, _)
            | (UnOp::Sqrt, _)
            | (UnOp::Sin, _)
            | (UnOp::Cos, _)
            | (UnOp::Log, _)
    )
}

fn is_float_arith(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem
    )
}

/// The [`Value`] of a constant operand, if it is one.
fn imm_val(op: &Operand) -> Option<Value> {
    match op {
        Operand::ImmInt(v) => Some(Value::Int(*v)),
        Operand::ImmFloat(v) => Some(Value::Float(*v)),
        _ => None,
    }
}

/// Lowers a decode-time-computed constant (`eval_bin`/`eval_un` over
/// immediate operands — both are pure) into an untagged move when the
/// destination bank matches the constant's tag; `None` keeps the general
/// step, preserving exact tagged semantics.  The site table is untouched, so
/// observers still see the instruction's real class.
fn fold_const(v: Value, dst: u32, bank: impl Fn(u32) -> RegBank) -> Option<Step> {
    match (v, bank(dst)) {
        (Value::Int(imm), RegBank::Int) => Some(Step::IMovI { dst, imm }),
        (Value::Float(imm), RegBank::Float) => Some(Step::FMovI { dst, imm }),
        _ => None,
    }
}

impl ExecImage {
    /// Flattens `program` into an execution image with superinstruction
    /// fusion enabled.  Call targets, block targets, register banks and
    /// global layout are resolved here, once.  An unfused twin is kept
    /// alongside (a clone taken before the in-place fusion pass, so
    /// validation, type inference and decode run once) so heavyweight
    /// observers can be dispatched to the image that is actually faster for
    /// them — see [`ExecImage::unfused_twin`].
    pub fn new(program: &Program) -> Self {
        let mut image = Self::build(program);
        let twin = image.clone();
        image.fused_steps = fuse_blocks(&mut image.steps, &image.funcs);
        image.unfused = Some(Box::new(twin));
        image.verify_on_build();
        image
    }

    /// Flattens `program` without the fusion pass (used by differential
    /// tests and the benchmark harness to isolate fusion's contribution).
    pub fn unfused(program: &Program) -> Self {
        let image = Self::build(program);
        image.verify_on_build();
        image
    }

    /// Under debug assertions or `--cfg bsg_safe_core`, runs the full static
    /// verifier over a freshly decoded image, so every test and safe-core CI
    /// run machine-checks the invariants the unchecked executor assumes.
    /// Compiled out of release builds: verification is decode-time-only and
    /// never touches the execute loop either way.
    #[cfg_attr(not(any(debug_assertions, bsg_safe_core)), allow(dead_code))]
    fn verify_on_build(&self) {
        #[cfg(any(debug_assertions, bsg_safe_core))]
        if let Err(e) = crate::verify::verify_image(self) {
            panic!("bsg-verify rejected freshly decoded image: {e}");
        }
    }

    /// The image heavyweight observers should execute: the unfused twin when
    /// present, else this image itself.  PERF.md §PR-3 documents the
    /// inversion this encodes: with a pipeline model or the full profiler
    /// inlined into the dispatch loop, fusion's larger loop body costs more
    /// in i-cache pressure than it saves in dispatch, so `simulate_image` /
    /// `profile_image` select the unfused form automatically while
    /// `NullObserver` callers keep the fused fast loop.  Site tables, dense
    /// indices and observable behaviour are identical between the twins (the
    /// differential suites prove it), so the choice is invisible to results.
    pub fn unfused_twin(&self) -> &ExecImage {
        self.unfused.as_deref().unwrap_or(self)
    }

    /// Flattens without fusing; [`ExecImage::new`] fuses in place after.
    fn build(program: &Program) -> Self {
        crate::verify::validate_program(program);
        let types = infer(program);
        let banks = types.regs;

        // Pass 1: assign pcs and dense block indices.
        let mut funcs = Vec::with_capacity(program.functions.len());
        let mut next_pc: u32 = 0;
        let mut next_block: u32 = 0;
        let mut max_regs: u32 = 1;
        let mut block_keys = Vec::new();
        for (fi, f) in program.functions.iter().enumerate() {
            let mut block_pc = Vec::with_capacity(f.blocks.len());
            let mut term_pc = Vec::with_capacity(f.blocks.len());
            for (bi, b) in f.blocks.iter().enumerate() {
                block_pc.push(next_pc);
                term_pc.push(next_pc + b.insts.len() as u32);
                next_pc += b.insts.len() as u32 + 1;
                block_keys.push((FuncId(fi as u32), BlockId(bi as u32)));
            }
            max_regs = max_regs.max(f.num_regs);
            let slot_banks = types.frame_slots[fi].clone();
            let bank_has_init = |want: RegBank, bs: &[RegBank], init: &[bool]| {
                bs.iter().zip(init).any(|(b, i)| *b == want && *i)
            };
            let frame = FrameLayout {
                nslots: slot_banks.len() as u32,
                has_int: slot_banks.contains(&RegBank::Int),
                has_float: slot_banks.contains(&RegBank::Float),
                has_tagged: slot_banks.contains(&RegBank::Tagged),
                // A float bank never needs zero-filling: an observable init
                // would have forced the register/slot off the float bank.
                zero_reg_ints: bank_has_init(RegBank::Int, &banks[fi], &types.reg_init[fi]),
                zero_reg_tagged: bank_has_init(RegBank::Tagged, &banks[fi], &types.reg_init[fi]),
                zero_slots_int: bank_has_init(RegBank::Int, &slot_banks, &types.slot_init[fi]),
                zero_slots_tagged: bank_has_init(
                    RegBank::Tagged,
                    &slot_banks,
                    &types.slot_init[fi],
                ),
            };
            funcs.push(FuncImage {
                entry_pc: block_pc[f.entry.index()],
                entry_block: f.entry,
                entry_block_idx: next_block + f.entry.0,
                block_idx_base: next_block,
                block_pc,
                term_pc,
                num_regs: f.num_regs,
                params: f.params.clone(),
                banks: banks[fi].clone(),
                slot_banks,
                frame,
            });
            next_block += f.blocks.len() as u32;
        }

        // Pass 2: decode steps, resolving targets through the pc tables and
        // register banks through the type analysis.
        let layout = program.memory_layout();
        let mut initial_globals = Vec::new();
        let mut global_bounds = Vec::with_capacity(program.globals.len());
        for g in &program.globals {
            let start = initial_globals.len() as u32;
            initial_globals.extend(g.initial_values());
            global_bounds.push((start, g.elems as u32));
        }
        let mut steps = Vec::with_capacity(next_pc as usize);
        let mut sites = Vec::with_capacity(next_pc as usize);
        let mut call_args = Vec::new();
        let mut edge_blocks = Vec::new();
        for (fi, f) in program.functions.iter().enumerate() {
            let fimg = &funcs[fi];
            let fbanks = &fimg.banks;
            let bank = |r: u32| fbanks[r as usize];
            let decode_mem = |addr: &Address| -> Result<GlobalMem, FrameMem> {
                let index = addr.index.map_or(u32::MAX, |r| r.0);
                let index_bank = addr.index.map_or(RegBank::Int, |r| bank(r.0));
                match addr.base {
                    MemBase::Global(g) => {
                        let (start, len) = global_bounds[g.index()];
                        Ok(GlobalMem {
                            start,
                            len,
                            mask: if u64::from(len).is_power_of_two() {
                                u64::from(len) - 1
                            } else {
                                u64::MAX
                            },
                            base_byte: layout.global_bases[g.index()],
                            offset: addr.offset,
                            index,
                            index_bank,
                            scale: addr.scale,
                        })
                    }
                    MemBase::Frame => Err(FrameMem {
                        offset: addr.offset,
                        index,
                        index_bank,
                        scale: addr.scale,
                    }),
                }
            };
            // Operand -> untagged int source, when provably int-banked.
            let int_src = |op: &Operand| -> Option<IntSrc> {
                match op {
                    Operand::Reg(r) if bank(r.0) == RegBank::Int => Some(IntSrc::Reg(r.0)),
                    Operand::ImmInt(v) => Some(IntSrc::Imm(*v)),
                    _ => None,
                }
            };
            // Operand -> untagged float source.  Integer immediates and
            // int-banked registers convert with `as f64`, which is exactly
            // `Value::as_float` on a proven-int value.
            let float_src = |op: &Operand| -> Option<FloatSrc> {
                match op {
                    Operand::Reg(r) => match bank(r.0) {
                        RegBank::Float => Some(FloatSrc::F(r.0)),
                        RegBank::Int => Some(FloatSrc::I(r.0)),
                        RegBank::Tagged => None,
                    },
                    Operand::ImmInt(v) => Some(FloatSrc::Imm(*v as f64)),
                    Operand::ImmFloat(v) => Some(FloatSrc::Imm(*v)),
                    Operand::Mem(_) => None,
                }
            };
            for (bi, b) in f.blocks.iter().enumerate() {
                for (ii, inst) in b.insts.iter().enumerate() {
                    let site = InstSite {
                        func: FuncId(fi as u32),
                        block: BlockId(bi as u32),
                        index: ii,
                    };
                    sites.push(site_meta(inst, site));
                    steps.push(match inst {
                        Inst::Bin {
                            op,
                            ty,
                            dst,
                            lhs,
                            rhs,
                        } => {
                            // Both operands constant: fold at decode.
                            let folded = match (imm_val(lhs), imm_val(rhs)) {
                                (Some(a), Some(b)) => {
                                    fold_const(eval_bin(*op, *ty, a, b), dst.0, bank)
                                }
                                _ => None,
                            };
                            if let Some(step) = folded {
                                step
                            } else {
                                match ty {
                                    Ty::Int => match (bank(dst.0), int_src(lhs), int_src(rhs)) {
                                        (RegBank::Int, Some(l), Some(r)) => Step::IntAlu(IntAlu {
                                            op: *op,
                                            dst: dst.0,
                                            lhs: l,
                                            rhs: r,
                                        }),
                                        _ => Step::IntBin {
                                            op: *op,
                                            dst: dst.0,
                                            lhs: *lhs,
                                            rhs: *rhs,
                                        },
                                    },
                                    Ty::Float => {
                                        let quick = match (float_src(lhs), float_src(rhs)) {
                                            (Some(l), Some(r)) => {
                                                if is_float_arith(*op)
                                                    && bank(dst.0) == RegBank::Float
                                                {
                                                    Some(Step::FloatAlu(FloatAlu {
                                                        op: *op,
                                                        dst: dst.0,
                                                        lhs: l,
                                                        rhs: r,
                                                    }))
                                                } else if op.is_comparison()
                                                    && bank(dst.0) == RegBank::Int
                                                {
                                                    Some(Step::FloatCmp(FloatAlu {
                                                        op: *op,
                                                        dst: dst.0,
                                                        lhs: l,
                                                        rhs: r,
                                                    }))
                                                } else {
                                                    None
                                                }
                                            }
                                            _ => None,
                                        };
                                        quick.unwrap_or(Step::FloatBin {
                                            op: *op,
                                            dst: dst.0,
                                            lhs: *lhs,
                                            rhs: *rhs,
                                        })
                                    }
                                }
                            }
                        }
                        Inst::Un { op, ty, dst, src } => match src {
                            Operand::Reg(r)
                                if bank(r.0) == RegBank::Int
                                    && bank(dst.0) == RegBank::Int
                                    && un_is_ii(*op, *ty) =>
                            {
                                Step::UnII {
                                    op: *op,
                                    dst: dst.0,
                                    src: r.0,
                                }
                            }
                            Operand::Reg(r)
                                if bank(r.0) == RegBank::Float
                                    && bank(dst.0) == RegBank::Float
                                    && un_is_ff(*op, *ty) =>
                            {
                                Step::UnFF {
                                    op: *op,
                                    dst: dst.0,
                                    src: r.0,
                                }
                            }
                            // Float-result unary of a proven-int register
                            // (`ToFloat(k)` dominates mixed int/float loop
                            // bodies): still fully untagged.
                            Operand::Reg(r)
                                if bank(r.0) == RegBank::Int
                                    && bank(dst.0) == RegBank::Float
                                    && un_is_ff(*op, *ty) =>
                            {
                                Step::UnIF {
                                    op: *op,
                                    dst: dst.0,
                                    src: r.0,
                                }
                            }
                            // Constant-fold immediate sources at decode:
                            // `eval_un` is pure, so the step becomes a move
                            // of the precomputed result (the site keeps its
                            // real instruction class for observers).
                            Operand::ImmInt(v) => {
                                fold_const(eval_un(*op, *ty, Value::Int(*v)), dst.0, bank)
                                    .unwrap_or(Step::Un {
                                        op: *op,
                                        ty: *ty,
                                        dst: dst.0,
                                        src: *src,
                                    })
                            }
                            Operand::ImmFloat(v) => {
                                fold_const(eval_un(*op, *ty, Value::Float(*v)), dst.0, bank)
                                    .unwrap_or(Step::Un {
                                        op: *op,
                                        ty: *ty,
                                        dst: dst.0,
                                        src: *src,
                                    })
                            }
                            _ => Step::Un {
                                op: *op,
                                ty: *ty,
                                dst: dst.0,
                                src: *src,
                            },
                        },
                        Inst::Mov { dst, src } => match (src, bank(dst.0)) {
                            (Operand::ImmInt(v), RegBank::Int) => Step::IMovI {
                                dst: dst.0,
                                imm: *v,
                            },
                            (Operand::ImmFloat(v), RegBank::Float) => Step::FMovI {
                                dst: dst.0,
                                imm: *v,
                            },
                            (Operand::Reg(r), RegBank::Int) if bank(r.0) == RegBank::Int => {
                                Step::IMovRR {
                                    dst: dst.0,
                                    src: r.0,
                                }
                            }
                            (Operand::Reg(r), RegBank::Float) if bank(r.0) == RegBank::Float => {
                                Step::FMovRR {
                                    dst: dst.0,
                                    src: r.0,
                                }
                            }
                            _ => Step::Mov {
                                dst: dst.0,
                                src: *src,
                            },
                        },
                        Inst::Load { dst, addr, .. } => match decode_mem(addr) {
                            Ok(mem) => Step::LoadGlobal {
                                dst: dst.0,
                                bank: bank(dst.0),
                                mem,
                            },
                            Err(mem) => {
                                // Statically-addressed slots resolve their
                                // bank here; matching untagged combinations
                                // skip the bank tables entirely at run time.
                                let quick = if mem.index == u32::MAX {
                                    let s = frame_slot(mem.offset, fimg.frame.nslots);
                                    match (fimg.slot_banks[s.slot as usize], bank(dst.0)) {
                                        (RegBank::Int, RegBank::Int) => {
                                            Some(Step::LoadFI { dst: dst.0, s })
                                        }
                                        (RegBank::Float, RegBank::Float) => {
                                            Some(Step::LoadFF { dst: dst.0, s })
                                        }
                                        _ => None,
                                    }
                                } else {
                                    None
                                };
                                quick.unwrap_or(Step::LoadFrame {
                                    dst: dst.0,
                                    bank: bank(dst.0),
                                    mem,
                                })
                            }
                        },
                        Inst::Store { src, addr, .. } => match decode_mem(addr) {
                            Ok(mem) => Step::StoreGlobal { src: *src, mem },
                            Err(mem) => {
                                let quick = if mem.index == u32::MAX {
                                    let s = frame_slot(mem.offset, fimg.frame.nslots);
                                    match fimg.slot_banks[s.slot as usize] {
                                        RegBank::Int => {
                                            int_src(src).map(|src| Step::StoreFI { src, s })
                                        }
                                        // Only float-tagged sources: an
                                        // int-provable source would have
                                        // forced the slot off the float bank.
                                        RegBank::Float => match src {
                                            Operand::Reg(r) if bank(r.0) == RegBank::Float => {
                                                Some(Step::StoreFF {
                                                    src: FloatSrc::F(r.0),
                                                    s,
                                                })
                                            }
                                            Operand::ImmFloat(v) => Some(Step::StoreFF {
                                                src: FloatSrc::Imm(*v),
                                                s,
                                            }),
                                            _ => None,
                                        },
                                        RegBank::Tagged => None,
                                    }
                                } else {
                                    None
                                };
                                quick.unwrap_or(Step::StoreFrame { src: *src, mem })
                            }
                        },
                        Inst::Call { func, args, dst } => {
                            let args_start = call_args.len() as u32;
                            call_args.extend(args.iter().copied());
                            Step::Call {
                                func: func.0,
                                args_start,
                                args_len: args.len() as u32,
                                dst: dst.map_or(u32::MAX, |r| r.0),
                            }
                        }
                        Inst::Print { src } => Step::Print { src: *src },
                        Inst::Nop => Step::Nop,
                    });
                }
                let term_site = InstSite {
                    func: FuncId(fi as u32),
                    block: BlockId(bi as u32),
                    index: usize::MAX,
                };
                let from_idx = fimg.block_idx_base + bi as u32;
                let target = |to: BlockId, edge_blocks: &mut Vec<(u32, u32)>| {
                    let to_idx = fimg.block_idx_base + to.0;
                    let edge_idx = edge_blocks.len() as u32;
                    edge_blocks.push((from_idx, to_idx));
                    EdgeTarget {
                        pc: fimg.block_pc[to.index()],
                        block: to,
                        block_idx: to_idx,
                        edge_idx,
                    }
                };
                match &b.term {
                    Terminator::Jump(to) => {
                        sites.push(SiteMeta {
                            class: InstClass::Branch,
                            def: None,
                            uses: [None; 3],
                            site: term_site,
                        });
                        steps.push(Step::Jump(target(*to, &mut edge_blocks)));
                    }
                    Terminator::Branch {
                        cond,
                        taken,
                        not_taken,
                    } => {
                        sites.push(SiteMeta {
                            class: InstClass::Branch,
                            def: None,
                            uses: [Some(*cond), None, None],
                            site: term_site,
                        });
                        let t = target(*taken, &mut edge_blocks);
                        // A degenerate branch whose legs coincide has ONE
                        // static edge; giving each leg its own index would
                        // make the reported edge depend on which leg ran,
                        // while the legacy engine's `edge_index` lookup (by
                        // `(from, to)` pair) always resolves to the first.
                        let nt = if not_taken == taken {
                            t
                        } else {
                            target(*not_taken, &mut edge_blocks)
                        };
                        steps.push(Step::Branch {
                            cond: cond.0,
                            bank: bank(cond.0),
                            taken: t,
                            not_taken: nt,
                        });
                    }
                    Terminator::Return(v) => {
                        sites.push(SiteMeta {
                            class: InstClass::Branch,
                            def: None,
                            uses: [None; 3],
                            site: term_site,
                        });
                        steps.push(Step::Return { value: *v });
                    }
                }
            }
        }

        ExecImage {
            steps,
            funcs,
            call_args,
            sites,
            block_keys,
            edge_blocks,
            entry: program.entry.0,
            layout,
            initial_globals,
            global_bounds,
            max_regs,
            fused_steps: 0,
            unfused: None,
        }
    }

    /// Number of dense instruction sites (instructions plus terminators).
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Number of basic blocks across the program.
    pub fn num_blocks(&self) -> usize {
        self.block_keys.len()
    }

    /// Number of static CFG edges across the program.
    pub fn num_edges(&self) -> usize {
        self.edge_blocks.len()
    }

    /// Number of functions.
    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }

    /// Number of fused superinstructions the fusion pass produced (0 for
    /// [`ExecImage::unfused`] images).
    pub fn num_fused(&self) -> usize {
        self.fused_steps as usize
    }

    /// The largest register file any function uses (at least 1).
    pub fn max_regs(&self) -> u32 {
        self.max_regs
    }

    /// Predecoded metadata of one site.
    pub fn site_meta(&self, site_id: u32) -> &SiteMeta {
        &self.sites[site_id as usize]
    }

    /// Diagnostic: buckets per-site dynamic execution counts by the step
    /// variant that actually **dispatches** them (descending).  Blocks are
    /// walked with each variant's fusion footprint, so a site consumed by a
    /// superinstruction is attributed to its fusion head rather than the
    /// unreachable original in its slot.  Used by the perf tooling to find
    /// hot unfused shapes; not on any hot path.
    pub fn step_histogram(&self, counts: &[u64]) -> Vec<(&'static str, u64)> {
        use std::collections::HashMap;
        let mut by_variant: HashMap<&'static str, u64> = HashMap::new();
        for f in &self.funcs {
            for (&start, &term) in f.block_pc.iter().zip(&f.term_pc) {
                let mut i = start as usize;
                let term = term as usize;
                while i <= term {
                    let step = &self.steps[i];
                    let n = counts.get(i).copied().unwrap_or(0);
                    if n > 0 {
                        *by_variant.entry(step.variant_name()).or_default() += n;
                    }
                    match step.footprint() {
                        // Terminator-absorbing superinstructions cover the
                        // rest of the block.
                        None => break,
                        Some(k) => i += k,
                    }
                }
            }
        }
        let mut out: Vec<_> = by_variant.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        out
    }

    /// The whole site table (index = dense site id).
    pub fn site_metas(&self) -> &[SiteMeta] {
        &self.sites
    }

    /// `(function, block)` of a dense block index.
    pub fn block_key(&self, block_idx: u32) -> (FuncId, BlockId) {
        self.block_keys[block_idx as usize]
    }

    /// `(from, to)` dense block indices of a dense edge index.
    pub fn edge_blocks(&self, edge_idx: u32) -> (u32, u32) {
        self.edge_blocks[edge_idx as usize]
    }

    /// Dense site id of a static location (`index == usize::MAX` selects the
    /// block's terminator), the inverse of [`SiteMeta::site`].
    pub fn site_id(&self, func: FuncId, block: BlockId, index: usize) -> u32 {
        let f = &self.funcs[func.index()];
        if index == usize::MAX {
            f.term_pc[block.index()]
        } else {
            f.block_pc[block.index()] + index as u32
        }
    }

    /// Dense index of a block.
    pub fn block_index(&self, func: FuncId, block: BlockId) -> u32 {
        self.funcs[func.index()].block_idx_base + block.0
    }

    /// Dense index of the static edge `from -> to` (which must exist).
    ///
    /// Only used off the hot path (result conversion); edges of a block are
    /// found through its terminator step.  The terminator slot always holds
    /// the original `Jump`/`Branch` step even when the fusion pass absorbed
    /// it into the preceding ALU step, so this lookup is fusion-agnostic.
    pub fn edge_index(&self, func: FuncId, from: BlockId, to: BlockId) -> Option<u32> {
        match &self.steps[self.funcs[func.index()].term_pc[from.index()] as usize] {
            Step::Jump(t) if t.block == to => Some(t.edge_idx),
            Step::Branch {
                taken, not_taken, ..
            } => {
                if taken.block == to {
                    Some(taken.edge_idx)
                } else if not_taken.block == to {
                    Some(not_taken.edge_idx)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

/// The superinstruction fusion pass: walks every block body left to right
/// and greedily replaces adjacent fusible steps with a fused step in the
/// first constituent's slot.  Returns the number of fusions performed.
///
/// Safety of the pc arithmetic downstream: a fused step advances `pc` past
/// its constituents (`+2`), or transfers control like the terminator it
/// absorbed.  Both constituents lie inside one block (the body, plus
/// optionally that block's terminator), and control only ever enters a block
/// at its first step, so the skipped slots are unreachable.
fn fuse_blocks(steps: &mut [Step], funcs: &[FuncImage]) -> u32 {
    let mut fused = 0u32;
    for f in funcs {
        for (&start, &term) in f.block_pc.iter().zip(&f.term_pc) {
            let mut i = start as usize;
            let term = term as usize;
            while i < term {
                // Body-last step + terminator.
                if i + 1 == term {
                    let replacement = match (&steps[i], &steps[term]) {
                        (
                            Step::IntAlu(a),
                            Step::Branch {
                                cond,
                                bank: RegBank::Int,
                                taken,
                                not_taken,
                            },
                        ) => Some(Step::IntCmpBr {
                            a: *a,
                            cond: *cond,
                            taken: *taken,
                            not_taken: *not_taken,
                        }),
                        (Step::IntAlu(a), Step::Jump(target)) => Some(Step::IntAluJump {
                            a: *a,
                            target: *target,
                        }),
                        // Loop latches: spill the induction/accumulator
                        // variable, jump back to the header.
                        (Step::StoreFI { src, s }, Step::Jump(target)) => Some(Step::StoreFIJump {
                            src: *src,
                            s: *s,
                            target: *target,
                        }),
                        (Step::StoreFF { src, s }, Step::Jump(target)) => Some(Step::StoreFFJump {
                            src: *src,
                            s: *s,
                            target: *target,
                        }),
                        _ => None,
                    };
                    if let Some(r) = replacement {
                        steps[i] = r;
                        fused += 1;
                    }
                    break;
                }
                // Last-two body steps + terminator: three-way fusions.
                if i + 2 == term {
                    let replacement = match (&steps[i], &steps[i + 1], &steps[term]) {
                        (Step::IntAlu(a), Step::IntAlu(b), Step::Jump(t)) => {
                            Some(Step::IntPairJump {
                                a: *a,
                                b: *b,
                                target: *t,
                            })
                        }
                        // The -O0 while-header: reload the induction
                        // variable, compare, branch.
                        (
                            Step::LoadFI { dst, s },
                            Step::IntAlu(a),
                            Step::Branch {
                                cond,
                                bank: RegBank::Int,
                                taken,
                                not_taken,
                            },
                        ) => Some(Step::LoadFCmpBr {
                            dst: *dst,
                            s: *s,
                            a: *a,
                            cond: *cond,
                            taken: *taken,
                            not_taken: *not_taken,
                        }),
                        // Loop conditions over array elements.
                        (
                            Step::LoadGlobal {
                                dst,
                                bank: RegBank::Int,
                                mem,
                            },
                            Step::IntAlu(a),
                            Step::Branch {
                                cond,
                                bank: RegBank::Int,
                                taken,
                                not_taken,
                            },
                        ) => Some(Step::LoadGCmpBr {
                            dst: *dst,
                            mem: *mem,
                            a: *a,
                            cond: *cond,
                            taken: *taken,
                            not_taken: *not_taken,
                        }),
                        _ => None,
                    };
                    if let Some(r) = replacement {
                        steps[i] = r;
                        fused += 1;
                        break;
                    }
                }
                // Read-modify-write triples over one frame slot bank (the
                // `-O0` `x = x op e` shape), strictly inside the body.
                if i + 2 < term {
                    let replacement = match (&steps[i], &steps[i + 1], &steps[i + 2]) {
                        (
                            Step::LoadFI { dst, s },
                            Step::IntAlu(b),
                            Step::StoreFI { src, s: ss },
                        ) => Some(Step::LoadFAluStoreF {
                            dst: *dst,
                            ls: *s,
                            b: *b,
                            src: *src,
                            ss: *ss,
                        }),
                        (
                            Step::LoadFF { dst, s },
                            Step::FloatAlu(b),
                            Step::StoreFF { src, s: ss },
                        ) => Some(Step::LoadFFAluStoreFF {
                            dst: *dst,
                            ls: *s,
                            b: *b,
                            src: *src,
                            ss: *ss,
                        }),
                        (Step::FloatAlu(a), Step::FloatAlu(b), Step::StoreFF { src, s }) => {
                            Some(Step::FloatPairStoreF {
                                a: *a,
                                b: *b,
                                src: *src,
                                s: *s,
                            })
                        }
                        (
                            Step::LoadFF { dst, s },
                            Step::UnFF {
                                op,
                                dst: udst,
                                src: usrc,
                            },
                            Step::StoreFF { src, s: ss },
                        ) => Some(Step::LoadFUnFFStoreFF {
                            dst: *dst,
                            ls: *s,
                            op: *op,
                            udst: *udst,
                            usrc: *usrc,
                            ssrc: *src,
                            ss: *ss,
                        }),
                        _ => None,
                    };
                    if let Some(r) = replacement {
                        steps[i] = r;
                        fused += 1;
                        i += 3;
                        continue;
                    }
                }
                // Adjacent body pairs.
                let replacement = match (&steps[i], &steps[i + 1]) {
                    (Step::IntAlu(a), Step::IntAlu(b)) => Some(Step::IntPair(*a, *b)),
                    (Step::LoadFI { dst, s }, Step::IntAlu(b)) => Some(Step::LoadFIntAlu {
                        dst: *dst,
                        s: *s,
                        b: *b,
                    }),
                    (Step::IntAlu(a), Step::StoreFI { src, s }) => Some(Step::IntAluStoreF {
                        a: *a,
                        src: *src,
                        s: *s,
                    }),
                    (Step::LoadFF { dst, s }, Step::FloatAlu(b)) => Some(Step::LoadFFloatAlu {
                        dst: *dst,
                        s: *s,
                        b: *b,
                    }),
                    (Step::FloatAlu(a), Step::StoreFF { src, s }) => Some(Step::FloatAluStoreF {
                        a: *a,
                        src: *src,
                        s: *s,
                    }),
                    (Step::FloatAlu(a), Step::FloatAlu(b)) => Some(Step::FloatPair(*a, *b)),
                    (
                        Step::LoadFI { dst, s },
                        Step::LoadGlobal {
                            dst: dst2,
                            bank,
                            mem,
                        },
                    ) => Some(Step::LoadFILoadG {
                        dst1: *dst,
                        s1: *s,
                        dst2: *dst2,
                        bank2: *bank,
                        mem: *mem,
                    }),
                    (Step::StoreFI { src, s }, Step::LoadFI { dst, s: ls }) => {
                        Some(Step::StoreFLoadF {
                            src: *src,
                            ss: *s,
                            dst: *dst,
                            ls: *ls,
                        })
                    }
                    (Step::LoadFI { dst, s }, Step::StoreGlobal { src, mem }) => {
                        Some(Step::LoadFIStoreG {
                            dst: *dst,
                            s: *s,
                            src: *src,
                            mem: *mem,
                        })
                    }
                    (
                        Step::LoadGlobal {
                            dst,
                            bank: RegBank::Float,
                            mem,
                        },
                        Step::FloatAlu(b),
                    ) => Some(Step::LoadGFloatAlu {
                        dst: *dst,
                        mem: *mem,
                        b: *b,
                    }),
                    (Step::LoadFI { dst: dst1, s: s1 }, Step::LoadFI { dst: dst2, s: s2 }) => {
                        Some(Step::LoadFPairI {
                            dst1: *dst1,
                            s1: *s1,
                            dst2: *dst2,
                            s2: *s2,
                        })
                    }
                    (Step::LoadFF { dst: dst1, s: s1 }, Step::LoadFF { dst: dst2, s: s2 }) => {
                        Some(Step::LoadFPairF {
                            dst1: *dst1,
                            s1: *s1,
                            dst2: *dst2,
                            s2: *s2,
                        })
                    }
                    (
                        Step::LoadFF { dst, s },
                        Step::UnFF {
                            op,
                            dst: udst,
                            src: usrc,
                        },
                    ) => Some(Step::LoadFUnFF {
                        dst: *dst,
                        s: *s,
                        op: *op,
                        udst: *udst,
                        usrc: *usrc,
                    }),
                    (
                        Step::UnFF {
                            op,
                            dst: udst,
                            src: usrc,
                        },
                        Step::StoreFF { src, s },
                    ) => Some(Step::UnFFStoreF {
                        op: *op,
                        udst: *udst,
                        usrc: *usrc,
                        src: *src,
                        s: *s,
                    }),
                    (
                        Step::IntAlu(a),
                        Step::LoadGlobal {
                            dst,
                            bank: RegBank::Int,
                            mem,
                        },
                    ) => Some(Step::IntAluLoadG {
                        a: *a,
                        dst: *dst,
                        mem: *mem,
                    }),
                    (
                        Step::LoadGlobal {
                            dst,
                            bank: RegBank::Int,
                            mem,
                        },
                        Step::IntAlu(b),
                    ) => Some(Step::LoadGIntAlu {
                        dst: *dst,
                        mem: *mem,
                        b: *b,
                    }),
                    _ => None,
                };
                if let Some(r) = replacement {
                    steps[i] = r;
                    fused += 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        }
    }
    fused
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_ir::program::Function;

    /// Two functions; f0: two blocks (jump + return), f1: branch diamond.
    fn program() -> Program {
        let mut p = Program::new();
        let mut f0 = Function::new("main");
        let r = f0.fresh_reg();
        let b1 = f0.add_block();
        f0.blocks[0].insts = vec![Inst::Mov {
            dst: r,
            src: Operand::ImmInt(1),
        }];
        f0.blocks[0].term = Terminator::Jump(b1);
        f0.blocks[b1.index()].term = Terminator::Return(Some(r.into()));
        p.add_function(f0);

        let mut f1 = Function::new("helper");
        let c = f1.fresh_reg();
        let t = f1.add_block();
        let e = f1.add_block();
        f1.blocks[0].term = Terminator::Branch {
            cond: c,
            taken: t,
            not_taken: e,
        };
        f1.blocks[t.index()].term = Terminator::Return(None);
        f1.blocks[e.index()].term = Terminator::Return(None);
        p.add_function(f1);
        p
    }

    #[test]
    fn sites_cover_instructions_and_terminators() {
        let p = program();
        let img = ExecImage::new(&p);
        // f0: 1 inst + 2 terms; f1: 3 terms.
        assert_eq!(img.num_sites(), 6);
        assert_eq!(img.num_blocks(), 5);
        // f0: jump (1 edge); f1: branch (2 edges).
        assert_eq!(img.num_edges(), 3);
        assert_eq!(img.num_funcs(), 2);
    }

    #[test]
    fn site_ids_round_trip_through_site_meta() {
        let p = program();
        let img = ExecImage::new(&p);
        for id in 0..img.num_sites() as u32 {
            let meta = img.site_meta(id);
            assert_eq!(
                img.site_id(meta.site.func, meta.site.block, meta.site.index),
                id
            );
        }
    }

    #[test]
    fn block_indices_round_trip() {
        let p = program();
        let img = ExecImage::new(&p);
        for idx in 0..img.num_blocks() as u32 {
            let (f, b) = img.block_key(idx);
            assert_eq!(img.block_index(f, b), idx);
        }
    }

    #[test]
    fn branch_terminator_predecodes_its_condition_register() {
        let p = program();
        let img = ExecImage::new(&p);
        let id = img.site_id(FuncId(1), BlockId(0), usize::MAX);
        let meta = img.site_meta(id);
        assert_eq!(meta.class, InstClass::Branch);
        assert_eq!(meta.uses[0], Some(Reg(0)));
        assert_eq!(meta.def, None);
    }

    #[test]
    fn edge_indices_match_terminator_targets() {
        let p = program();
        let img = ExecImage::new(&p);
        let jump_edge = img.edge_index(FuncId(0), BlockId(0), BlockId(1)).unwrap();
        assert_eq!(img.edge_blocks(jump_edge), (0, 1));
        let taken = img.edge_index(FuncId(1), BlockId(0), BlockId(1)).unwrap();
        let not_taken = img.edge_index(FuncId(1), BlockId(0), BlockId(2)).unwrap();
        assert_ne!(taken, not_taken);
        assert!(img.edge_index(FuncId(1), BlockId(0), BlockId(0)).is_none());
    }

    /// A counted loop whose header and body exercise the fusion patterns.
    fn loop_program() -> Program {
        let mut p = Program::new();
        let mut f = Function::new("main");
        let s = f.fresh_reg();
        let i = f.fresh_reg();
        let c = f.fresh_reg();
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        f.blocks[0].insts = vec![
            Inst::Mov {
                dst: s,
                src: Operand::ImmInt(0),
            },
            Inst::Mov {
                dst: i,
                src: Operand::ImmInt(0),
            },
        ];
        f.blocks[0].term = Terminator::Jump(header);
        f.blocks[header.index()].insts = vec![Inst::Bin {
            op: BinOp::Lt,
            ty: Ty::Int,
            dst: c,
            lhs: i.into(),
            rhs: Operand::ImmInt(10),
        }];
        f.blocks[header.index()].term = Terminator::Branch {
            cond: c,
            taken: body,
            not_taken: exit,
        };
        f.blocks[body.index()].insts = vec![
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: s,
                lhs: s.into(),
                rhs: i.into(),
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: i,
                lhs: i.into(),
                rhs: Operand::ImmInt(1),
            },
        ];
        f.blocks[body.index()].term = Terminator::Jump(header);
        f.blocks[exit.index()].term = Terminator::Return(Some(s.into()));
        p.add_function(f);
        p
    }

    #[test]
    fn fusion_covers_loop_headers_and_bodies() {
        let p = loop_program();
        let fused = ExecImage::new(&p);
        let unfused = ExecImage::unfused(&p);
        assert_eq!(unfused.num_fused(), 0);
        // Header: cmp+branch.  Body: add+add pair (or add + latch jump).
        assert!(
            fused.num_fused() >= 2,
            "expected the loop header and body to fuse, got {}",
            fused.num_fused()
        );
        // Fusion must not disturb the site tables.
        assert_eq!(fused.num_sites(), unfused.num_sites());
        for id in 0..fused.num_sites() as u32 {
            assert_eq!(fused.site_meta(id).site, unfused.site_meta(id).site);
        }
        // edge_index still resolves through the (intact) terminator slots.
        assert!(fused
            .edge_index(FuncId(0), BlockId(1), BlockId(2))
            .is_some());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_rejects_out_of_range_registers() {
        let mut p = Program::new();
        let mut f = Function::new("main");
        // Reg(7) was never allocated through fresh_reg: num_regs stays 0.
        f.blocks[0].insts = vec![Inst::Mov {
            dst: Reg(7),
            src: Operand::ImmInt(1),
        }];
        f.blocks[0].term = Terminator::Return(None);
        p.add_function(f);
        let _ = ExecImage::new(&p);
    }

    #[test]
    #[should_panic(expected = "call target")]
    fn decode_rejects_out_of_range_call_targets() {
        let mut p = Program::new();
        let mut f = Function::new("main");
        f.blocks[0].insts = vec![Inst::Call {
            func: FuncId(3),
            args: vec![],
            dst: None,
        }];
        f.blocks[0].term = Terminator::Return(None);
        p.add_function(f);
        let _ = ExecImage::new(&p);
    }
}
