//! The predecoded execution image.
//!
//! [`ExecImage`] flattens a [`Program`] into contiguous arrays once, so the
//! executor and every observer work with dense integer indices instead of
//! chasing the nested `Program -> Function -> Block -> Inst` representation
//! and hashing `(FuncId, BlockId, index)` triples on the hot path:
//!
//! * every static instruction *and* terminator becomes one [`Step`] in a flat
//!   array; the array index is the instruction's **dense site id** (a `u32`),
//!   which the executor passes to observers in every event;
//! * a parallel [`SiteMeta`] table predecodes what observers would otherwise
//!   re-derive per dynamic instruction: the [`InstClass`], the destination
//!   register and up to three source registers (fixed arity — no `Vec` from
//!   [`Inst::uses`]), plus the original [`InstSite`] for converting results
//!   back to serializable keys;
//! * basic blocks and static CFG edges get dense program-wide indices too, so
//!   profile collectors can count block executions and edge traversals in
//!   flat vectors;
//! * control-flow targets are resolved to step indices (program counters) at
//!   build time, so taken branches are a single integer assignment.
//!
//! Building the image costs one pass over the program and is reused across
//! runs: initial global values and the memory layout are captured so repeated
//! executions (cache sweeps, pipeline sweeps, differential tests) skip all
//! per-run setup except copying the initial memory.

use crate::exec::InstSite;
use bsg_ir::program::MemoryLayout;
use bsg_ir::types::{BlockId, FuncId, Reg, Ty, Value};
use bsg_ir::visa::{BinOp, Inst, InstClass, MemBase, Operand, Terminator, UnOp};
use bsg_ir::Program;

/// A resolved control-flow target: where execution continues and which dense
/// indices to report to observers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EdgeTarget {
    /// Step index execution continues at (first step of the target block).
    pub pc: u32,
    /// Target block id (for observer callbacks).
    pub block: BlockId,
    /// Dense program-wide index of the target block.
    pub block_idx: u32,
    /// Dense program-wide index of this static CFG edge.
    pub edge_idx: u32,
}

/// A predecoded reference to a global-array location: the base byte address
/// and array length are resolved at image-build time, so the executor does a
/// bounds branch instead of an `i64` division (`rem_euclid`) on the
/// overwhelmingly common in-bounds access.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GlobalMem {
    /// First element of this array within the image's flattened global store.
    pub start: u32,
    /// Array length in elements.
    pub len: u32,
    /// `len - 1` when the array length is a power of two, else `u64::MAX`.
    /// For power-of-two lengths, masking a two's-complement element index is
    /// exactly `rem_euclid` for every `i64` input, so the wrap costs one
    /// `and` instead of a division.
    pub mask: u64,
    /// Base byte address from the program's memory layout.
    pub base_byte: u64,
    /// Constant word offset.
    pub offset: i64,
    /// Index register, `u32::MAX` when absent.
    pub index: u32,
    /// Scale applied to the index register.
    pub scale: i64,
}

/// A predecoded reference to a frame-slot location.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FrameMem {
    /// Constant word offset.
    pub offset: i64,
    /// Index register, `u32::MAX` when absent.
    pub index: u32,
    /// Scale applied to the index register.
    pub scale: i64,
}

/// One predecoded instruction or terminator.
///
/// Predecoding resolves every dispatch that is static: binary operations are
/// split by operand type (so the integer ALU path is a small inlinable
/// match), loads/stores are split by memory base with bounds and base
/// addresses precomputed, and control-flow targets are step indices.
#[derive(Debug, Clone)]
pub(crate) enum Step {
    /// `dst = regs[lhs] + regs[rhs]` (fully quickened: the opcode dispatch
    /// is folded into the step so executing it costs one indirect branch).
    AddRR { dst: u32, lhs: u32, rhs: u32 },
    /// `dst = regs[lhs] + imm`.
    AddRI { dst: u32, lhs: u32, imm: i64 },
    /// `dst = regs[lhs] * imm`.
    MulRI { dst: u32, lhs: u32, imm: i64 },
    /// `dst = (regs[lhs] < imm) as int`.
    LtRI { dst: u32, lhs: u32, imm: i64 },
    /// `dst = regs[lhs] op regs[rhs]` on integers (quickened common shape).
    IntBinRR {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// `dst = regs[lhs] op imm` on integers (quickened common shape).
    IntBinRI {
        op: BinOp,
        dst: u32,
        lhs: u32,
        imm: i64,
    },
    /// `dst = lhs op rhs` on integers, general operand shapes.
    IntBin {
        op: BinOp,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = regs[lhs] op regs[rhs]` on floats (quickened register shape).
    FloatBinRR {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: u32,
    },
    /// `dst = regs[lhs] op imm` on floats (immediate predecoded to a value).
    FloatBinRV {
        op: BinOp,
        dst: u32,
        lhs: u32,
        rhs: Value,
    },
    /// `dst = imm op regs[rhs]` on floats.
    FloatBinVR {
        op: BinOp,
        dst: u32,
        lhs: Value,
        rhs: u32,
    },
    /// `dst = lhs op rhs` on floats, general operand shapes (memory operands).
    FloatBin {
        op: BinOp,
        dst: u32,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = op regs[src]` (quickened register source).
    UnReg {
        op: UnOp,
        ty: Ty,
        dst: u32,
        src: u32,
    },
    /// `dst = op src`, general operand shapes.
    Un {
        op: UnOp,
        ty: Ty,
        dst: u32,
        src: Operand,
    },
    /// `dst = value` (quickened immediate move).
    MovImm { dst: u32, value: Value },
    /// `dst = regs[src]` (quickened register move).
    MovReg { dst: u32, src: u32 },
    /// `dst = src`, general operand shapes.
    Mov { dst: u32, src: Operand },
    /// `dst = global[elem]`.
    LoadGlobal { dst: u32, mem: GlobalMem },
    /// `dst = frame[elem]`.
    LoadFrame { dst: u32, mem: FrameMem },
    /// `global[elem] = src`.
    StoreGlobal { src: Operand, mem: GlobalMem },
    /// `frame[elem] = src`.
    StoreFrame { src: Operand, mem: FrameMem },
    /// Call `func`; arguments live in the image's argument pool at
    /// `args_start..args_start + args_len`; `dst == u32::MAX` means the
    /// return value is discarded.
    Call {
        func: u32,
        args_start: u32,
        args_len: u32,
        dst: u32,
    },
    /// Emit `src` to the output stream.
    Print { src: Operand },
    /// No operation.
    Nop,
    /// Unconditional transfer.
    Jump(EdgeTarget),
    /// Conditional transfer on `cond` being non-zero.
    Branch {
        cond: u32,
        taken: EdgeTarget,
        not_taken: EdgeTarget,
    },
    /// Return, optionally with a value.
    Return { value: Option<Operand> },
}

/// Predecoded per-site metadata: everything observers need that is static.
#[derive(Debug, Clone, Copy)]
pub struct SiteMeta {
    /// Instruction classification (terminators classify as
    /// [`InstClass::Branch`], matching the executor's event stream).
    pub class: InstClass,
    /// Destination register, if any.
    pub def: Option<Reg>,
    /// Source registers, fixed arity.  Non-call instructions read at most
    /// three registers (the fourth-and-later arguments of calls are not
    /// tracked here; the timing models never needed them).
    pub uses: [Option<Reg>; 3],
    /// The original static location, for converting dense ids back to
    /// serializable profile keys.
    pub site: InstSite,
}

/// Per-function slice of the image.
#[derive(Debug, Clone)]
pub(crate) struct FuncImage {
    /// Step index of the entry block's first step.
    pub entry_pc: u32,
    /// Entry block id.
    pub entry_block: BlockId,
    /// Dense index of the entry block.
    pub entry_block_idx: u32,
    /// Dense block index of block 0 of this function (block `b` of the
    /// function has dense index `block_idx_base + b`).
    pub block_idx_base: u32,
    /// First step index of every block.
    pub block_pc: Vec<u32>,
    /// Terminator step index of every block.
    pub term_pc: Vec<u32>,
    /// Number of virtual registers.
    pub num_regs: u32,
    /// Stack-frame size in words.
    pub frame_words: u32,
    /// Registers receiving arguments.
    pub params: Vec<Reg>,
}

/// A program flattened for execution (see the module docs).
#[derive(Debug, Clone)]
pub struct ExecImage {
    pub(crate) steps: Vec<Step>,
    pub(crate) funcs: Vec<FuncImage>,
    pub(crate) call_args: Vec<Operand>,
    sites: Vec<SiteMeta>,
    /// Dense block index -> (function, block).
    block_keys: Vec<(FuncId, BlockId)>,
    /// Dense edge index -> (from, to) dense block indices.
    edge_blocks: Vec<(u32, u32)>,
    pub(crate) entry: u32,
    pub(crate) layout: MemoryLayout,
    /// All global arrays flattened into one backing store (copied once per
    /// run); `global_bounds[g]` is the `(start, len)` slice of global `g`.
    pub(crate) initial_globals: Vec<Value>,
    pub(crate) global_bounds: Vec<(u32, u32)>,
    max_regs: u32,
}

fn site_meta(inst: &Inst, site: InstSite) -> SiteMeta {
    let mut uses = [None; 3];
    for (slot, reg) in uses.iter_mut().zip(inst.uses()) {
        *slot = Some(reg);
    }
    SiteMeta {
        class: inst.class(),
        def: inst.def(),
        uses,
        site,
    }
}

impl ExecImage {
    /// Flattens `program` into an execution image.  Call targets, block
    /// targets and global layout are resolved here, once.
    pub fn new(program: &Program) -> Self {
        // Pass 1: assign pcs and dense block indices.
        let mut funcs = Vec::with_capacity(program.functions.len());
        let mut next_pc: u32 = 0;
        let mut next_block: u32 = 0;
        let mut max_regs: u32 = 1;
        let mut block_keys = Vec::new();
        for (fi, f) in program.functions.iter().enumerate() {
            let mut block_pc = Vec::with_capacity(f.blocks.len());
            let mut term_pc = Vec::with_capacity(f.blocks.len());
            for (bi, b) in f.blocks.iter().enumerate() {
                block_pc.push(next_pc);
                term_pc.push(next_pc + b.insts.len() as u32);
                next_pc += b.insts.len() as u32 + 1;
                block_keys.push((FuncId(fi as u32), BlockId(bi as u32)));
            }
            max_regs = max_regs.max(f.num_regs);
            funcs.push(FuncImage {
                entry_pc: block_pc[f.entry.index()],
                entry_block: f.entry,
                entry_block_idx: next_block + f.entry.0,
                block_idx_base: next_block,
                block_pc,
                term_pc,
                num_regs: f.num_regs,
                frame_words: f.frame_words,
                params: f.params.clone(),
            });
            next_block += f.blocks.len() as u32;
        }

        // Pass 2: decode steps, resolving targets through the pc tables.
        let layout = program.memory_layout();
        let mut initial_globals = Vec::new();
        let mut global_bounds = Vec::with_capacity(program.globals.len());
        for g in &program.globals {
            let start = initial_globals.len() as u32;
            initial_globals.extend(g.initial_values());
            global_bounds.push((start, g.elems as u32));
        }
        let global_bounds_ref = &global_bounds;
        let decode_mem = move |addr: &bsg_ir::visa::Address| -> Result<GlobalMem, FrameMem> {
            let index = addr.index.map_or(u32::MAX, |r| r.0);
            match addr.base {
                MemBase::Global(g) => {
                    let (start, len) = global_bounds_ref[g.index()];
                    Ok(GlobalMem {
                        start,
                        len,
                        mask: if u64::from(len).is_power_of_two() {
                            u64::from(len) - 1
                        } else {
                            u64::MAX
                        },
                        base_byte: layout.global_bases[g.index()],
                        offset: addr.offset,
                        index,
                        scale: addr.scale,
                    })
                }
                MemBase::Frame => Err(FrameMem {
                    offset: addr.offset,
                    index,
                    scale: addr.scale,
                }),
            }
        };
        let mut steps = Vec::with_capacity(next_pc as usize);
        let mut sites = Vec::with_capacity(next_pc as usize);
        let mut call_args = Vec::new();
        let mut edge_blocks = Vec::new();
        for (fi, f) in program.functions.iter().enumerate() {
            let fimg = &funcs[fi];
            for (bi, b) in f.blocks.iter().enumerate() {
                for (ii, inst) in b.insts.iter().enumerate() {
                    let site = InstSite {
                        func: FuncId(fi as u32),
                        block: BlockId(bi as u32),
                        index: ii,
                    };
                    sites.push(site_meta(inst, site));
                    steps.push(match inst {
                        Inst::Bin {
                            op,
                            ty,
                            dst,
                            lhs,
                            rhs,
                        } => match (ty, lhs, rhs) {
                            (Ty::Int, Operand::Reg(a), Operand::Reg(b)) => match op {
                                BinOp::Add => Step::AddRR {
                                    dst: dst.0,
                                    lhs: a.0,
                                    rhs: b.0,
                                },
                                _ => Step::IntBinRR {
                                    op: *op,
                                    dst: dst.0,
                                    lhs: a.0,
                                    rhs: b.0,
                                },
                            },
                            (Ty::Int, Operand::Reg(a), Operand::ImmInt(v)) => match op {
                                BinOp::Add => Step::AddRI {
                                    dst: dst.0,
                                    lhs: a.0,
                                    imm: *v,
                                },
                                BinOp::Mul => Step::MulRI {
                                    dst: dst.0,
                                    lhs: a.0,
                                    imm: *v,
                                },
                                BinOp::Lt => Step::LtRI {
                                    dst: dst.0,
                                    lhs: a.0,
                                    imm: *v,
                                },
                                _ => Step::IntBinRI {
                                    op: *op,
                                    dst: dst.0,
                                    lhs: a.0,
                                    imm: *v,
                                },
                            },
                            (Ty::Int, _, _) => Step::IntBin {
                                op: *op,
                                dst: dst.0,
                                lhs: *lhs,
                                rhs: *rhs,
                            },
                            (Ty::Float, Operand::Reg(a), Operand::Reg(b)) => Step::FloatBinRR {
                                op: *op,
                                dst: dst.0,
                                lhs: a.0,
                                rhs: b.0,
                            },
                            (Ty::Float, Operand::Reg(a), Operand::ImmInt(v)) => Step::FloatBinRV {
                                op: *op,
                                dst: dst.0,
                                lhs: a.0,
                                rhs: Value::Int(*v),
                            },
                            (Ty::Float, Operand::Reg(a), Operand::ImmFloat(v)) => {
                                Step::FloatBinRV {
                                    op: *op,
                                    dst: dst.0,
                                    lhs: a.0,
                                    rhs: Value::Float(*v),
                                }
                            }
                            (Ty::Float, Operand::ImmInt(v), Operand::Reg(b)) => Step::FloatBinVR {
                                op: *op,
                                dst: dst.0,
                                lhs: Value::Int(*v),
                                rhs: b.0,
                            },
                            (Ty::Float, Operand::ImmFloat(v), Operand::Reg(b)) => {
                                Step::FloatBinVR {
                                    op: *op,
                                    dst: dst.0,
                                    lhs: Value::Float(*v),
                                    rhs: b.0,
                                }
                            }
                            (Ty::Float, _, _) => Step::FloatBin {
                                op: *op,
                                dst: dst.0,
                                lhs: *lhs,
                                rhs: *rhs,
                            },
                        },
                        Inst::Un {
                            op,
                            ty,
                            dst,
                            src: Operand::Reg(r),
                        } => Step::UnReg {
                            op: *op,
                            ty: *ty,
                            dst: dst.0,
                            src: r.0,
                        },
                        Inst::Un { op, ty, dst, src } => Step::Un {
                            op: *op,
                            ty: *ty,
                            dst: dst.0,
                            src: *src,
                        },
                        Inst::Mov { dst, src } => match src {
                            Operand::Reg(r) => Step::MovReg {
                                dst: dst.0,
                                src: r.0,
                            },
                            Operand::ImmInt(v) => Step::MovImm {
                                dst: dst.0,
                                value: Value::Int(*v),
                            },
                            Operand::ImmFloat(v) => Step::MovImm {
                                dst: dst.0,
                                value: Value::Float(*v),
                            },
                            Operand::Mem(_) => Step::Mov {
                                dst: dst.0,
                                src: *src,
                            },
                        },
                        Inst::Load { dst, addr, .. } => match decode_mem(addr) {
                            Ok(mem) => Step::LoadGlobal { dst: dst.0, mem },
                            Err(mem) => Step::LoadFrame { dst: dst.0, mem },
                        },
                        Inst::Store { src, addr, .. } => match decode_mem(addr) {
                            Ok(mem) => Step::StoreGlobal { src: *src, mem },
                            Err(mem) => Step::StoreFrame { src: *src, mem },
                        },
                        Inst::Call { func, args, dst } => {
                            let args_start = call_args.len() as u32;
                            call_args.extend(args.iter().copied());
                            Step::Call {
                                func: func.0,
                                args_start,
                                args_len: args.len() as u32,
                                dst: dst.map_or(u32::MAX, |r| r.0),
                            }
                        }
                        Inst::Print { src } => Step::Print { src: *src },
                        Inst::Nop => Step::Nop,
                    });
                }
                let term_site = InstSite {
                    func: FuncId(fi as u32),
                    block: BlockId(bi as u32),
                    index: usize::MAX,
                };
                let from_idx = fimg.block_idx_base + bi as u32;
                let target = |to: BlockId, edge_blocks: &mut Vec<(u32, u32)>| {
                    let to_idx = fimg.block_idx_base + to.0;
                    let edge_idx = edge_blocks.len() as u32;
                    edge_blocks.push((from_idx, to_idx));
                    EdgeTarget {
                        pc: fimg.block_pc[to.index()],
                        block: to,
                        block_idx: to_idx,
                        edge_idx,
                    }
                };
                match &b.term {
                    Terminator::Jump(to) => {
                        sites.push(SiteMeta {
                            class: InstClass::Branch,
                            def: None,
                            uses: [None; 3],
                            site: term_site,
                        });
                        steps.push(Step::Jump(target(*to, &mut edge_blocks)));
                    }
                    Terminator::Branch {
                        cond,
                        taken,
                        not_taken,
                    } => {
                        sites.push(SiteMeta {
                            class: InstClass::Branch,
                            def: None,
                            uses: [Some(*cond), None, None],
                            site: term_site,
                        });
                        let t = target(*taken, &mut edge_blocks);
                        let nt = target(*not_taken, &mut edge_blocks);
                        steps.push(Step::Branch {
                            cond: cond.0,
                            taken: t,
                            not_taken: nt,
                        });
                    }
                    Terminator::Return(v) => {
                        sites.push(SiteMeta {
                            class: InstClass::Branch,
                            def: None,
                            uses: [None; 3],
                            site: term_site,
                        });
                        steps.push(Step::Return { value: *v });
                    }
                }
            }
        }

        ExecImage {
            steps,
            funcs,
            call_args,
            sites,
            block_keys,
            edge_blocks,
            entry: program.entry.0,
            layout: program.memory_layout(),
            initial_globals,
            global_bounds,
            max_regs,
        }
    }

    /// Number of dense instruction sites (instructions plus terminators).
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Number of basic blocks across the program.
    pub fn num_blocks(&self) -> usize {
        self.block_keys.len()
    }

    /// Number of static CFG edges across the program.
    pub fn num_edges(&self) -> usize {
        self.edge_blocks.len()
    }

    /// Number of functions.
    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }

    /// The largest register file any function uses (at least 1).
    pub fn max_regs(&self) -> u32 {
        self.max_regs
    }

    /// Predecoded metadata of one site.
    pub fn site_meta(&self, site_id: u32) -> &SiteMeta {
        &self.sites[site_id as usize]
    }

    /// The whole site table (index = dense site id).
    pub fn site_metas(&self) -> &[SiteMeta] {
        &self.sites
    }

    /// `(function, block)` of a dense block index.
    pub fn block_key(&self, block_idx: u32) -> (FuncId, BlockId) {
        self.block_keys[block_idx as usize]
    }

    /// `(from, to)` dense block indices of a dense edge index.
    pub fn edge_blocks(&self, edge_idx: u32) -> (u32, u32) {
        self.edge_blocks[edge_idx as usize]
    }

    /// Dense site id of a static location (`index == usize::MAX` selects the
    /// block's terminator), the inverse of [`SiteMeta::site`].
    pub fn site_id(&self, func: FuncId, block: BlockId, index: usize) -> u32 {
        let f = &self.funcs[func.index()];
        if index == usize::MAX {
            f.term_pc[block.index()]
        } else {
            f.block_pc[block.index()] + index as u32
        }
    }

    /// Dense index of a block.
    pub fn block_index(&self, func: FuncId, block: BlockId) -> u32 {
        self.funcs[func.index()].block_idx_base + block.0
    }

    /// Dense index of the static edge `from -> to` (which must exist).
    ///
    /// Only used off the hot path (result conversion); edges of a block are
    /// found through its terminator step.
    pub fn edge_index(&self, func: FuncId, from: BlockId, to: BlockId) -> Option<u32> {
        match &self.steps[self.funcs[func.index()].term_pc[from.index()] as usize] {
            Step::Jump(t) if t.block == to => Some(t.edge_idx),
            Step::Branch {
                taken, not_taken, ..
            } => {
                if taken.block == to {
                    Some(taken.edge_idx)
                } else if not_taken.block == to {
                    Some(not_taken.edge_idx)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_ir::program::Function;

    /// Two functions; f0: two blocks (jump + return), f1: branch diamond.
    fn program() -> Program {
        let mut p = Program::new();
        let mut f0 = Function::new("main");
        let r = f0.fresh_reg();
        let b1 = f0.add_block();
        f0.blocks[0].insts = vec![Inst::Mov {
            dst: r,
            src: Operand::ImmInt(1),
        }];
        f0.blocks[0].term = Terminator::Jump(b1);
        f0.blocks[b1.index()].term = Terminator::Return(Some(r.into()));
        p.add_function(f0);

        let mut f1 = Function::new("helper");
        let c = f1.fresh_reg();
        let t = f1.add_block();
        let e = f1.add_block();
        f1.blocks[0].term = Terminator::Branch {
            cond: c,
            taken: t,
            not_taken: e,
        };
        f1.blocks[t.index()].term = Terminator::Return(None);
        f1.blocks[e.index()].term = Terminator::Return(None);
        p.add_function(f1);
        p
    }

    #[test]
    fn sites_cover_instructions_and_terminators() {
        let p = program();
        let img = ExecImage::new(&p);
        // f0: 1 inst + 2 terms; f1: 3 terms.
        assert_eq!(img.num_sites(), 6);
        assert_eq!(img.num_blocks(), 5);
        // f0: jump (1 edge); f1: branch (2 edges).
        assert_eq!(img.num_edges(), 3);
        assert_eq!(img.num_funcs(), 2);
    }

    #[test]
    fn site_ids_round_trip_through_site_meta() {
        let p = program();
        let img = ExecImage::new(&p);
        for id in 0..img.num_sites() as u32 {
            let meta = img.site_meta(id);
            assert_eq!(
                img.site_id(meta.site.func, meta.site.block, meta.site.index),
                id
            );
        }
    }

    #[test]
    fn block_indices_round_trip() {
        let p = program();
        let img = ExecImage::new(&p);
        for idx in 0..img.num_blocks() as u32 {
            let (f, b) = img.block_key(idx);
            assert_eq!(img.block_index(f, b), idx);
        }
    }

    #[test]
    fn branch_terminator_predecodes_its_condition_register() {
        let p = program();
        let img = ExecImage::new(&p);
        let id = img.site_id(FuncId(1), BlockId(0), usize::MAX);
        let meta = img.site_meta(id);
        assert_eq!(meta.class, InstClass::Branch);
        assert_eq!(meta.uses[0], Some(Reg(0)));
        assert_eq!(meta.def, None);
    }

    #[test]
    fn edge_indices_match_terminator_targets() {
        let p = program();
        let img = ExecImage::new(&p);
        let jump_edge = img.edge_index(FuncId(0), BlockId(0), BlockId(1)).unwrap();
        assert_eq!(img.edge_blocks(jump_edge), (0, 1));
        let taken = img.edge_index(FuncId(1), BlockId(0), BlockId(1)).unwrap();
        let not_taken = img.edge_index(FuncId(1), BlockId(0), BlockId(2)).unwrap();
        assert_ne!(taken, not_taken);
        assert!(img.edge_index(FuncId(1), BlockId(0), BlockId(0)).is_none());
    }
}
