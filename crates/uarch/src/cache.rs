//! Set-associative data-cache simulation.
//!
//! The paper simulates caches during profiling to classify each memory access
//! into a hit/miss-rate class (Table I), and sweeps data-cache sizes from
//! 1 KB to 32 KB in its evaluation (Figures 7, 8 and 10).  [`Cache`] is a
//! single configuration; [`CacheSweep`] runs a whole family of configurations
//! over one address stream in a single pass, like the single-pass
//! multi-configuration simulation the paper refers to (Hill & Smith).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (the paper assumes 32-byte lines).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u64,
}

impl CacheConfig {
    /// A configuration with the paper's 32-byte lines and 4-way associativity.
    pub fn kb(size_kb: u64) -> Self {
        CacheConfig {
            size_bytes: size_kb * 1024,
            line_bytes: 32,
            associativity: 4,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero line size or
    /// associativity, or capacity smaller than one way of lines).
    pub fn sets(&self) -> u64 {
        assert!(
            self.line_bytes > 0 && self.associativity > 0,
            "degenerate cache configuration"
        );
        let sets = self.size_bytes / (self.line_bytes * self.associativity);
        assert!(sets > 0, "cache smaller than one way");
        sets.next_power_of_two()
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB/{}B-line/{}-way",
            self.size_bytes / 1024,
            self.line_bytes,
            self.associativity
        )
    }
}

/// Hit/miss statistics of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of accesses.
    pub accesses: u64,
    /// Number of hits.
    pub hits: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 1.0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        1.0 - self.hit_rate()
    }
}

/// A set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets[set]` holds up to `associativity` tags, most recently used last.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
    /// `log2(line_bytes)` when the line size is a power of two (it always is
    /// for the paper's configurations); avoids a 64-bit division per access.
    line_shift: Option<u32>,
    /// `sets.len() - 1`; the set count is always a power of two.
    set_mask: u64,
    set_shift: u32,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let line_shift = config
            .line_bytes
            .is_power_of_two()
            .then(|| config.line_bytes.trailing_zeros());
        Cache {
            config,
            sets: vec![Vec::new(); sets as usize],
            stats: CacheStats::default(),
            line_shift,
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses `addr` (byte address); returns `true` on a hit.  Writes are
    /// modeled as write-allocate, so reads and writes behave identically for
    /// hit-rate purposes.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let line = match self.line_shift {
            Some(shift) => addr >> shift,
            None => addr / self.config.line_bytes,
        };
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            ways.remove(pos);
            ways.push(tag);
            self.stats.hits += 1;
            true
        } else {
            if ways.len() as u64 >= self.config.associativity {
                ways.remove(0);
            }
            ways.push(tag);
            false
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }
}

/// Runs several cache configurations over the same address stream.
#[derive(Debug, Clone)]
pub struct CacheSweep {
    caches: Vec<Cache>,
}

impl CacheSweep {
    /// Creates a sweep over the given configurations.
    pub fn new(configs: impl IntoIterator<Item = CacheConfig>) -> Self {
        CacheSweep {
            caches: configs.into_iter().map(Cache::new).collect(),
        }
    }

    /// The 1 KB – 32 KB sweep used in Figures 7 and 8 of the paper.
    pub fn paper_sweep() -> Self {
        CacheSweep::new([1, 2, 4, 8, 16, 32].map(CacheConfig::kb))
    }

    /// Feeds one access to every cache in the sweep.
    pub fn access(&mut self, addr: u64) {
        for c in &mut self.caches {
            c.access(addr);
        }
    }

    /// `(config, stats)` for each simulated cache.
    pub fn results(&self) -> Vec<(CacheConfig, CacheStats)> {
        self.caches
            .iter()
            .map(|c| (c.config(), c.stats()))
            .collect()
    }

    /// The caches themselves (e.g. to reset them).
    pub fn caches_mut(&mut self) -> &mut [Cache] {
        &mut self.caches
    }
}

/// An [`Observer`](crate::exec::Observer) that feeds every data access of an
/// execution into a cache sweep.
#[derive(Debug, Clone)]
pub struct CacheObserver {
    /// The sweep being fed.
    pub sweep: CacheSweep,
}

impl CacheObserver {
    /// Creates an observer over the given configurations.
    pub fn new(configs: impl IntoIterator<Item = CacheConfig>) -> Self {
        CacheObserver {
            sweep: CacheSweep::new(configs),
        }
    }

    /// Creates the 1–32 KB paper sweep observer.
    pub fn paper_sweep() -> Self {
        CacheObserver {
            sweep: CacheSweep::paper_sweep(),
        }
    }
}

impl crate::exec::Observer for CacheObserver {
    fn on_inst(&mut self, event: &crate::exec::InstEvent) {
        if let Some(a) = event.mem_read {
            self.sweep.access(a);
        }
        if let Some(a) = event.mem_write {
            self.sweep.access(a);
        }
    }
}

impl bsg_ir::canon::Canon for CacheConfig {
    fn canon(&self, w: &mut dyn bsg_ir::canon::CanonWrite) {
        self.size_bytes.canon(w);
        self.line_bytes.canon(w);
        self.associativity.canon(w);
    }
}

impl bsg_ir::codec::Decanon for CacheConfig {
    fn decanon(r: &mut bsg_ir::codec::CanonReader<'_>) -> Option<Self> {
        Some(CacheConfig {
            size_bytes: bsg_ir::codec::Decanon::decanon(r)?,
            line_bytes: bsg_ir::codec::Decanon::decanon(r)?,
            associativity: bsg_ir::codec::Decanon::decanon(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_set_math() {
        let c = CacheConfig::kb(8);
        assert_eq!(c.size_bytes, 8192);
        assert_eq!(c.sets(), 64);
        assert!(!c.to_string().is_empty());
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(CacheConfig::kb(1));
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x101f), "same 32-byte line");
        assert!(!c.access(0x1020), "next line misses");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        // Direct-mapped-ish scenario: 1KB, 32B lines, 2-way => 16 sets.
        let cfg = CacheConfig {
            size_bytes: 1024,
            line_bytes: 32,
            associativity: 2,
        };
        let mut c = Cache::new(cfg);
        let set_stride = 32 * 16; // same set, different tags
        let a = 0;
        let b = set_stride;
        let d = 2 * set_stride;
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a), "a is still resident");
        assert!(!c.access(d), "d evicts b (LRU)");
        assert!(c.access(a), "a was more recently used than b");
        assert!(!c.access(b), "b was evicted");
    }

    #[test]
    fn zero_stride_always_hits_after_warmup() {
        let mut c = Cache::new(CacheConfig::kb(4));
        c.access(0x4000);
        for _ in 0..100 {
            assert!(c.access(0x4000));
        }
        assert_eq!(c.stats().hits, 100);
    }

    #[test]
    fn large_stride_always_misses_in_small_cache() {
        // Stride of 4KB in a 1KB cache: every access maps far apart and the
        // working set vastly exceeds capacity.
        let mut c = Cache::new(CacheConfig::kb(1));
        let mut misses = 0;
        for i in 0..256u64 {
            if !c.access(i * 4096) {
                misses += 1;
            }
        }
        assert_eq!(misses, 256);
    }

    #[test]
    fn hit_rate_monotonically_improves_with_size_for_lru_sweep() {
        // LRU inclusion property: a bigger cache with the same line size and
        // full associativity never has fewer hits.
        let configs = [1u64, 2, 4, 8, 16, 32].map(|kb| CacheConfig {
            size_bytes: kb * 1024,
            line_bytes: 32,
            associativity: kb * 1024 / 32, // fully associative
        });
        let mut sweep = CacheSweep::new(configs);
        // A pseudo-random-ish but deterministic address stream with locality.
        let mut addr = 0u64;
        for i in 0..20_000u64 {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(i) % (64 * 1024);
            sweep.access(addr);
            sweep.access((i * 8) % 4096);
        }
        let results = sweep.results();
        for w in results.windows(2) {
            assert!(
                w[1].1.hit_rate() >= w[0].1.hit_rate() - 1e-12,
                "{} -> {}",
                w[0].0,
                w[1].0
            );
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut c = Cache::new(CacheConfig::kb(1));
        c.access(0);
        c.access(0);
        c.reset();
        assert_eq!(c.stats().accesses, 0);
        assert!(!c.access(0), "contents were cleared");
    }

    #[test]
    fn empty_cache_reports_full_hit_rate() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 1.0);
        assert_eq!(s.miss_rate(), 0.0);
    }
}
