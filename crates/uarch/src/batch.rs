//! Batched multi-config pipeline simulation: one functional execution
//! drives the timing models of **all** machine configurations at once.
//!
//! The paper's machine-axis experiments (Figure 11, Table III) form a grid —
//! workloads × optimization levels × machines — and the scalar path replays
//! the identical dynamic instruction stream once per machine.  The batched
//! model exploits that the instruction stream does not depend on the machine
//! config: [`BatchedPipelineSim`] is an ordinary [`Observer`] (so it drops
//! into the monomorphized dispatch loop without touching `exec.rs`) that
//! fans each retired instruction into structure-of-arrays per-lane state,
//! one lane per *unique* [`PipelineConfig`].
//!
//! # Lane layout and sharing
//!
//! Per-config scalars of [`PipelineSim`](crate::pipeline::PipelineSim)
//! become per-lane arrays (`cycle`, `issued_in_cycle`, `last_complete`,
//! `max_complete`, ring-buffer ROBs packed into one flat vector with
//! per-lane offsets).  `reg_ready` becomes a flat `reg × nlanes` array so
//! the per-lane inner loop over one register's slots walks adjacent memory.
//! Three layers of state are *shared* rather than replicated, each justified
//! by a bit-parity argument (and proven by the differential suite):
//!
//! * **Branch predictor and branch stats** — the scalar model always builds
//!   [`Hybrid::default_config()`] regardless of the pipeline config, and
//!   predictor evolution depends only on the `(site_id, taken)` stream,
//!   which is identical across lanes.  One predictor serves every lane; a
//!   misprediction redirects each lane with its own penalty.
//! * **Cache state** — cache contents depend only on the config and the
//!   address stream.  Lanes with the same L1 config share one L1 (its hit
//!   stream is identical); lanes with the same *(L1, L2)* pair share one L2
//!   (the L2's access stream is the L1's miss stream, so sharing requires
//!   the upstream L1 to match too).  Each unique cache is accessed exactly
//!   once per memory operation — Table III's five machines touch two L1s
//!   and four L2s instead of five of each.
//! * **The instruction counter** — every lane times the same stream.
//!
//! Identical full configs collapse into one lane outright (Table III's two
//! Pentium 4 systems differ only in clock, which is applied *outside* the
//! cycle-level model), so the result for each input config is read from its
//! lane; simulation is deterministic, so the copy is exact.

use crate::branch::{BranchStats, Hybrid, Predictor};
use crate::cache::{Cache, CacheConfig};
use crate::exec::{execute_image, ExecConfig, InstEvent, InstSite, Observer};
use crate::image::ExecImage;
use crate::pipeline::{base_latency, PipelineConfig, PipelineResult, SiteInfo};

/// Read-only per-lane configuration, denormalized out of [`PipelineConfig`]
/// so the per-instruction loop reads one small `Copy` record per lane.
#[derive(Debug, Clone, Copy)]
struct LaneCfg {
    width: u32,
    in_order: bool,
    /// Ring capacity (`rob_size.max(1)`, matching the scalar model's guard).
    rob_cap: usize,
    /// This lane's ring's offset into the flat `rob` vector.
    rob_off: usize,
    l1_latency: u64,
    l2_latency: u64,
    mem_latency: u64,
    mispredict_penalty: u64,
    /// Index of the shared L1 this lane reads.
    l1: usize,
    /// Index of the shared L2 this lane reads.
    l2: usize,
}

/// Memory-level outcome of one access, per unique L2: index 0 = L1 hit,
/// 1 = L2 hit, 2 = memory.
const LEVEL_L1: u8 = 0;
const LEVEL_L2: u8 = 1;

/// The batched multi-config timing model; an [`Observer`] like the scalar
/// [`PipelineSim`](crate::pipeline::PipelineSim), but timing every config
/// in one pass.  The design discussion's `BatchedObserver` — see the module
/// docs for the lane layout.
pub struct BatchedPipelineSim {
    /// Maps each *input* config index to its unique lane.
    lane_of: Vec<usize>,
    lanes: Vec<LaneCfg>,
    /// Indexed by dense site id (the image's site table order), shared by
    /// every lane.
    info: Vec<SiteInfo>,
    /// Unique L1s / L2s (see module docs for the sharing rule).
    l1s: Vec<Cache>,
    l2s: Vec<Cache>,
    /// For each unique L2, the unique L1 whose miss stream feeds it.
    l2_l1: Vec<usize>,
    /// Scratch: per-unique-L1 hit flag for the access being classified.
    l1_hit: Vec<bool>,
    /// Scratch: per-unique-L2 memory level of the current *read* access.
    mem_level: Vec<u8>,
    predictor: Hybrid,
    branch_stats: BranchStats,
    /// Ready cycles, `reg * nlanes + lane` (SoA: one register's lanes are
    /// adjacent).
    reg_ready: Vec<u64>,
    nregs: usize,
    cycle: Vec<u64>,
    issued_in_cycle: Vec<u32>,
    /// All lanes' completion rings, packed back to back (`LaneCfg::rob_off`).
    rob: Vec<u64>,
    rob_pos: Vec<usize>,
    rob_len: Vec<usize>,
    last_complete: Vec<u64>,
    max_complete: Vec<u64>,
    instructions: u64,
}

impl BatchedPipelineSim {
    /// Builds the batched model over `configs` for `image`, deduplicating
    /// identical configs, L1s and (L1, L2) pairs into shared lanes/caches.
    pub fn from_image(configs: &[PipelineConfig], image: &ExecImage) -> Self {
        let mut unique: Vec<PipelineConfig> = Vec::new();
        let lane_of: Vec<usize> = configs
            .iter()
            .map(|c| {
                unique.iter().position(|u| u == c).unwrap_or_else(|| {
                    unique.push(*c);
                    unique.len() - 1
                })
            })
            .collect();
        let nlanes = unique.len();

        let mut l1_cfgs: Vec<CacheConfig> = Vec::new();
        let mut l2_keys: Vec<(usize, CacheConfig)> = Vec::new();
        let mut lanes: Vec<LaneCfg> = Vec::with_capacity(nlanes);
        let mut rob_off = 0usize;
        for c in &unique {
            let l1 = l1_cfgs.iter().position(|x| *x == c.l1).unwrap_or_else(|| {
                l1_cfgs.push(c.l1);
                l1_cfgs.len() - 1
            });
            let key = (l1, c.l2);
            let l2 = l2_keys.iter().position(|x| *x == key).unwrap_or_else(|| {
                l2_keys.push(key);
                l2_keys.len() - 1
            });
            let rob_cap = c.rob_size.max(1);
            lanes.push(LaneCfg {
                width: c.width,
                in_order: c.in_order,
                rob_cap,
                rob_off,
                l1_latency: c.l1_latency,
                l2_latency: c.l2_latency,
                mem_latency: c.mem_latency,
                mispredict_penalty: c.mispredict_penalty,
                l1,
                l2,
            });
            rob_off += rob_cap;
        }

        let info = image
            .site_metas()
            .iter()
            .map(|m| SiteInfo {
                def: m.def,
                uses: m.uses,
            })
            .collect();
        let nregs = image.max_regs() as usize;
        BatchedPipelineSim {
            lane_of,
            info,
            l1s: l1_cfgs.iter().map(|c| Cache::new(*c)).collect(),
            l1_hit: vec![false; l1_cfgs.len()],
            l2s: l2_keys.iter().map(|(_, c)| Cache::new(*c)).collect(),
            mem_level: vec![0; l2_keys.len()],
            l2_l1: l2_keys.iter().map(|(l1, _)| *l1).collect(),
            predictor: Hybrid::default_config(),
            branch_stats: BranchStats::default(),
            reg_ready: vec![0; nregs * nlanes],
            nregs,
            cycle: vec![0; nlanes],
            issued_in_cycle: vec![0; nlanes],
            rob: vec![0; rob_off],
            rob_pos: vec![0; nlanes],
            rob_len: vec![0; nlanes],
            last_complete: vec![0; nlanes],
            max_complete: vec![0; nlanes],
            instructions: 0,
            lanes,
        }
    }

    /// Runs one address through every unique cache, in the same per-cache
    /// order the scalar models see.  When `record` is set (reads) the
    /// memory level lands in `mem_level`; writes update cache state and
    /// stats only, exactly like the scalar write-buffer rule.
    fn classify(&mut self, addr: u64, record: bool) {
        for (hit, cache) in self.l1_hit.iter_mut().zip(self.l1s.iter_mut()) {
            *hit = cache.access(addr);
        }
        for (j, cache) in self.l2s.iter_mut().enumerate() {
            let level = if self.l1_hit[self.l2_l1[j]] {
                LEVEL_L1
            } else if cache.access(addr) {
                LEVEL_L2
            } else {
                2
            };
            if record {
                self.mem_level[j] = level;
            }
        }
    }

    /// Per-input-config timing results, in the order the configs were given
    /// (lane-deduplicated configs read the same lane).
    pub fn results(&self) -> Vec<PipelineResult> {
        self.lane_of
            .iter()
            .map(|&lane| PipelineResult {
                cycles: self.max_complete[lane].max(self.cycle[lane]),
                instructions: self.instructions,
                branches: self.branch_stats,
                l1: self.l1s[self.lanes[lane].l1].stats(),
                l2: self.l2s[self.lanes[lane].l2].stats(),
            })
            .collect()
    }
}

impl Observer for BatchedPipelineSim {
    fn on_inst(&mut self, event: &InstEvent) {
        let info = self.info[event.site_id as usize];
        self.instructions += 1;
        let base = base_latency(event.class);
        let has_read = event.mem_read.is_some();
        if let Some(a) = event.mem_read {
            self.classify(a, true);
        }
        if let Some(a) = event.mem_write {
            // Stores retire through a write buffer; they still access the
            // caches (state + stats) but charge no latency.
            self.classify(a, false);
        }
        let nlanes = self.lanes.len();
        // Zipped iterators over the SoA columns keep the per-instruction
        // inner loop free of per-lane bounds checks.
        let lane_iter = self
            .lanes
            .iter()
            .zip(self.cycle.iter_mut())
            .zip(self.issued_in_cycle.iter_mut())
            .zip(self.rob_pos.iter_mut())
            .zip(self.rob_len.iter_mut())
            .zip(self.last_complete.iter_mut())
            .zip(self.max_complete.iter_mut())
            .enumerate();
        for (lane, ((((((cfg, cycle_slot), issued_slot), rob_pos), rob_len), last), max)) in
            lane_iter
        {
            let mut cycle = *cycle_slot;
            let mut issued = *issued_slot;
            // Issue-width constraint.
            if issued >= cfg.width {
                cycle += 1;
                issued = 0;
            }
            // Reorder-buffer constraint (out-of-order only); ring semantics
            // identical to the scalar model's.
            let rob_full = !cfg.in_order && *rob_len >= cfg.rob_cap;
            if rob_full {
                let oldest = self.rob[cfg.rob_off + *rob_pos];
                if oldest > cycle {
                    cycle = oldest;
                    issued = 0;
                }
            }
            let mut src_ready = 0;
            for r in info.uses.iter().flatten() {
                let i = r.0 as usize;
                if i < self.nregs {
                    src_ready = src_ready.max(self.reg_ready[i * nlanes + lane]);
                }
            }
            let issue = if cfg.in_order {
                // In-order issue stalls the whole pipeline until operands
                // are ready.
                if src_ready > cycle {
                    cycle = src_ready;
                    issued = 0;
                }
                cycle
            } else {
                cycle.max(src_ready)
            };
            let mut latency = base;
            if has_read {
                latency += match self.mem_level[cfg.l2] {
                    LEVEL_L1 => cfg.l1_latency,
                    LEVEL_L2 => cfg.l2_latency,
                    _ => cfg.mem_latency,
                };
            }
            let complete = issue + latency.max(1);
            if let Some(d) = info.def {
                let i = d.0 as usize;
                if i < self.nregs {
                    self.reg_ready[i * nlanes + lane] = complete;
                }
            }
            if !cfg.in_order {
                if rob_full {
                    self.rob[cfg.rob_off + *rob_pos] = complete;
                    *rob_pos += 1;
                    if *rob_pos >= cfg.rob_cap {
                        *rob_pos = 0;
                    }
                } else {
                    self.rob[cfg.rob_off + *rob_len] = complete;
                    *rob_len += 1;
                }
            }
            *cycle_slot = cycle;
            *issued_slot = issued + 1;
            *last = complete;
            *max = (*max).max(complete);
        }
    }

    fn on_branch(&mut self, _site: InstSite, site_id: u32, taken: bool) {
        self.branch_stats.branches += 1;
        if self.predictor.predict_and_update(site_id, taken) {
            self.branch_stats.correct += 1;
        } else {
            // Redirect every lane: the outcome is shared (see module docs),
            // the penalty is per lane.
            for lane in 0..self.lanes.len() {
                self.cycle[lane] = self.cycle[lane].max(self.last_complete[lane])
                    + self.lanes[lane].mispredict_penalty;
                self.issued_in_cycle[lane] = 0;
            }
        }
    }
}

/// The design discussion's name for the batched model: it is "just" an
/// observer over the unmodified dispatch loop.
pub type BatchedObserver = BatchedPipelineSim;

/// [`crate::pipeline::simulate_image`] over many configs at once: one
/// functional execution, one [`PipelineResult`] per config, each
/// bit-identical to what the scalar call would return (differential-suite
/// proven).  Like the scalar path, the batched model is a heavyweight
/// observer, so the image's **unfused twin** is executed when present.
pub fn simulate_image_batch(image: &ExecImage, configs: &[PipelineConfig]) -> Vec<PipelineResult> {
    if configs.is_empty() {
        return Vec::new();
    }
    let image = image.unfused_twin();
    let mut sim = BatchedPipelineSim::from_image(configs, image);
    execute_image(image, &mut sim, &ExecConfig::default());
    sim.results()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use crate::pipeline::simulate_image;
    use bsg_ir::program::{Function, Global, Program};
    use bsg_ir::types::Ty;
    use bsg_ir::visa::{Address, BinOp, Inst, Operand, Terminator};

    fn mixed_loop(iters: i64, stride: i64) -> Program {
        let mut p = Program::new();
        let g = p.add_global(Global::zeroed("data", 1 << 14));
        let mut f = Function::new("main");
        let i = f.fresh_reg();
        let idx = f.fresh_reg();
        let v = f.fresh_reg();
        let acc = f.fresh_reg();
        let c = f.fresh_reg();
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        f.blocks[0].insts = vec![
            Inst::Mov {
                dst: i,
                src: Operand::ImmInt(0),
            },
            Inst::Mov {
                dst: acc,
                src: Operand::ImmInt(0),
            },
        ];
        f.blocks[0].term = Terminator::Jump(header);
        f.blocks[header.index()].insts = vec![Inst::Bin {
            op: BinOp::Lt,
            ty: Ty::Int,
            dst: c,
            lhs: i.into(),
            rhs: Operand::ImmInt(iters),
        }];
        f.blocks[header.index()].term = Terminator::Branch {
            cond: c,
            taken: body,
            not_taken: exit,
        };
        f.blocks[body.index()].insts = vec![
            Inst::Bin {
                op: BinOp::Mul,
                ty: Ty::Int,
                dst: idx,
                lhs: i.into(),
                rhs: Operand::ImmInt(stride),
            },
            Inst::Load {
                dst: v,
                addr: Address::global_indexed(g, 0, idx, 1),
                ty: Ty::Int,
            },
            Inst::Store {
                src: v.into(),
                addr: Address::global_indexed(g, 0, idx, 1),
                ty: Ty::Int,
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: acc,
                lhs: acc.into(),
                rhs: v.into(),
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: i,
                lhs: i.into(),
                rhs: Operand::ImmInt(1),
            },
        ];
        f.blocks[body.index()].term = Terminator::Jump(header);
        f.blocks[exit.index()].term = Terminator::Return(Some(acc.into()));
        p.add_function(f);
        p
    }

    #[test]
    fn batched_lanes_equal_scalar_results_on_table3() {
        let image = ExecImage::new(&mixed_loop(4000, 7));
        let configs: Vec<PipelineConfig> =
            MachineConfig::table3().iter().map(|m| m.pipeline).collect();
        let batched = simulate_image_batch(&image, &configs);
        for (c, b) in configs.iter().zip(&batched) {
            let scalar = simulate_image(&image, *c);
            assert_eq!(*b, scalar, "lane diverged for {c:?}");
        }
    }

    #[test]
    fn duplicate_configs_share_a_lane_and_report_identical_results() {
        let image = ExecImage::new(&mixed_loop(500, 3));
        let cfg = PipelineConfig::ptlsim_2wide(16);
        let r = simulate_image_batch(&image, &[cfg, cfg, cfg]);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0], r[1]);
        assert_eq!(r[1], r[2]);
        assert_eq!(r[0], simulate_image(&image, cfg));
    }

    #[test]
    fn empty_config_list_yields_no_results() {
        let image = ExecImage::new(&mixed_loop(10, 1));
        assert!(simulate_image_batch(&image, &[]).is_empty());
    }

    #[test]
    fn run_batch_matches_run_image_per_machine() {
        let image = ExecImage::new(&mixed_loop(2000, 5));
        let machines = MachineConfig::table3_extended();
        let batched = MachineConfig::run_batch(&machines, &image);
        assert_eq!(batched.len(), machines.len());
        for (m, b) in machines.iter().zip(&batched) {
            let scalar = m.run_image(&image);
            assert_eq!(b, &scalar, "machine {} diverged", m.name);
        }
    }
}
