//! # bsg-uarch — microarchitecture substrate for benchmark synthesis
//!
//! The IISWC 2010 benchmark-synthesis paper evaluates its synthetic clones
//! with a dynamic binary instrumentation tool (Pin), cache simulation, a
//! hybrid branch predictor, detailed cycle-accurate simulation of a 2-wide
//! out-of-order processor (PTLSim), and five real machines spanning three
//! ISAs (Table III).  None of that toolchain is portable, so this crate
//! rebuilds the whole substrate over the workspace's virtual ISA:
//!
//! * [`exec`] — a functional executor with instrumentation hooks (the Pin
//!   stand-in); every other component is an [`exec::Observer`] of it.
//! * [`cache`] — set-associative LRU cache simulation, including the
//!   single-pass multi-configuration sweep used for Figures 7, 8 and 10.
//! * [`branch`] — bimodal, gshare and hybrid branch predictors (Figure 9).
//! * [`pipeline`] — dependence-driven out-of-order and in-order (EPIC)
//!   timing models producing CPI (Figure 10).
//! * [`machine`] — the five Table III machine models used to reproduce the
//!   cross-architecture, cross-compiler execution-time trends of Figure 11.
//! * [`batch`] — batched multi-config simulation: one functional execution
//!   drives every machine config's timing state at once (the machine-axis
//!   sweeps pay for one interpreter pass instead of N), bit-identical per
//!   lane to the scalar [`pipeline`] model.
//!
//! # Example
//!
//! ```
//! use bsg_uarch::exec::{execute, CountingObserver, ExecConfig};
//! use bsg_ir::program::{Function, Program};
//! use bsg_ir::visa::{Inst, Operand, Terminator};
//!
//! // A one-instruction program: main() { return 41 + 1; }
//! let mut program = Program::new();
//! let mut main = Function::new("main");
//! let r = main.fresh_reg();
//! main.blocks[0].insts.push(Inst::Bin {
//!     op: bsg_ir::BinOp::Add,
//!     ty: bsg_ir::Ty::Int,
//!     dst: r,
//!     lhs: Operand::ImmInt(41),
//!     rhs: Operand::ImmInt(1),
//! });
//! main.blocks[0].term = Terminator::Return(Some(r.into()));
//! program.add_function(main);
//!
//! let mut counter = CountingObserver::default();
//! let outcome = execute(&program, &mut counter, &ExecConfig::default());
//! assert_eq!(outcome.return_value, Some(bsg_ir::Value::Int(42)));
//! assert_eq!(counter.instructions, 2); // the add and the return
//! ```

// `unsafe` is denied everywhere except the executor's two audited indexing
// helpers (`exec::at` / `exec::at_mut`), which carry explicit `allow`s, a
// `// SAFETY(ledger: ...)` tag naming the [`verify`]-checked invariants they
// rely on, and a `--cfg bsg_safe_core` escape hatch that restores fully
// bounds-checked indexing (a CI job exercises it).
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod batch;
pub mod branch;
pub mod cache;
pub mod cancel;
pub mod exec;
pub mod image;
pub mod machine;
pub mod pipeline;
mod typing;
pub mod verify;

pub use batch::{simulate_image_batch, BatchedObserver, BatchedPipelineSim};
pub use branch::{Bimodal, BranchStats, GShare, Hybrid, Predictor};
pub use cache::{Cache, CacheConfig, CacheStats, CacheSweep};
pub use cancel::CancelToken;
pub use exec::{
    execute, execute_dyn, execute_image, execute_legacy, run, ExecConfig, ExecOutcome, InstEvent,
    InstSite, Observer,
};
pub use image::{ExecImage, SiteMeta};
pub use machine::{MachineConfig, MachineIsa, MachineResult};
pub use pipeline::{
    simulate, simulate_image, PipelineConfig, PipelineResult, PipelineSim, ReferencePipelineSim,
};
pub use verify::{verify_image, VerifyError, VerifyReport};
