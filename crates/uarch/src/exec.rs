//! Functional execution of VISA programs with instrumentation hooks.
//!
//! The executor plays the role Pin plays in the paper (§III-A): it runs the
//! compiled workload and exposes every dynamic event — instruction executed,
//! basic block entered, control-flow edge traversed, conditional branch
//! outcome, memory address touched — to an [`Observer`].  The SFGL profiler,
//! the cache simulator, the branch predictors and the pipeline timing models
//! are all observers of the same execution.
//!
//! # The predecoded engine
//!
//! Interpreter throughput bounds every experiment the harness can run, so the
//! hot path is built around four ideas:
//!
//! 1. **Predecoding** ([`ExecImage`]): the program is flattened once into a
//!    contiguous step array with resolved branch targets, and every static
//!    instruction gets a dense `u32` site id that events carry.  Observers
//!    index flat tables by site id instead of hashing `(func, block, index)`
//!    triples per dynamic instruction.
//! 2. **An untagged register file**: decode runs a whole-program type
//!    inference (`typing`) and splits each function's registers into raw
//!    `i64` and `f64` banks plus a tagged `Value` bank for the rare register
//!    whose type is not statically known.  The hot ALU steps never match on
//!    a `Value` tag.
//! 3. **Superinstruction fusion**: adjacent step pairs inside a basic block
//!    (ALU/ALU, compare+branch, ALU+jump, load+ALU) collapse into single
//!    dispatch points while replaying each constituent's budget protocol and
//!    observer events exactly (see `image`).
//! 4. **Monomorphization**: [`execute`] is generic over the observer type, so
//!    observer callbacks inline into the dispatch loop; with [`NullObserver`]
//!    the event plumbing compiles away entirely.  [`execute_dyn`] remains for
//!    callers that only have a `&mut dyn Observer`.
//!
//! Call frames come from a bounded frame pool and call arguments are written
//! straight into the callee's registers, so steady-state execution does not
//! allocate; the pool caps both its length and the capacity it retains per
//! buffer, so deep recursion does not pin memory for the life of a run.
//!
//! # Safety of the unchecked indexing core
//!
//! The engine's hot loop indexes its flat tables through two helpers,
//! [`at`] and [`at_mut`] — the only `unsafe` code in the workspace.  In
//! default builds they compile to `get_unchecked(_mut)` guarded by
//! `debug_assert!`; compiling with `--cfg bsg_safe_core` (a CI job does)
//! restores fully bounds-checked indexing with no other change.  The
//! invariants that make the unchecked form sound are established **once per
//! image** by `image::validate` plus the image builder itself:
//!
//! * **Step/meta indices (`pc`)**: `steps` and `sites` are parallel arrays
//!   with one entry per (instruction | terminator).  Every pc the loop can
//!   reach is either a block's first step (`entry_pc` / `EdgeTarget.pc`,
//!   both derived from `block_pc`), or `pc + k` for a step `k-1` positions
//!   before its block's terminator — blocks always end with a terminator
//!   step, terminators never fall through, and fused steps only span
//!   positions inside one block, so `pc + k` stays in bounds.
//! * **Register indices**: every register id mentioned by any instruction,
//!   terminator or parameter list is validated against its function's
//!   `num_regs` at decode; all four per-frame banks are sized to
//!   `num_regs.max(1)` on acquisition.
//! * **Bank discipline**: a `Step` variant that touches the `i64`/`f64`
//!   banks is only emitted by decode when the type analysis proved the
//!   registers live there; the general variants go through the function's
//!   bank table (same length as `num_regs`).
//! * **Global indices**: `global_bounds` entries are constructed so
//!   `start + len` never exceeds the flattened store, memory steps referring
//!   to zero-length globals are rejected at decode, and every element index
//!   is reduced below `len` by `wrap`/`global_index` before use.
//! * **Frame-slot indices**: the slot count is `frame_words.max(1)`
//!   (`FrameBuf::nslots`).  Register-indexed accesses reduce their element
//!   with `wrap(elem, nslots)` and route through the per-function slot-bank
//!   table (`FuncImage::slot_banks`, built with exactly `nslots` entries),
//!   so only banks that appear in the table are indexed — and
//!   `FramePool::acquire` sizes exactly those banks to `nslots`
//!   (`FrameLayout::has_int`/`has_float`/`has_tagged`).  Statically-addressed
//!   accesses carry a `FrameSlot` whose index `image::frame_slot` validated
//!   `< nslots` at decode.
//! * **Per-shape frame-slot bank discipline** (rows for every frame step
//!   shape; each is emitted by decode only under the stated proof):
//!   - Int-slot shapes — `LoadFI`/`StoreFI` and the fused `LoadFIntAlu`/
//!     `IntAluStoreF`/`LoadFAluStoreF`/`LoadFPairI`/`LoadFCmpBr`/
//!     `StoreFIJump`/`StoreFLoadF`/`LoadFILoadG`/`LoadFIStoreG`: every
//!     addressed slot is int-banked in `slot_banks` (so `slots_int` is
//!     sized) and every frame-load destination/frame-store source register
//!     is int-banked.
//!   - Float-slot shapes — `LoadFF`/`StoreFF` and the fused
//!     `LoadFFloatAlu`/`FloatAluStoreF`/`LoadFFAluStoreFF`/`LoadFPairF`/
//!     `StoreFFJump`/`LoadFUnFF`/`UnFFStoreF`/`LoadFUnFFStoreFF`/
//!     `FloatPairStoreF`: every addressed slot is float-banked (so
//!     `slots_float` is sized) and every frame-load destination/frame-store
//!     source register is float-banked; float slots additionally never
//!     observe their missing zero-fill because the type analysis proved
//!     every read is preceded by a store (`typing::frame_entry_live`).
//!   - Register-only untagged shapes — `UnIF` (int source, float
//!     destination), `FloatPair` (float banks throughout), `LoadGCmpBr`/
//!     `LoadGFloatAlu`/`LoadFILoadG` global constituents (validated like
//!     every `GlobalMem`): registers were bank-checked at decode exactly as
//!     for their unfused forms.
//!   - `LoadFrame`/`StoreFrame` (general): every slot index is wrapped below
//!     `nslots` at run time and dispatched through `slot_banks`, whose entry
//!     guarantees the chosen bank is sized.
//! * **Zero-fill elision**: `FramePool::acquire` skips zero-filling a
//!   register/slot bank when `FrameLayout::zero_*` says no member's implicit
//!   `Int(0)` init is observable — justified by the same liveness pass that
//!   seeds the init into the type lattice: every read of every member of
//!   that bank is then provably preceded by a write, so retained pooled
//!   values cannot be observed.  (This is a *correctness* invariant, not a
//!   memory-safety one: banks are still always sized.)
//! * **Function indices**: call targets and the entry function are validated
//!   against the function table at decode.
//!
//! The previous tree-walking interpreter is kept as [`execute_legacy`]; it
//! produces a bit-identical event stream and outcome (differential tests
//! enforce this, for both the fused and unfused images) and serves as the
//! measured baseline in `BENCH_interp.json`.

use crate::image::{
    ExecImage, FloatAlu, FloatSrc, FrameLayout, FrameMem, GlobalMem, IntAlu, IntSrc, Step,
};
use crate::typing::RegBank;
use bsg_ir::eval::{eval_bin, eval_un};
use bsg_ir::program::MemoryLayout;
use bsg_ir::types::{BlockId, FuncId, GlobalId, Reg, Ty, Value, WORD_BYTES};
use bsg_ir::visa::{Address, BinOp, Inst, InstClass, MemBase, Operand, Terminator, UnOp};
use bsg_ir::Program;

/// Identifies a static instruction (profiling key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstSite {
    /// Enclosing function.
    pub func: FuncId,
    /// Enclosing block.
    pub block: BlockId,
    /// Index within the block (`usize::MAX` for the terminator).
    pub index: usize,
}

/// A dynamic instruction event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstEvent {
    /// Static location of the instruction.
    pub site: InstSite,
    /// Dense site id of the instruction (index into the program's
    /// [`ExecImage`] site table).  Observers use this to index flat
    /// per-site state without hashing.
    pub site_id: u32,
    /// Classification (load/store/branch/ALU/...).
    pub class: InstClass,
    /// Byte address read, if the instruction reads memory.
    pub mem_read: Option<u64>,
    /// Byte address written, if the instruction writes memory.
    pub mem_write: Option<u64>,
}

/// Observer of a program execution.  All methods have empty default bodies so
/// implementations only override what they need.
///
/// Alongside the IR-level identifiers, every callback carries the dense index
/// assigned by the program's [`ExecImage`] (site id, block index, edge index)
/// so observers can keep their per-site state in flat vectors.
pub trait Observer {
    /// Called for every dynamic instruction.
    fn on_inst(&mut self, event: &InstEvent) {
        let _ = event;
    }
    /// Called when a basic block is entered; `block_idx` is the dense
    /// program-wide block index.
    fn on_block(&mut self, func: FuncId, block: BlockId, block_idx: u32) {
        let _ = (func, block, block_idx);
    }
    /// Called for every intra-function control-flow edge; `edge_idx` is the
    /// dense program-wide static-edge index.
    fn on_edge(&mut self, func: FuncId, from: BlockId, to: BlockId, edge_idx: u32) {
        let _ = (func, from, to, edge_idx);
    }
    /// Called for every executed conditional branch; `site_id` is the dense
    /// site id of the branch terminator.
    fn on_branch(&mut self, site: InstSite, site_id: u32, taken: bool) {
        let _ = (site, site_id, taken);
    }
    /// Called when a function is entered via a call (not for the entry function).
    fn on_call(&mut self, caller: FuncId, callee: FuncId) {
        let _ = (caller, callee);
    }
}

/// Forwarding impl so generic executors accept `&mut O` and `&mut dyn
/// Observer` alike.
impl<O: Observer + ?Sized> Observer for &mut O {
    fn on_inst(&mut self, event: &InstEvent) {
        (**self).on_inst(event);
    }
    fn on_block(&mut self, func: FuncId, block: BlockId, block_idx: u32) {
        (**self).on_block(func, block, block_idx);
    }
    fn on_edge(&mut self, func: FuncId, from: BlockId, to: BlockId, edge_idx: u32) {
        (**self).on_edge(func, from, to, edge_idx);
    }
    fn on_branch(&mut self, site: InstSite, site_id: u32, taken: bool) {
        (**self).on_branch(site, site_id, taken);
    }
    fn on_call(&mut self, caller: FuncId, callee: FuncId) {
        (**self).on_call(caller, callee);
    }
}

/// The no-op observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Execution limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Stop after this many dynamic instructions (the run is then marked as
    /// not completed).  Defaults to `u64::MAX`.
    pub max_instructions: u64,
    /// Maximum call depth before the run is aborted.
    pub max_call_depth: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_instructions: u64::MAX,
            max_call_depth: 256,
        }
    }
}

/// The observable outcome of an execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Values printed by `Print` instructions, in order.
    pub printed: Vec<Value>,
    /// Value returned by the entry function.
    pub return_value: Option<Value>,
    /// Number of dynamic instructions executed.
    pub dynamic_instructions: u64,
    /// `false` if the instruction budget or call-depth limit was hit.
    pub completed: bool,
}

impl ExecOutcome {
    /// The observable behaviour of the run: return value plus print stream.
    /// Compiler correctness tests compare this across optimization levels.
    pub fn observable(&self) -> (Option<Value>, &[Value]) {
        (self.return_value, &self.printed)
    }
}

/// Executes `program` with the default configuration and no observer.
pub fn run(program: &Program) -> ExecOutcome {
    execute(program, &mut NullObserver, &ExecConfig::default())
}

/// Executes `program` on the predecoded engine, reporting every dynamic event
/// to `observer`.  Monomorphizes over the observer type; pass a concrete
/// observer for the fast path.  Builds the [`ExecImage`] internally — use
/// [`execute_image`] to amortize the build over repeated runs.
pub fn execute<O: Observer + ?Sized>(
    program: &Program,
    observer: &mut O,
    config: &ExecConfig,
) -> ExecOutcome {
    let image = ExecImage::new(program);
    execute_image(&image, observer, config)
}

/// Thin `dyn`-dispatch wrapper over [`execute`] for callers that only have a
/// trait object (kept for API compatibility with the pre-predecode executor).
pub fn execute_dyn(
    program: &Program,
    observer: &mut dyn Observer,
    config: &ExecConfig,
) -> ExecOutcome {
    execute(program, observer, config)
}

/// Executes a prebuilt [`ExecImage`] on the predecoded engine.
pub fn execute_image<O: Observer + ?Sized>(
    image: &ExecImage,
    observer: &mut O,
    config: &ExecConfig,
) -> ExecOutcome {
    let cancel = crate::cancel::current();
    let mut engine = Engine {
        image,
        globals: image.initial_globals.clone(),
        printed: Vec::new(),
        instructions: 0,
        halted: false,
        config: *config,
        frame_pool: FramePool::new(),
        cancel,
    };
    let ret = if engine.config.max_call_depth == 0 {
        engine.halted = true;
        None
    } else {
        let entry = image.entry;
        let f = &image.funcs[entry as usize];
        let mut frame = engine.frame_pool.acquire(f.num_regs, &f.frame);
        // Specialize the dispatch loop on whether an instruction budget is
        // in force: the unbounded variant drops the budget compare and the
        // mid-superinstruction halt polls (see `run_function`).  An ambient
        // cancellation token forces the bounded variant too — preemption
        // rides the same `halted` machinery as budget exhaustion.
        let ret = if config.max_instructions == u64::MAX && engine.cancel.is_none() {
            engine.run_function::<O, false>(entry, &mut frame, 0, observer)
        } else {
            engine.run_function::<O, true>(entry, &mut frame, 0, observer)
        };
        engine.frame_pool.release(frame);
        ret
    };
    ExecOutcome {
        printed: engine.printed,
        return_value: ret,
        dynamic_instructions: engine.instructions,
        completed: !engine.halted,
    }
}

/// Executes a program and also runs a secondary observer (convenience for the
/// experiment harness, which frequently pairs a profiler with a cache model).
pub fn execute_pair(
    program: &Program,
    first: &mut dyn Observer,
    second: &mut dyn Observer,
    config: &ExecConfig,
) -> ExecOutcome {
    let mut both = PairObserver { first, second };
    execute(program, &mut both, config)
}

/// Fans every event out to two observers.
pub struct PairObserver<'a> {
    /// First observer.
    pub first: &'a mut dyn Observer,
    /// Second observer.
    pub second: &'a mut dyn Observer,
}

impl Observer for PairObserver<'_> {
    fn on_inst(&mut self, event: &InstEvent) {
        self.first.on_inst(event);
        self.second.on_inst(event);
    }
    fn on_block(&mut self, func: FuncId, block: BlockId, block_idx: u32) {
        self.first.on_block(func, block, block_idx);
        self.second.on_block(func, block, block_idx);
    }
    fn on_edge(&mut self, func: FuncId, from: BlockId, to: BlockId, edge_idx: u32) {
        self.first.on_edge(func, from, to, edge_idx);
        self.second.on_edge(func, from, to, edge_idx);
    }
    fn on_branch(&mut self, site: InstSite, site_id: u32, taken: bool) {
        self.first.on_branch(site, site_id, taken);
        self.second.on_branch(site, site_id, taken);
    }
    fn on_call(&mut self, caller: FuncId, callee: FuncId) {
        self.first.on_call(caller, callee);
        self.second.on_call(caller, callee);
    }
}

// ---------------------------------------------------------------------------
// The unchecked indexing core
// ---------------------------------------------------------------------------

/// Hot-loop slice read.  Bounds-checked under `--cfg bsg_safe_core`;
/// `get_unchecked` (guarded by `debug_assert!`) otherwise.  See the
/// module-level safety discussion for the invariants that justify every call
/// site.
#[inline(always)]
#[allow(unsafe_code)]
fn at<T>(s: &[T], i: usize) -> &T {
    debug_assert!(
        i < s.len(),
        "engine index {i} out of bounds (len {})",
        s.len()
    );
    #[cfg(bsg_safe_core)]
    {
        &s[i]
    }
    #[cfg(not(bsg_safe_core))]
    {
        // SAFETY(ledger: reg-bounds, frame-slot-bounds, global-bounds,
        // edge-target, call-site, step-structure): `i < s.len()` is
        // established at image-build time for every caller (register ids <
        // num_regs = bank length; pcs < steps length; wrapped memory element
        // < region length), per the module docs; `bsg-verify` re-proves each
        // cited invariant statically per image.
        unsafe { s.get_unchecked(i) }
    }
}

/// Hot-loop slice write; the mutable counterpart of [`at`].
#[inline(always)]
#[allow(unsafe_code)]
fn at_mut<T>(s: &mut [T], i: usize) -> &mut T {
    debug_assert!(
        i < s.len(),
        "engine index {i} out of bounds (len {})",
        s.len()
    );
    #[cfg(bsg_safe_core)]
    {
        &mut s[i]
    }
    #[cfg(not(bsg_safe_core))]
    {
        // SAFETY(ledger: reg-bounds, reg-bank, frame-slot-bounds,
        // frame-slot-bank, global-bounds, zero-fill-elision): as in `at` —
        // the index was validated at image build time, and the bank/zero-fill
        // invariants guarantee the written value's type matches the bank.
        unsafe { s.get_unchecked_mut(i) }
    }
}

// ---------------------------------------------------------------------------
// Scalar micro-op semantics (must agree exactly with bsg_ir::eval)
// ---------------------------------------------------------------------------

/// Integer binary-operation semantics, specialized so the predecoded
/// engine's ALU path is a small inlinable match (the image splits `Bin` by
/// type at decode time).  Must agree exactly with
/// [`eval_bin`]`(op, Ty::Int, ..)` — a unit test and the engine differential
/// tests enforce this.
#[inline]
fn int_bin(op: BinOp, a: i64, b: i64) -> i64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
    }
}

/// Float arithmetic semantics of the [`Step::FloatAlu`] subset.  Must agree
/// exactly with [`eval_bin`]`(op, Ty::Float, ..)` on float operands.
#[inline]
fn float_arith(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                0.0
            } else {
                a / b
            }
        }
        BinOp::Rem => {
            if b == 0.0 {
                0.0
            } else {
                a % b
            }
        }
        _ => unreachable!("decode only emits arithmetic ops in FloatAlu"),
    }
}

/// Float comparison semantics of the [`Step::FloatCmp`] subset.  Must agree
/// exactly with [`eval_bin`]`(op, Ty::Float, ..)` on float operands.
#[inline]
fn float_cmp(op: BinOp, a: f64, b: f64) -> i64 {
    match op {
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        _ => unreachable!("decode only emits comparisons in FloatCmp"),
    }
}

/// `i64 -> i64` unary semantics of the [`Step::UnII`] subset.  Must agree
/// exactly with [`eval_un`] on `Value::Int` inputs for the ops
/// `image::un_is_ii` accepts.
#[inline]
fn un_ii(op: UnOp, v: i64) -> i64 {
    match op {
        UnOp::Neg => v.wrapping_neg(),
        UnOp::Not => !v,
        UnOp::LogicalNot => (v == 0) as i64,
        UnOp::ToInt => v,
        UnOp::Abs => v.wrapping_abs(),
        _ => unreachable!("decode only emits int-to-int ops in UnII"),
    }
}

/// `f64 -> f64` unary semantics of the [`Step::UnFF`] subset.  Must agree
/// exactly with [`eval_un`] on `Value::Float` inputs for the ops
/// `image::un_is_ff` accepts.
#[inline]
fn un_ff(op: UnOp, v: f64) -> f64 {
    match op {
        UnOp::Neg => -v,
        UnOp::Abs => v.abs(),
        UnOp::ToFloat => v,
        UnOp::Sqrt => {
            if v < 0.0 {
                0.0
            } else {
                v.sqrt()
            }
        }
        UnOp::Sin => v.sin(),
        UnOp::Cos => v.cos(),
        UnOp::Log => {
            if v <= 0.0 {
                0.0
            } else {
                v.ln()
            }
        }
        _ => unreachable!("decode only emits float-to-float ops in UnFF"),
    }
}

// ---------------------------------------------------------------------------
// The register file and frame pool
// ---------------------------------------------------------------------------

/// A reusable call frame: the three register banks plus frame slots.  All
/// four buffers are sized on acquisition (`num_regs.max(1)` /
/// `frame_words.max(1)`), which is what makes the engine's unchecked
/// register indexing sound.
#[derive(Debug, Default)]
struct FrameBuf {
    /// Untagged integer bank, indexed by register id.
    ints: Vec<i64>,
    /// Untagged float bank, indexed by register id.
    floats: Vec<f64>,
    /// Tagged bank for registers whose type is not statically known.
    tagged: Vec<Value>,
    /// Tagged frame-slot bank, holding the slots whose per-slot bank is
    /// `Tagged` (sized `nslots` iff the function has any such slot).
    slots: Vec<Value>,
    /// Untagged `i64` frame-slot bank (sized `nslots` iff some slot is
    /// int-banked — the common case for `-O0` locals).
    slots_int: Vec<i64>,
    /// Untagged `f64` frame-slot bank (sized `nslots` iff some slot is
    /// float-banked).  Never zero-filled: a slot is only float-banked when
    /// every read is provably preceded by a store, so stale values are
    /// unobservable.
    slots_float: Vec<f64>,
    /// Slot count (`frame_words.max(1)`) — the wrapping modulus, kept here
    /// because only the banks the function uses are sized.
    nslots: usize,
}

/// Upper bound on pooled frames.  Deep recursion releases one frame per
/// unwound activation; beyond this many, released frames are dropped instead
/// of retained.
const MAX_POOLED_FRAMES: usize = 32;

/// Upper bound (in elements) on the capacity a pooled buffer may retain.  A
/// workload with one huge frame must not pin that memory for every later
/// (small) activation of the run.
const MAX_RETAINED_CAPACITY: usize = 4096;

/// A bounded pool of call frames (see the constants above).  The previous
/// unbounded `Vec<FrameBuf>` retained the largest-ever buffer capacities for
/// the life of the engine; a deep-recursion workload with large frames could
/// pin megabytes after the recursion unwound.
#[derive(Debug, Default)]
struct FramePool {
    frames: Vec<FrameBuf>,
}

impl FramePool {
    fn new() -> Self {
        FramePool::default()
    }

    /// A frame for a function with `num_regs` registers and the given
    /// slot-bank layout, reusing a pooled buffer when available.  Only the
    /// banks whose implicit `Int(0)` initialization is observable are
    /// zero-filled: float-banked registers and float-banked slots are
    /// provably written before read (otherwise the init would have forced
    /// them tagged), so the float banks just get resized and may retain
    /// stale (unobservable) values.  Banks with no slots assigned to them
    /// stay empty — the per-slot bank table is what routes every slot access,
    /// so an unsized bank is never indexed.
    fn acquire(&mut self, num_regs: u32, layout: &FrameLayout) -> FrameBuf {
        let mut frame = self.frames.pop().unwrap_or_default();
        let nregs = num_regs.max(1) as usize;
        let nslots = layout.nslots.max(1) as usize;
        frame.nslots = nslots;
        // Zero-fill only the banks where some member's `Int(0)` init is
        // observable (`FrameLayout::zero_*`, from the liveness analysis);
        // everywhere else the bank is merely resized and stale pooled values
        // are unobservable.  Float banks never need filling.
        if layout.zero_reg_ints {
            frame.ints.clear();
        }
        frame.ints.resize(nregs, 0);
        if layout.zero_reg_tagged {
            frame.tagged.clear();
        }
        frame.tagged.resize(nregs, Value::default());
        frame.floats.resize(nregs, 0.0);
        if layout.has_int {
            if layout.zero_slots_int {
                frame.slots_int.clear();
            }
            frame.slots_int.resize(nslots, 0);
        } else {
            frame.slots_int.clear();
        }
        if layout.has_tagged {
            if layout.zero_slots_tagged {
                frame.slots.clear();
            }
            frame.slots.resize(nslots, Value::default());
        } else {
            frame.slots.clear();
        }
        if layout.has_float {
            frame.slots_float.resize(nslots, 0.0);
        } else {
            frame.slots_float.clear();
        }
        frame
    }

    /// Returns a frame to the pool, dropping it when the pool is full and
    /// shrinking any buffer whose capacity exceeds the retention bound.
    fn release(&mut self, mut frame: FrameBuf) {
        if self.frames.len() >= MAX_POOLED_FRAMES {
            return;
        }
        if frame.ints.capacity() > MAX_RETAINED_CAPACITY {
            frame.ints = Vec::new();
        }
        if frame.floats.capacity() > MAX_RETAINED_CAPACITY {
            frame.floats = Vec::new();
        }
        if frame.tagged.capacity() > MAX_RETAINED_CAPACITY {
            frame.tagged = Vec::new();
        }
        if frame.slots.capacity() > MAX_RETAINED_CAPACITY {
            frame.slots = Vec::new();
        }
        if frame.slots_int.capacity() > MAX_RETAINED_CAPACITY {
            frame.slots_int = Vec::new();
        }
        if frame.slots_float.capacity() > MAX_RETAINED_CAPACITY {
            frame.slots_float = Vec::new();
        }
        self.frames.push(frame);
    }

    /// Number of pooled frames (diagnostics / tests).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.frames.len()
    }
}

/// Reads a register as a tagged [`Value`] through the function's bank table
/// (the slow path shared by every general step shape).
#[inline]
fn read_reg(frame: &FrameBuf, banks: &[RegBank], r: u32) -> Value {
    match *at(banks, r as usize) {
        RegBank::Int => Value::Int(*at(&frame.ints, r as usize)),
        RegBank::Float => Value::Float(*at(&frame.floats, r as usize)),
        RegBank::Tagged => *at(&frame.tagged, r as usize),
    }
}

/// Writes a tagged [`Value`] to a register through the bank table.  For the
/// untagged banks the `as_int`/`as_float` conversion is the identity: the
/// type analysis proved every value dynamically reaching the register has
/// the bank's tag.
#[inline]
fn write_reg(frame: &mut FrameBuf, banks: &[RegBank], r: u32, v: Value) {
    match *at(banks, r as usize) {
        RegBank::Int => *at_mut(&mut frame.ints, r as usize) = v.as_int(),
        RegBank::Float => *at_mut(&mut frame.floats, r as usize) = v.as_float(),
        RegBank::Tagged => *at_mut(&mut frame.tagged, r as usize) = v,
    }
}

/// Reads a frame slot as a tagged [`Value`] through the function's per-slot
/// bank table (the general path for register-indexed frame accesses and
/// tagged slots).
#[inline]
fn read_slot(frame: &FrameBuf, slot_banks: &[RegBank], slot: usize) -> Value {
    match *at(slot_banks, slot) {
        RegBank::Int => Value::Int(*at(&frame.slots_int, slot)),
        RegBank::Float => Value::Float(*at(&frame.slots_float, slot)),
        RegBank::Tagged => *at(&frame.slots, slot),
    }
}

/// Writes a tagged [`Value`] to a frame slot through the per-slot bank table.
/// For untagged banks the `as_int`/`as_float` conversion is the identity: the
/// type analysis proved every value dynamically reaching the slot has the
/// bank's tag.
#[inline]
fn write_slot(frame: &mut FrameBuf, slot_banks: &[RegBank], slot: usize, v: Value) {
    match *at(slot_banks, slot) {
        RegBank::Int => *at_mut(&mut frame.slots_int, slot) = v.as_int(),
        RegBank::Float => *at_mut(&mut frame.slots_float, slot) = v.as_float(),
        RegBank::Tagged => *at_mut(&mut frame.slots, slot) = v,
    }
}

/// Reads an untagged integer ALU operand.
#[inline(always)]
fn int_src(s: IntSrc, ints: &[i64]) -> i64 {
    match s {
        IntSrc::Reg(r) => *at(ints, r as usize),
        IntSrc::Imm(v) => v,
    }
}

/// Executes one untagged integer ALU micro-op.
#[inline(always)]
fn exec_int_alu(a: &IntAlu, ints: &mut [i64]) {
    let l = int_src(a.lhs, ints);
    let r = int_src(a.rhs, ints);
    *at_mut(ints, a.dst as usize) = int_bin(a.op, l, r);
}

/// Reads an untagged float operand (int-bank registers convert exactly as
/// `Value::as_float` would on a proven-int value).
#[inline(always)]
fn float_src(s: FloatSrc, frame: &FrameBuf) -> f64 {
    match s {
        FloatSrc::F(r) => *at(&frame.floats, r as usize),
        FloatSrc::I(r) => *at(&frame.ints, r as usize) as f64,
        FloatSrc::Imm(v) => v,
    }
}

/// Executes one untagged float ALU micro-op.
#[inline(always)]
fn exec_float_alu(a: &FloatAlu, frame: &mut FrameBuf) {
    let x = float_src(a.lhs, frame);
    let y = float_src(a.rhs, frame);
    *at_mut(&mut frame.floats, a.dst as usize) = float_arith(a.op, x, y);
}

/// Element-index contribution of a predecoded memory reference's index
/// register, read through its predecoded bank.
#[inline(always)]
fn mem_index_val(index: u32, index_bank: RegBank, frame: &FrameBuf) -> i64 {
    match index_bank {
        RegBank::Int => *at(&frame.ints, index as usize),
        RegBank::Float => *at(&frame.floats, index as usize) as i64,
        RegBank::Tagged => at(&frame.tagged, index as usize).as_int(),
    }
}

/// Element index of a predecoded global/frame reference.
#[inline(always)]
fn mem_elem(offset: i64, index: u32, index_bank: RegBank, scale: i64, frame: &FrameBuf) -> i64 {
    if index == u32::MAX {
        offset
    } else {
        offset + mem_index_val(index, index_bank, frame) * scale
    }
}

/// The predecoded execution engine (one run's mutable state).
struct Engine<'a> {
    image: &'a ExecImage,
    /// Flattened global store (see `ExecImage::initial_globals`).
    globals: Vec<Value>,
    printed: Vec<Value>,
    instructions: u64,
    halted: bool,
    config: ExecConfig,
    frame_pool: FramePool,
    /// Ambient cancellation token captured at `execute_image` entry; polled
    /// by the bounded dispatch loop every [`crate::cancel::POLL_INTERVAL`]
    /// instructions.  `None` on the unbounded fast path.
    cancel: Option<std::sync::Arc<crate::cancel::CancelToken>>,
}

impl<'a> Engine<'a> {
    #[inline]
    fn operand(
        &self,
        op: &Operand,
        frame: &FrameBuf,
        fimg: &crate::image::FuncImage,
        depth: usize,
        mem_read: &mut Option<u64>,
    ) -> Value {
        match op {
            Operand::Reg(r) => read_reg(frame, &fimg.banks, r.0),
            Operand::ImmInt(v) => Value::Int(*v),
            Operand::ImmFloat(v) => Value::Float(*v),
            Operand::Mem(addr) => {
                let (value, byte_addr) = self.read_memory(addr, frame, fimg, depth);
                *mem_read = Some(byte_addr);
                value
            }
        }
    }

    #[inline]
    fn element_index(addr: &Address, frame: &FrameBuf, banks: &[RegBank]) -> i64 {
        let idx = addr
            .index
            .map(|r: Reg| read_reg(frame, banks, r.0).as_int())
            .unwrap_or(0);
        addr.offset + idx * addr.scale
    }

    /// General (un-predecoded) memory read for folded `Operand::Mem`
    /// operands.
    fn read_memory(
        &self,
        addr: &Address,
        frame: &FrameBuf,
        fimg: &crate::image::FuncImage,
        depth: usize,
    ) -> (Value, u64) {
        let elem = Self::element_index(addr, frame, &fimg.banks);
        match addr.base {
            MemBase::Global(g) => {
                let byte = self.image.layout.global_addr(g, elem);
                let (start, len) = self.image.global_bounds[g.index()];
                let i = elem.rem_euclid(i64::from(len).max(1)) as usize;
                (*at(&self.globals, start as usize + i), byte)
            }
            MemBase::Frame => {
                let byte = self.image.layout.frame_addr(depth, elem);
                let i = Self::wrap(elem, frame.nslots);
                (read_slot(frame, &fimg.slot_banks, i), byte)
            }
        }
    }

    /// In-array element for `elem` under the executor's wrapping semantics.
    /// Fast path: the overwhelmingly common in-bounds access avoids the
    /// `rem_euclid` division entirely (for `0 <= elem < len`, `elem
    /// rem_euclid len == elem`).
    #[inline]
    fn wrap(elem: i64, len: usize) -> usize {
        if (elem as u64) < len as u64 {
            elem as usize
        } else {
            elem.rem_euclid((len as i64).max(1)) as usize
        }
    }

    #[inline]
    fn global_index(mem: &GlobalMem, elem: i64, len: usize) -> usize {
        if mem.mask != u64::MAX {
            (elem as u64 & mem.mask) as usize
        } else {
            Self::wrap(elem, len)
        }
    }

    #[inline]
    fn load_global(&self, mem: &GlobalMem, frame: &FrameBuf) -> (Value, u64) {
        let elem = mem_elem(mem.offset, mem.index, mem.index_bank, mem.scale, frame);
        let byte = mem
            .base_byte
            .wrapping_add((elem as u64).wrapping_mul(WORD_BYTES));
        let i = Self::global_index(mem, elem, mem.len as usize);
        (*at(&self.globals, mem.start as usize + i), byte)
    }

    #[inline]
    fn store_global(&mut self, mem: &GlobalMem, frame: &FrameBuf, value: Value) -> u64 {
        let elem = mem_elem(mem.offset, mem.index, mem.index_bank, mem.scale, frame);
        let byte = mem
            .base_byte
            .wrapping_add((elem as u64).wrapping_mul(WORD_BYTES));
        let i = Self::global_index(mem, elem, mem.len as usize);
        *at_mut(&mut self.globals, mem.start as usize + i) = value;
        byte
    }

    #[inline]
    fn frame_slot(mem: &FrameMem, frame: &FrameBuf) -> (usize, i64) {
        let elem = mem_elem(mem.offset, mem.index, mem.index_bank, mem.scale, frame);
        (Self::wrap(elem, frame.nslots), elem)
    }

    /// Runs one function activation.  `frame` is already sized and (for
    /// calls) parameter registers are already filled by the caller.
    ///
    /// The instruction counter and halt flag live in locals for the duration
    /// of the dispatch loop (synced back to the engine around calls and
    /// returns).  Fused superinstructions replay the budget/halt protocol of
    /// their constituents exactly: an instruction that exhausts the budget
    /// still executes and reports its event, the following constituent does
    /// not (matching the per-step `halted` checks of the unfused sequence),
    /// and absorbed terminators run unconditionally exactly as the separate
    /// `Jump`/`Branch` arms do.
    ///
    /// `BOUNDED` specializes the loop on whether an instruction budget is in
    /// force (`max_instructions < u64::MAX`).  In the unbounded common case
    /// the budget can never trip, so `count_inst!` loses its compare (the
    /// per-constituent `+= 1`s of a fused arm then collapse into a single
    /// add) and the mid-superinstruction `halt_poll!`s — which only ever
    /// observe a budget-set flag, never a call-depth one, because fused arms
    /// contain no calls — compile out.  The bounded variant is byte-for-byte
    /// the historical protocol; the differential suite drives both.
    fn run_function<O: Observer + ?Sized, const BOUNDED: bool>(
        &mut self,
        func_idx: u32,
        frame: &mut FrameBuf,
        depth: usize,
        observer: &mut O,
    ) -> Option<Value> {
        let image = self.image;
        let steps: &[Step] = &image.steps;
        let metas: &[crate::image::SiteMeta] = image.site_metas();
        assert_eq!(steps.len(), metas.len(), "image tables are parallel");
        let max_instructions = self.config.max_instructions;
        // One Arc clone per activation keeps the token out of `self`'s
        // borrow for the duration of the dispatch loop; `None` whenever no
        // task boundary installed one (then the poll below is a dead branch
        // behind an always-false `is_some`).
        let cancel = self.cancel.clone();
        let mut instructions = self.instructions;
        let mut halted = self.halted;
        macro_rules! sync_out {
            () => {
                self.instructions = instructions;
                self.halted = halted;
            };
        }
        macro_rules! count_inst {
            () => {
                instructions += 1;
                if BOUNDED {
                    if instructions >= max_instructions {
                        halted = true;
                    } else if instructions & crate::cancel::POLL_MASK == 0
                        && cancel.as_deref().is_some_and(|t| t.is_cancelled())
                    {
                        halted = true;
                    }
                }
            };
        }
        /// Mid-superinstruction halt check.  Inside a fused arm `halted` can
        /// only have been set by `count_inst!` (the arm entry already
        /// returned if it was set, and fused arms perform no calls), so when
        /// the budget is unbounded this is provably dead and compiles out.
        macro_rules! halt_poll {
            () => {
                if BOUNDED && halted {
                    sync_out!();
                    return None;
                }
            };
        }
        /// Emits the on_inst event of the step at `pc + $k`.
        macro_rules! emit_at {
            ($pc:expr, $k:expr, $mr:expr, $mw:expr) => {{
                let meta = at(metas, $pc + $k);
                observer.on_inst(&InstEvent {
                    site: meta.site,
                    site_id: ($pc + $k) as u32,
                    class: meta.class,
                    mem_read: $mr,
                    mem_write: $mw,
                });
            }};
        }
        let func_id = FuncId(func_idx);
        let f = at(&image.funcs, func_idx as usize);
        let banks: &[RegBank] = &f.banks;
        let mut pc = f.entry_pc as usize;
        observer.on_block(func_id, f.entry_block, f.entry_block_idx);
        if halted {
            sync_out!();
            return None;
        }
        loop {
            match at(steps, pc) {
                Step::Jump(t) => {
                    let from = at(metas, pc).site.block;
                    observer.on_edge(func_id, from, t.block, t.edge_idx);
                    observer.on_block(func_id, t.block, t.block_idx);
                    pc = t.pc as usize;
                    if halted {
                        sync_out!();
                        return None;
                    }
                }
                Step::Branch {
                    cond,
                    bank,
                    taken,
                    not_taken,
                } => {
                    count_inst!();
                    let site = at(metas, pc).site;
                    let t = match bank {
                        RegBank::Int => *at(&frame.ints, *cond as usize) != 0,
                        RegBank::Float => *at(&frame.floats, *cond as usize) != 0.0,
                        RegBank::Tagged => at(&frame.tagged, *cond as usize).is_true(),
                    };
                    observer.on_inst(&InstEvent {
                        site,
                        site_id: pc as u32,
                        class: InstClass::Branch,
                        mem_read: None,
                        mem_write: None,
                    });
                    observer.on_branch(site, pc as u32, t);
                    let target = if t { taken } else { not_taken };
                    observer.on_edge(func_id, site.block, target.block, target.edge_idx);
                    observer.on_block(func_id, target.block, target.block_idx);
                    pc = target.pc as usize;
                    if halted {
                        sync_out!();
                        return None;
                    }
                }
                Step::Return { value } => {
                    count_inst!();
                    let site = at(metas, pc).site;
                    observer.on_inst(&InstEvent {
                        site,
                        site_id: pc as u32,
                        class: InstClass::Branch,
                        mem_read: None,
                        mem_write: None,
                    });
                    sync_out!();
                    let mut sink = None;
                    return value
                        .as_ref()
                        .map(|op| self.operand(op, frame, f, depth, &mut sink));
                }
                step => {
                    if halted {
                        sync_out!();
                        return None;
                    }
                    count_inst!();
                    let mut mem_read: Option<u64> = None;
                    let mut mem_write: Option<u64> = None;
                    match step {
                        // --- untagged single steps ---------------------------
                        Step::IntAlu(a) => {
                            exec_int_alu(a, &mut frame.ints);
                        }
                        Step::FloatAlu(a) => {
                            exec_float_alu(a, frame);
                        }
                        Step::FloatCmp(FloatAlu { op, dst, lhs, rhs }) => {
                            let a = float_src(*lhs, frame);
                            let b = float_src(*rhs, frame);
                            *at_mut(&mut frame.ints, *dst as usize) = float_cmp(*op, a, b);
                        }
                        Step::UnII { op, dst, src } => {
                            let v = *at(&frame.ints, *src as usize);
                            *at_mut(&mut frame.ints, *dst as usize) = un_ii(*op, v);
                        }
                        Step::UnFF { op, dst, src } => {
                            let v = *at(&frame.floats, *src as usize);
                            *at_mut(&mut frame.floats, *dst as usize) = un_ff(*op, v);
                        }
                        Step::UnIF { op, dst, src } => {
                            // `as f64` is exactly `Value::as_float` on the
                            // proven-int source.
                            let v = *at(&frame.ints, *src as usize) as f64;
                            *at_mut(&mut frame.floats, *dst as usize) = un_ff(*op, v);
                        }
                        Step::IMovI { dst, imm } => {
                            *at_mut(&mut frame.ints, *dst as usize) = *imm;
                        }
                        Step::FMovI { dst, imm } => {
                            *at_mut(&mut frame.floats, *dst as usize) = *imm;
                        }
                        Step::IMovRR { dst, src } => {
                            *at_mut(&mut frame.ints, *dst as usize) =
                                *at(&frame.ints, *src as usize);
                        }
                        Step::LoadFI { dst, s } => {
                            *at_mut(&mut frame.ints, *dst as usize) =
                                *at(&frame.slots_int, s.slot as usize);
                            mem_read = Some(self.image.layout.frame_addr(depth, s.elem));
                        }
                        Step::LoadFF { dst, s } => {
                            *at_mut(&mut frame.floats, *dst as usize) =
                                *at(&frame.slots_float, s.slot as usize);
                            mem_read = Some(self.image.layout.frame_addr(depth, s.elem));
                        }
                        Step::StoreFI { src, s } => {
                            *at_mut(&mut frame.slots_int, s.slot as usize) =
                                int_src(*src, &frame.ints);
                            mem_write = Some(self.image.layout.frame_addr(depth, s.elem));
                        }
                        Step::StoreFF { src, s } => {
                            *at_mut(&mut frame.slots_float, s.slot as usize) =
                                float_src(*src, frame);
                            mem_write = Some(self.image.layout.frame_addr(depth, s.elem));
                        }
                        Step::FMovRR { dst, src } => {
                            *at_mut(&mut frame.floats, *dst as usize) =
                                *at(&frame.floats, *src as usize);
                        }
                        // --- fused superinstructions -------------------------
                        Step::IntPair(a, b) => {
                            exec_int_alu(a, &mut frame.ints);
                            emit_at!(pc, 0, None, None);
                            halt_poll!();
                            count_inst!();
                            exec_int_alu(b, &mut frame.ints);
                            emit_at!(pc, 1, None, None);
                            pc += 2;
                            continue;
                        }
                        Step::IntCmpBr {
                            a,
                            cond,
                            taken,
                            not_taken,
                        } => {
                            exec_int_alu(a, &mut frame.ints);
                            emit_at!(pc, 0, None, None);
                            // Absorbed Branch terminator at pc + 1: like the
                            // Step::Branch arm, it runs without a preceding
                            // halted check.
                            count_inst!();
                            let bsite = at(metas, pc + 1).site;
                            let t = *at(&frame.ints, *cond as usize) != 0;
                            observer.on_inst(&InstEvent {
                                site: bsite,
                                site_id: (pc + 1) as u32,
                                class: InstClass::Branch,
                                mem_read: None,
                                mem_write: None,
                            });
                            observer.on_branch(bsite, (pc + 1) as u32, t);
                            let target = if t { taken } else { not_taken };
                            observer.on_edge(func_id, bsite.block, target.block, target.edge_idx);
                            observer.on_block(func_id, target.block, target.block_idx);
                            pc = target.pc as usize;
                            halt_poll!();
                            continue;
                        }
                        Step::IntPairJump { a, b, target } => {
                            exec_int_alu(a, &mut frame.ints);
                            emit_at!(pc, 0, None, None);
                            halt_poll!();
                            count_inst!();
                            exec_int_alu(b, &mut frame.ints);
                            emit_at!(pc, 1, None, None);
                            // Absorbed Jump terminator at pc + 2: no event,
                            // no budget charge, exactly like Step::Jump.
                            let from = at(metas, pc + 2).site.block;
                            observer.on_edge(func_id, from, target.block, target.edge_idx);
                            observer.on_block(func_id, target.block, target.block_idx);
                            pc = target.pc as usize;
                            halt_poll!();
                            continue;
                        }
                        Step::IntAluJump { a, target } => {
                            exec_int_alu(a, &mut frame.ints);
                            emit_at!(pc, 0, None, None);
                            // Absorbed Jump terminator at pc + 1: no event,
                            // no budget charge, exactly like Step::Jump.
                            let from = at(metas, pc + 1).site.block;
                            observer.on_edge(func_id, from, target.block, target.edge_idx);
                            observer.on_block(func_id, target.block, target.block_idx);
                            pc = target.pc as usize;
                            halt_poll!();
                            continue;
                        }
                        Step::LoadGIntAlu { dst, mem, b } => {
                            let (value, byte_addr) = self.load_global(mem, frame);
                            // dst is int-banked: the analysis proved the
                            // whole region holds Int values, so as_int is
                            // the identity.
                            *at_mut(&mut frame.ints, *dst as usize) = value.as_int();
                            emit_at!(pc, 0, Some(byte_addr), None);
                            halt_poll!();
                            count_inst!();
                            exec_int_alu(b, &mut frame.ints);
                            emit_at!(pc, 1, None, None);
                            pc += 2;
                            continue;
                        }
                        Step::IntAluLoadG { a, dst, mem } => {
                            exec_int_alu(a, &mut frame.ints);
                            emit_at!(pc, 0, None, None);
                            halt_poll!();
                            count_inst!();
                            let (value, byte_addr) = self.load_global(mem, frame);
                            *at_mut(&mut frame.ints, *dst as usize) = value.as_int();
                            emit_at!(pc, 1, Some(byte_addr), None);
                            pc += 2;
                            continue;
                        }
                        Step::LoadFIntAlu { dst, s, b } => {
                            *at_mut(&mut frame.ints, *dst as usize) =
                                *at(&frame.slots_int, s.slot as usize);
                            emit_at!(
                                pc,
                                0,
                                Some(self.image.layout.frame_addr(depth, s.elem)),
                                None
                            );
                            halt_poll!();
                            count_inst!();
                            exec_int_alu(b, &mut frame.ints);
                            emit_at!(pc, 1, None, None);
                            pc += 2;
                            continue;
                        }
                        Step::IntAluStoreF { a, src, s } => {
                            exec_int_alu(a, &mut frame.ints);
                            emit_at!(pc, 0, None, None);
                            halt_poll!();
                            count_inst!();
                            *at_mut(&mut frame.slots_int, s.slot as usize) =
                                int_src(*src, &frame.ints);
                            emit_at!(
                                pc,
                                1,
                                None,
                                Some(self.image.layout.frame_addr(depth, s.elem))
                            );
                            pc += 2;
                            continue;
                        }
                        Step::LoadFAluStoreF {
                            dst,
                            ls,
                            b,
                            src,
                            ss,
                        } => {
                            *at_mut(&mut frame.ints, *dst as usize) =
                                *at(&frame.slots_int, ls.slot as usize);
                            emit_at!(
                                pc,
                                0,
                                Some(self.image.layout.frame_addr(depth, ls.elem)),
                                None
                            );
                            halt_poll!();
                            count_inst!();
                            exec_int_alu(b, &mut frame.ints);
                            emit_at!(pc, 1, None, None);
                            halt_poll!();
                            count_inst!();
                            *at_mut(&mut frame.slots_int, ss.slot as usize) =
                                int_src(*src, &frame.ints);
                            emit_at!(
                                pc,
                                2,
                                None,
                                Some(self.image.layout.frame_addr(depth, ss.elem))
                            );
                            pc += 3;
                            continue;
                        }
                        Step::LoadFFloatAlu { dst, s, b } => {
                            *at_mut(&mut frame.floats, *dst as usize) =
                                *at(&frame.slots_float, s.slot as usize);
                            emit_at!(
                                pc,
                                0,
                                Some(self.image.layout.frame_addr(depth, s.elem)),
                                None
                            );
                            halt_poll!();
                            count_inst!();
                            exec_float_alu(b, frame);
                            emit_at!(pc, 1, None, None);
                            pc += 2;
                            continue;
                        }
                        Step::FloatAluStoreF { a, src, s } => {
                            exec_float_alu(a, frame);
                            emit_at!(pc, 0, None, None);
                            halt_poll!();
                            count_inst!();
                            *at_mut(&mut frame.slots_float, s.slot as usize) =
                                float_src(*src, frame);
                            emit_at!(
                                pc,
                                1,
                                None,
                                Some(self.image.layout.frame_addr(depth, s.elem))
                            );
                            pc += 2;
                            continue;
                        }
                        Step::FloatPair(a, b) => {
                            exec_float_alu(a, frame);
                            emit_at!(pc, 0, None, None);
                            halt_poll!();
                            count_inst!();
                            exec_float_alu(b, frame);
                            emit_at!(pc, 1, None, None);
                            pc += 2;
                            continue;
                        }
                        Step::LoadFILoadG {
                            dst1,
                            s1,
                            dst2,
                            bank2,
                            mem,
                        } => {
                            *at_mut(&mut frame.ints, *dst1 as usize) =
                                *at(&frame.slots_int, s1.slot as usize);
                            emit_at!(
                                pc,
                                0,
                                Some(self.image.layout.frame_addr(depth, s1.elem)),
                                None
                            );
                            halt_poll!();
                            count_inst!();
                            let (value, byte_addr) = self.load_global(mem, frame);
                            match bank2 {
                                RegBank::Int => {
                                    *at_mut(&mut frame.ints, *dst2 as usize) = value.as_int()
                                }
                                RegBank::Float => {
                                    *at_mut(&mut frame.floats, *dst2 as usize) = value.as_float()
                                }
                                RegBank::Tagged => {
                                    *at_mut(&mut frame.tagged, *dst2 as usize) = value
                                }
                            }
                            emit_at!(pc, 1, Some(byte_addr), None);
                            pc += 2;
                            continue;
                        }
                        Step::StoreFLoadF { src, ss, dst, ls } => {
                            *at_mut(&mut frame.slots_int, ss.slot as usize) =
                                int_src(*src, &frame.ints);
                            emit_at!(
                                pc,
                                0,
                                None,
                                Some(self.image.layout.frame_addr(depth, ss.elem))
                            );
                            halt_poll!();
                            count_inst!();
                            *at_mut(&mut frame.ints, *dst as usize) =
                                *at(&frame.slots_int, ls.slot as usize);
                            emit_at!(
                                pc,
                                1,
                                Some(self.image.layout.frame_addr(depth, ls.elem)),
                                None
                            );
                            pc += 2;
                            continue;
                        }
                        Step::LoadGFloatAlu { dst, mem, b } => {
                            let (value, byte_addr) = self.load_global(mem, frame);
                            // dst is float-banked: the analysis proved the
                            // region all-float, so as_float is the identity.
                            *at_mut(&mut frame.floats, *dst as usize) = value.as_float();
                            emit_at!(pc, 0, Some(byte_addr), None);
                            halt_poll!();
                            count_inst!();
                            exec_float_alu(b, frame);
                            emit_at!(pc, 1, None, None);
                            pc += 2;
                            continue;
                        }
                        Step::LoadFIStoreG { dst, s, src, mem } => {
                            *at_mut(&mut frame.ints, *dst as usize) =
                                *at(&frame.slots_int, s.slot as usize);
                            emit_at!(
                                pc,
                                0,
                                Some(self.image.layout.frame_addr(depth, s.elem)),
                                None
                            );
                            halt_poll!();
                            count_inst!();
                            let mut store_read: Option<u64> = None;
                            let v = self.operand(src, frame, f, depth, &mut store_read);
                            let byte_addr = self.store_global(mem, frame, v);
                            emit_at!(pc, 1, store_read, Some(byte_addr));
                            pc += 2;
                            continue;
                        }
                        Step::FloatPairStoreF { a, b, src, s } => {
                            exec_float_alu(a, frame);
                            emit_at!(pc, 0, None, None);
                            halt_poll!();
                            count_inst!();
                            exec_float_alu(b, frame);
                            emit_at!(pc, 1, None, None);
                            halt_poll!();
                            count_inst!();
                            *at_mut(&mut frame.slots_float, s.slot as usize) =
                                float_src(*src, frame);
                            emit_at!(
                                pc,
                                2,
                                None,
                                Some(self.image.layout.frame_addr(depth, s.elem))
                            );
                            pc += 3;
                            continue;
                        }
                        Step::LoadGCmpBr {
                            dst,
                            mem,
                            a,
                            cond,
                            taken,
                            not_taken,
                        } => {
                            let (value, byte_addr) = self.load_global(mem, frame);
                            *at_mut(&mut frame.ints, *dst as usize) = value.as_int();
                            emit_at!(pc, 0, Some(byte_addr), None);
                            halt_poll!();
                            count_inst!();
                            exec_int_alu(a, &mut frame.ints);
                            emit_at!(pc, 1, None, None);
                            // Absorbed Branch terminator at pc + 2: no
                            // preceding halted check, like Step::Branch.
                            count_inst!();
                            let bsite = at(metas, pc + 2).site;
                            let t = *at(&frame.ints, *cond as usize) != 0;
                            observer.on_inst(&InstEvent {
                                site: bsite,
                                site_id: (pc + 2) as u32,
                                class: InstClass::Branch,
                                mem_read: None,
                                mem_write: None,
                            });
                            observer.on_branch(bsite, (pc + 2) as u32, t);
                            let target = if t { taken } else { not_taken };
                            observer.on_edge(func_id, bsite.block, target.block, target.edge_idx);
                            observer.on_block(func_id, target.block, target.block_idx);
                            pc = target.pc as usize;
                            halt_poll!();
                            continue;
                        }
                        Step::LoadFPairI { dst1, s1, dst2, s2 } => {
                            *at_mut(&mut frame.ints, *dst1 as usize) =
                                *at(&frame.slots_int, s1.slot as usize);
                            emit_at!(
                                pc,
                                0,
                                Some(self.image.layout.frame_addr(depth, s1.elem)),
                                None
                            );
                            halt_poll!();
                            count_inst!();
                            *at_mut(&mut frame.ints, *dst2 as usize) =
                                *at(&frame.slots_int, s2.slot as usize);
                            emit_at!(
                                pc,
                                1,
                                Some(self.image.layout.frame_addr(depth, s2.elem)),
                                None
                            );
                            pc += 2;
                            continue;
                        }
                        Step::LoadFPairF { dst1, s1, dst2, s2 } => {
                            *at_mut(&mut frame.floats, *dst1 as usize) =
                                *at(&frame.slots_float, s1.slot as usize);
                            emit_at!(
                                pc,
                                0,
                                Some(self.image.layout.frame_addr(depth, s1.elem)),
                                None
                            );
                            halt_poll!();
                            count_inst!();
                            *at_mut(&mut frame.floats, *dst2 as usize) =
                                *at(&frame.slots_float, s2.slot as usize);
                            emit_at!(
                                pc,
                                1,
                                Some(self.image.layout.frame_addr(depth, s2.elem)),
                                None
                            );
                            pc += 2;
                            continue;
                        }
                        Step::LoadFCmpBr {
                            dst,
                            s,
                            a,
                            cond,
                            taken,
                            not_taken,
                        } => {
                            *at_mut(&mut frame.ints, *dst as usize) =
                                *at(&frame.slots_int, s.slot as usize);
                            emit_at!(
                                pc,
                                0,
                                Some(self.image.layout.frame_addr(depth, s.elem)),
                                None
                            );
                            halt_poll!();
                            count_inst!();
                            exec_int_alu(a, &mut frame.ints);
                            emit_at!(pc, 1, None, None);
                            // Absorbed Branch terminator at pc + 2: like the
                            // Step::Branch arm, it runs without a preceding
                            // halted check.
                            count_inst!();
                            let bsite = at(metas, pc + 2).site;
                            let t = *at(&frame.ints, *cond as usize) != 0;
                            observer.on_inst(&InstEvent {
                                site: bsite,
                                site_id: (pc + 2) as u32,
                                class: InstClass::Branch,
                                mem_read: None,
                                mem_write: None,
                            });
                            observer.on_branch(bsite, (pc + 2) as u32, t);
                            let target = if t { taken } else { not_taken };
                            observer.on_edge(func_id, bsite.block, target.block, target.edge_idx);
                            observer.on_block(func_id, target.block, target.block_idx);
                            pc = target.pc as usize;
                            halt_poll!();
                            continue;
                        }
                        Step::StoreFIJump { src, s, target } => {
                            *at_mut(&mut frame.slots_int, s.slot as usize) =
                                int_src(*src, &frame.ints);
                            emit_at!(
                                pc,
                                0,
                                None,
                                Some(self.image.layout.frame_addr(depth, s.elem))
                            );
                            // Absorbed Jump terminator at pc + 1: no event,
                            // no budget charge, exactly like Step::Jump.
                            let from = at(metas, pc + 1).site.block;
                            observer.on_edge(func_id, from, target.block, target.edge_idx);
                            observer.on_block(func_id, target.block, target.block_idx);
                            pc = target.pc as usize;
                            halt_poll!();
                            continue;
                        }
                        Step::StoreFFJump { src, s, target } => {
                            *at_mut(&mut frame.slots_float, s.slot as usize) =
                                float_src(*src, frame);
                            emit_at!(
                                pc,
                                0,
                                None,
                                Some(self.image.layout.frame_addr(depth, s.elem))
                            );
                            let from = at(metas, pc + 1).site.block;
                            observer.on_edge(func_id, from, target.block, target.edge_idx);
                            observer.on_block(func_id, target.block, target.block_idx);
                            pc = target.pc as usize;
                            halt_poll!();
                            continue;
                        }
                        Step::LoadFUnFF {
                            dst,
                            s,
                            op,
                            udst,
                            usrc,
                        } => {
                            *at_mut(&mut frame.floats, *dst as usize) =
                                *at(&frame.slots_float, s.slot as usize);
                            emit_at!(
                                pc,
                                0,
                                Some(self.image.layout.frame_addr(depth, s.elem)),
                                None
                            );
                            halt_poll!();
                            count_inst!();
                            let v = *at(&frame.floats, *usrc as usize);
                            *at_mut(&mut frame.floats, *udst as usize) = un_ff(*op, v);
                            emit_at!(pc, 1, None, None);
                            pc += 2;
                            continue;
                        }
                        Step::UnFFStoreF {
                            op,
                            udst,
                            usrc,
                            src,
                            s,
                        } => {
                            let v = *at(&frame.floats, *usrc as usize);
                            *at_mut(&mut frame.floats, *udst as usize) = un_ff(*op, v);
                            emit_at!(pc, 0, None, None);
                            halt_poll!();
                            count_inst!();
                            *at_mut(&mut frame.slots_float, s.slot as usize) =
                                float_src(*src, frame);
                            emit_at!(
                                pc,
                                1,
                                None,
                                Some(self.image.layout.frame_addr(depth, s.elem))
                            );
                            pc += 2;
                            continue;
                        }
                        Step::LoadFUnFFStoreFF {
                            dst,
                            ls,
                            op,
                            udst,
                            usrc,
                            ssrc,
                            ss,
                        } => {
                            *at_mut(&mut frame.floats, *dst as usize) =
                                *at(&frame.slots_float, ls.slot as usize);
                            emit_at!(
                                pc,
                                0,
                                Some(self.image.layout.frame_addr(depth, ls.elem)),
                                None
                            );
                            halt_poll!();
                            count_inst!();
                            let v = *at(&frame.floats, *usrc as usize);
                            *at_mut(&mut frame.floats, *udst as usize) = un_ff(*op, v);
                            emit_at!(pc, 1, None, None);
                            halt_poll!();
                            count_inst!();
                            *at_mut(&mut frame.slots_float, ss.slot as usize) =
                                float_src(*ssrc, frame);
                            emit_at!(
                                pc,
                                2,
                                None,
                                Some(self.image.layout.frame_addr(depth, ss.elem))
                            );
                            pc += 3;
                            continue;
                        }
                        Step::LoadFFAluStoreFF {
                            dst,
                            ls,
                            b,
                            src,
                            ss,
                        } => {
                            *at_mut(&mut frame.floats, *dst as usize) =
                                *at(&frame.slots_float, ls.slot as usize);
                            emit_at!(
                                pc,
                                0,
                                Some(self.image.layout.frame_addr(depth, ls.elem)),
                                None
                            );
                            halt_poll!();
                            count_inst!();
                            exec_float_alu(b, frame);
                            emit_at!(pc, 1, None, None);
                            halt_poll!();
                            count_inst!();
                            *at_mut(&mut frame.slots_float, ss.slot as usize) =
                                float_src(*src, frame);
                            emit_at!(
                                pc,
                                2,
                                None,
                                Some(self.image.layout.frame_addr(depth, ss.elem))
                            );
                            pc += 3;
                            continue;
                        }
                        // --- general (bank-table) steps ----------------------
                        Step::IntBin { op, dst, lhs, rhs } => {
                            let a = self.operand(lhs, frame, f, depth, &mut mem_read);
                            let b = self.operand(rhs, frame, f, depth, &mut mem_read);
                            let v = Value::Int(int_bin(*op, a.as_int(), b.as_int()));
                            write_reg(frame, banks, *dst, v);
                        }
                        Step::FloatBin { op, dst, lhs, rhs } => {
                            let a = self.operand(lhs, frame, f, depth, &mut mem_read);
                            let b = self.operand(rhs, frame, f, depth, &mut mem_read);
                            write_reg(frame, banks, *dst, eval_bin(*op, Ty::Float, a, b));
                        }
                        Step::Un { op, ty, dst, src } => {
                            let v = self.operand(src, frame, f, depth, &mut mem_read);
                            write_reg(frame, banks, *dst, eval_un(*op, *ty, v));
                        }
                        Step::Mov { dst, src } => {
                            let v = self.operand(src, frame, f, depth, &mut mem_read);
                            write_reg(frame, banks, *dst, v);
                        }
                        Step::LoadGlobal { dst, bank, mem } => {
                            let (value, byte_addr) = self.load_global(mem, frame);
                            mem_read = Some(byte_addr);
                            match bank {
                                RegBank::Int => {
                                    *at_mut(&mut frame.ints, *dst as usize) = value.as_int()
                                }
                                RegBank::Float => {
                                    *at_mut(&mut frame.floats, *dst as usize) = value.as_float()
                                }
                                RegBank::Tagged => {
                                    *at_mut(&mut frame.tagged, *dst as usize) = value
                                }
                            }
                        }
                        Step::LoadFrame { dst, bank, mem } => {
                            let (slot, elem) = Self::frame_slot(mem, frame);
                            mem_read = Some(self.image.layout.frame_addr(depth, elem));
                            let value = read_slot(frame, &f.slot_banks, slot);
                            match bank {
                                RegBank::Int => {
                                    *at_mut(&mut frame.ints, *dst as usize) = value.as_int()
                                }
                                RegBank::Float => {
                                    *at_mut(&mut frame.floats, *dst as usize) = value.as_float()
                                }
                                RegBank::Tagged => {
                                    *at_mut(&mut frame.tagged, *dst as usize) = value
                                }
                            }
                        }
                        Step::StoreGlobal { src, mem } => {
                            let v = self.operand(src, frame, f, depth, &mut mem_read);
                            mem_write = Some(self.store_global(mem, frame, v));
                        }
                        Step::StoreFrame { src, mem } => {
                            let v = self.operand(src, frame, f, depth, &mut mem_read);
                            let (slot, elem) = Self::frame_slot(mem, frame);
                            write_slot(frame, &f.slot_banks, slot, v);
                            mem_write = Some(self.image.layout.frame_addr(depth, elem));
                        }
                        Step::Call {
                            func,
                            args_start,
                            args_len,
                            dst,
                        } => {
                            let callee_idx = *func;
                            let callee = at(&image.funcs, callee_idx as usize);
                            let mut callee_frame =
                                self.frame_pool.acquire(callee.num_regs, &callee.frame);
                            let args = &image.call_args
                                [*args_start as usize..(*args_start + *args_len) as usize];
                            for (i, a) in args.iter().enumerate() {
                                let v = self.operand(a, frame, f, depth, &mut mem_read);
                                if let Some(p) = callee.params.get(i) {
                                    write_reg(&mut callee_frame, &callee.banks, p.0, v);
                                }
                            }
                            let site = at(metas, pc).site;
                            observer.on_inst(&InstEvent {
                                site,
                                site_id: pc as u32,
                                class: InstClass::Call,
                                mem_read,
                                mem_write: None,
                            });
                            observer.on_call(func_id, FuncId(callee_idx));
                            let ret = if depth + 1 >= self.config.max_call_depth {
                                halted = true;
                                None
                            } else {
                                sync_out!();
                                let ret = self.run_function::<O, BOUNDED>(
                                    callee_idx,
                                    &mut callee_frame,
                                    depth + 1,
                                    observer,
                                );
                                instructions = self.instructions;
                                halted = self.halted;
                                ret
                            };
                            self.frame_pool.release(callee_frame);
                            if *dst != u32::MAX {
                                if let Some(v) = ret {
                                    write_reg(frame, banks, *dst, v);
                                }
                            }
                            pc += 1;
                            continue; // the event was already emitted
                        }
                        Step::Print { src } => {
                            let v = self.operand(src, frame, f, depth, &mut mem_read);
                            self.printed.push(v);
                        }
                        Step::Nop => {}
                        Step::Jump(_) | Step::Branch { .. } | Step::Return { .. } => {
                            unreachable!("terminators handled above")
                        }
                    }
                    emit_at!(pc, 0, mem_read, mem_write);
                    pc += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Legacy tree-walking interpreter
// ---------------------------------------------------------------------------

/// Executes `program` on the pre-predecode tree-walking interpreter.
///
/// This walks the nested `Program` representation and dispatches every event
/// through `dyn Observer`, exactly as the executor did before the predecoded
/// engine landed.  It exists for two reasons: differential tests prove the
/// predecoded engine produces a bit-identical event stream and outcome, and
/// `interp_bench` measures the speedup against it.  (Dense event indices are
/// computed from an [`ExecImage`] by table lookup so both engines share the
/// [`Observer`] trait.)
pub fn execute_legacy(
    program: &Program,
    observer: &mut dyn Observer,
    config: &ExecConfig,
) -> ExecOutcome {
    let image = ExecImage::new(program);
    let mut machine = LegacyMachine {
        program,
        image: &image,
        layout: program.memory_layout(),
        globals: program.globals.iter().map(|g| g.initial_values()).collect(),
        printed: Vec::new(),
        instructions: 0,
        halted: false,
        config: *config,
    };
    let ret = machine.call(program.entry, &[], observer, 0);
    ExecOutcome {
        printed: machine.printed,
        return_value: ret,
        dynamic_instructions: machine.instructions,
        completed: !machine.halted,
    }
}

struct LegacyMachine<'a> {
    program: &'a Program,
    image: &'a ExecImage,
    layout: MemoryLayout,
    globals: Vec<Vec<Value>>,
    printed: Vec<Value>,
    instructions: u64,
    halted: bool,
    config: ExecConfig,
}

struct LegacyFrame {
    regs: Vec<Value>,
    slots: Vec<Value>,
    depth: usize,
}

impl<'a> LegacyMachine<'a> {
    fn count_inst(&mut self) {
        self.instructions += 1;
        if self.instructions >= self.config.max_instructions {
            self.halted = true;
        }
    }

    fn call(
        &mut self,
        func_id: FuncId,
        args: &[Value],
        observer: &mut dyn Observer,
        depth: usize,
    ) -> Option<Value> {
        if depth >= self.config.max_call_depth {
            self.halted = true;
            return None;
        }
        let func = self.program.function(func_id);
        let mut frame = LegacyFrame {
            regs: vec![Value::default(); func.num_regs.max(1) as usize],
            slots: vec![Value::default(); (func.frame_words.max(1)) as usize],
            depth,
        };
        for (reg, value) in func.params.iter().zip(args) {
            frame.regs[reg.0 as usize] = *value;
        }

        let mut block_id = func.entry;
        observer.on_block(func_id, block_id, self.image.block_index(func_id, block_id));
        loop {
            if self.halted {
                return None;
            }
            let block = func.block(block_id);
            for (index, inst) in block.insts.iter().enumerate() {
                if self.halted {
                    return None;
                }
                let site = InstSite {
                    func: func_id,
                    block: block_id,
                    index,
                };
                self.step(inst, site, &mut frame, observer, func_id, depth);
            }
            // Terminator.
            let term_site = InstSite {
                func: func_id,
                block: block_id,
                index: usize::MAX,
            };
            let term_id = self.image.site_id(func_id, block_id, usize::MAX);
            match &block.term {
                Terminator::Jump(next) => {
                    let edge = self
                        .image
                        .edge_index(func_id, block_id, *next)
                        .expect("static edge");
                    observer.on_edge(func_id, block_id, *next, edge);
                    block_id = *next;
                    observer.on_block(func_id, block_id, self.image.block_index(func_id, block_id));
                }
                Terminator::Branch {
                    cond,
                    taken,
                    not_taken,
                } => {
                    self.count_inst();
                    let t = frame.regs[cond.0 as usize].is_true();
                    observer.on_inst(&InstEvent {
                        site: term_site,
                        site_id: term_id,
                        class: InstClass::Branch,
                        mem_read: None,
                        mem_write: None,
                    });
                    observer.on_branch(term_site, term_id, t);
                    let next = if t { *taken } else { *not_taken };
                    let edge = self
                        .image
                        .edge_index(func_id, block_id, next)
                        .expect("static edge");
                    observer.on_edge(func_id, block_id, next, edge);
                    block_id = next;
                    observer.on_block(func_id, block_id, self.image.block_index(func_id, block_id));
                }
                Terminator::Return(v) => {
                    self.count_inst();
                    observer.on_inst(&InstEvent {
                        site: term_site,
                        site_id: term_id,
                        class: InstClass::Branch,
                        mem_read: None,
                        mem_write: None,
                    });
                    let value = v.as_ref().map(|op| self.operand(op, &mut frame, None));
                    return value;
                }
            }
        }
    }

    fn step(
        &mut self,
        inst: &Inst,
        site: InstSite,
        frame: &mut LegacyFrame,
        observer: &mut dyn Observer,
        func_id: FuncId,
        depth: usize,
    ) {
        self.count_inst();
        let site_id = self.image.site_id(site.func, site.block, site.index);
        let mut mem_read: Option<u64> = None;
        let mut mem_write: Option<u64> = None;
        match inst {
            Inst::Bin {
                op,
                ty,
                dst,
                lhs,
                rhs,
            } => {
                let a = self.operand(lhs, frame, Some(&mut mem_read));
                let b = self.operand(rhs, frame, Some(&mut mem_read));
                frame.regs[dst.0 as usize] = eval_bin(*op, *ty, a, b);
            }
            Inst::Un { op, ty, dst, src } => {
                let v = self.operand(src, frame, Some(&mut mem_read));
                frame.regs[dst.0 as usize] = eval_un(*op, *ty, v);
            }
            Inst::Mov { dst, src } => {
                let v = self.operand(src, frame, Some(&mut mem_read));
                frame.regs[dst.0 as usize] = v;
            }
            Inst::Load { dst, addr, .. } => {
                let (value, byte_addr) = self.read_memory(addr, frame);
                mem_read = Some(byte_addr);
                frame.regs[dst.0 as usize] = value;
            }
            Inst::Store { src, addr, .. } => {
                let v = self.operand(src, frame, Some(&mut mem_read));
                let byte_addr = self.write_memory(addr, frame, v);
                mem_write = Some(byte_addr);
            }
            Inst::Call { func, args, dst } => {
                let arg_values: Vec<Value> = args
                    .iter()
                    .map(|a| self.operand(a, frame, Some(&mut mem_read)))
                    .collect();
                observer.on_inst(&InstEvent {
                    site,
                    site_id,
                    class: InstClass::Call,
                    mem_read,
                    mem_write: None,
                });
                observer.on_call(func_id, *func);
                let ret = self.call(*func, &arg_values, observer, depth + 1);
                if let (Some(d), Some(v)) = (dst, ret) {
                    frame.regs[d.0 as usize] = v;
                }
                return; // the event was already emitted
            }
            Inst::Print { src } => {
                let v = self.operand(src, frame, Some(&mut mem_read));
                self.printed.push(v);
            }
            Inst::Nop => {}
        }
        observer.on_inst(&InstEvent {
            site,
            site_id,
            class: inst.class(),
            mem_read,
            mem_write,
        });
    }

    fn operand(
        &mut self,
        op: &Operand,
        frame: &mut LegacyFrame,
        mem_read: Option<&mut Option<u64>>,
    ) -> Value {
        match op {
            Operand::Reg(r) => frame.regs[r.0 as usize],
            Operand::ImmInt(v) => Value::Int(*v),
            Operand::ImmFloat(v) => Value::Float(*v),
            Operand::Mem(addr) => {
                let (value, byte_addr) = self.read_memory(addr, frame);
                if let Some(slot) = mem_read {
                    *slot = Some(byte_addr);
                }
                value
            }
        }
    }

    fn element_index(addr: &Address, frame: &LegacyFrame) -> i64 {
        let idx = addr
            .index
            .map(|r: Reg| frame.regs[r.0 as usize].as_int())
            .unwrap_or(0);
        addr.offset + idx * addr.scale
    }

    fn read_memory(&mut self, addr: &Address, frame: &LegacyFrame) -> (Value, u64) {
        let elem = Self::element_index(addr, frame);
        match addr.base {
            MemBase::Global(g) => {
                let byte = self.layout.global_addr(g, elem);
                (self.global_get(g, elem), byte)
            }
            MemBase::Frame => {
                let byte = self.layout.frame_addr(frame.depth, elem);
                let n = frame.slots.len() as i64;
                let i = elem.rem_euclid(n) as usize;
                (frame.slots[i], byte)
            }
        }
    }

    fn write_memory(&mut self, addr: &Address, frame: &mut LegacyFrame, value: Value) -> u64 {
        let elem = Self::element_index(addr, frame);
        match addr.base {
            MemBase::Global(g) => {
                let byte = self.layout.global_addr(g, elem);
                self.global_set(g, elem, value);
                byte
            }
            MemBase::Frame => {
                let byte = self.layout.frame_addr(frame.depth, elem);
                let n = frame.slots.len() as i64;
                let i = elem.rem_euclid(n) as usize;
                frame.slots[i] = value;
                byte
            }
        }
    }

    fn global_get(&self, g: GlobalId, elem: i64) -> Value {
        let arr = &self.globals[g.index()];
        let n = arr.len() as i64;
        arr[elem.rem_euclid(n.max(1)) as usize]
    }

    fn global_set(&mut self, g: GlobalId, elem: i64, value: Value) {
        let arr = &mut self.globals[g.index()];
        let n = arr.len() as i64;
        let i = elem.rem_euclid(n.max(1)) as usize;
        arr[i] = value;
    }
}

/// Convenience: the dynamic instruction count of a full run.
pub fn dynamic_instruction_count(program: &Program) -> u64 {
    run(program).dynamic_instructions
}

/// An observer that simply counts events; useful as a cheap smoke check and
/// in tests.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CountingObserver {
    /// Dynamic instructions seen.
    pub instructions: u64,
    /// Loads seen.
    pub loads: u64,
    /// Stores seen.
    pub stores: u64,
    /// Conditional branches seen.
    pub branches: u64,
    /// Taken conditional branches seen.
    pub taken_branches: u64,
    /// Blocks entered.
    pub blocks: u64,
    /// Calls observed.
    pub calls: u64,
}

impl Observer for CountingObserver {
    fn on_inst(&mut self, event: &InstEvent) {
        self.instructions += 1;
        if event.mem_read.is_some() {
            self.loads += 1;
        }
        if event.mem_write.is_some() {
            self.stores += 1;
        }
    }
    fn on_block(&mut self, _func: FuncId, _block: BlockId, _block_idx: u32) {
        self.blocks += 1;
    }
    fn on_branch(&mut self, _site: InstSite, _site_id: u32, taken: bool) {
        self.branches += 1;
        if taken {
            self.taken_branches += 1;
        }
    }
    fn on_call(&mut self, _caller: FuncId, _callee: FuncId) {
        self.calls += 1;
    }
}

// Keep WORD_BYTES referenced so the layout convention is visible here.
const _: () = assert!(WORD_BYTES == 4);

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_ir::program::{Function, Global, Program};
    use bsg_ir::types::Ty;
    use bsg_ir::visa::BinOp;

    /// main: g[0]=5; g[1]=g[0]+2; print g[1]; return g[1]*2
    fn simple_program() -> Program {
        let mut p = Program::new();
        let g = p.add_global(Global::zeroed("g", 8));
        let mut f = Function::new("main");
        let r0 = f.fresh_reg();
        let r1 = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Store {
                src: Operand::ImmInt(5),
                addr: Address::global(g, 0),
                ty: Ty::Int,
            },
            Inst::Load {
                dst: r0,
                addr: Address::global(g, 0),
                ty: Ty::Int,
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: r0,
                lhs: r0.into(),
                rhs: Operand::ImmInt(2),
            },
            Inst::Store {
                src: r0.into(),
                addr: Address::global(g, 1),
                ty: Ty::Int,
            },
            Inst::Print { src: r0.into() },
            Inst::Bin {
                op: BinOp::Mul,
                ty: Ty::Int,
                dst: r1,
                lhs: r0.into(),
                rhs: Operand::ImmInt(2),
            },
        ];
        f.blocks[0].term = Terminator::Return(Some(r1.into()));
        p.add_function(f);
        p
    }

    #[test]
    fn executes_straight_line_code() {
        let p = simple_program();
        let out = run(&p);
        assert!(out.completed);
        assert_eq!(out.return_value, Some(Value::Int(14)));
        assert_eq!(out.printed, vec![Value::Int(7)]);
        assert_eq!(out.dynamic_instructions, 7, "6 instructions + return");
    }

    #[test]
    fn counting_observer_sees_memory_and_blocks() {
        let p = simple_program();
        let mut counter = CountingObserver::default();
        let out = execute(&p, &mut counter, &ExecConfig::default());
        assert_eq!(counter.instructions, out.dynamic_instructions);
        assert_eq!(counter.loads, 1);
        assert_eq!(counter.stores, 2);
        assert_eq!(counter.blocks, 1);
        assert_eq!(counter.branches, 0);
    }

    /// main: r0 = 0; loop { r0 += 1 } — never returns without preemption.
    fn infinite_loop_program() -> Program {
        let mut p = Program::new();
        let mut f = Function::new("main");
        let r = f.fresh_reg();
        f.blocks[0].insts.push(Inst::Bin {
            op: BinOp::Add,
            ty: Ty::Int,
            dst: r,
            lhs: r.into(),
            rhs: Operand::ImmInt(1),
        });
        f.blocks[0].term = Terminator::Jump(f.entry);
        p.add_function(f);
        p
    }

    #[test]
    fn ambient_deadline_token_preempts_an_infinite_loop() {
        let p = infinite_loop_program();
        let image = ExecImage::new(&p);
        let token = std::sync::Arc::new(crate::cancel::CancelToken::with_deadline(
            std::time::Duration::from_millis(30),
        ));
        let started = std::time::Instant::now();
        let _guard = crate::cancel::install(token);
        let out = execute_image(&image, &mut NullObserver, &ExecConfig::default());
        let elapsed = started.elapsed();
        assert!(!out.completed, "the loop must have been halted");
        assert!(out.dynamic_instructions > 0, "the loop actually ran");
        assert!(
            elapsed < std::time::Duration::from_millis(500),
            "preemption must be prompt, took {elapsed:?}"
        );
    }

    #[test]
    fn explicit_cancel_from_another_thread_halts_the_loop() {
        let p = infinite_loop_program();
        let image = ExecImage::new(&p);
        let token = std::sync::Arc::new(crate::cancel::CancelToken::new());
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                token.cancel();
            })
        };
        let _guard = crate::cancel::install(token);
        let out = execute_image(&image, &mut NullObserver, &ExecConfig::default());
        assert!(!out.completed);
        canceller.join().expect("canceller thread");
    }

    #[test]
    fn an_untripped_token_leaves_results_identical() {
        let p = simple_program();
        let baseline = run(&p);
        let token = std::sync::Arc::new(crate::cancel::CancelToken::with_deadline(
            std::time::Duration::from_secs(3600),
        ));
        let _guard = crate::cancel::install(token);
        let out = run(&p);
        assert_eq!(out.completed, baseline.completed);
        assert_eq!(out.return_value, baseline.return_value);
        assert_eq!(out.printed, baseline.printed);
        assert_eq!(out.dynamic_instructions, baseline.dynamic_instructions);
    }

    /// main: s=0; for(i=0;i<10;i++) s+=i; return s  — built directly in VISA.
    fn loop_program() -> Program {
        let mut p = Program::new();
        let mut f = Function::new("main");
        let s = f.fresh_reg();
        let i = f.fresh_reg();
        let c = f.fresh_reg();
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        f.blocks[0].insts = vec![
            Inst::Mov {
                dst: s,
                src: Operand::ImmInt(0),
            },
            Inst::Mov {
                dst: i,
                src: Operand::ImmInt(0),
            },
        ];
        f.blocks[0].term = Terminator::Jump(header);
        f.blocks[header.index()].insts = vec![Inst::Bin {
            op: BinOp::Lt,
            ty: Ty::Int,
            dst: c,
            lhs: i.into(),
            rhs: Operand::ImmInt(10),
        }];
        f.blocks[header.index()].term = Terminator::Branch {
            cond: c,
            taken: body,
            not_taken: exit,
        };
        f.blocks[body.index()].insts = vec![
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: s,
                lhs: s.into(),
                rhs: i.into(),
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: i,
                lhs: i.into(),
                rhs: Operand::ImmInt(1),
            },
        ];
        f.blocks[body.index()].term = Terminator::Jump(header);
        f.blocks[exit.index()].term = Terminator::Return(Some(s.into()));
        p.add_function(f);
        p
    }

    #[test]
    fn loops_and_branch_events() {
        let p = loop_program();
        let mut counter = CountingObserver::default();
        let out = execute(&p, &mut counter, &ExecConfig::default());
        assert_eq!(out.return_value, Some(Value::Int(45)));
        assert_eq!(
            counter.branches, 11,
            "10 taken + 1 not-taken header branches"
        );
        assert_eq!(counter.taken_branches, 10);
    }

    #[test]
    fn instruction_budget_halts_execution() {
        let p = loop_program();
        let out = execute(
            &p,
            &mut NullObserver,
            &ExecConfig {
                max_instructions: 20,
                max_call_depth: 8,
            },
        );
        assert!(!out.completed);
        assert!(out.dynamic_instructions <= 21);
        assert_eq!(out.return_value, None);
    }

    #[test]
    fn function_calls_pass_arguments_and_return_values() {
        // add3(a, b, c) { return a + b + c; }  main { return add3(1, 2, 3); }
        let mut p = Program::new();
        let mut callee = Function::new("add3");
        let (a, b, c) = (callee.fresh_reg(), callee.fresh_reg(), callee.fresh_reg());
        let t = callee.fresh_reg();
        callee.params = vec![a, b, c];
        callee.blocks[0].insts = vec![
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: t,
                lhs: a.into(),
                rhs: b.into(),
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: t,
                lhs: t.into(),
                rhs: c.into(),
            },
        ];
        callee.blocks[0].term = Terminator::Return(Some(t.into()));

        let mut main = Function::new("main");
        let r = main.fresh_reg();
        main.blocks[0].insts = vec![Inst::Call {
            func: FuncId(1),
            args: vec![Operand::ImmInt(1), Operand::ImmInt(2), Operand::ImmInt(3)],
            dst: Some(r),
        }];
        main.blocks[0].term = Terminator::Return(Some(r.into()));
        p.add_function(main);
        p.add_function(callee);

        let mut counter = CountingObserver::default();
        let out = execute(&p, &mut counter, &ExecConfig::default());
        assert_eq!(out.return_value, Some(Value::Int(6)));
        assert_eq!(counter.calls, 1);
    }

    #[test]
    fn call_depth_limit_aborts() {
        // f() { return f(); } — infinite recursion must be cut off.
        let mut p = Program::new();
        let mut f = Function::new("f");
        let r = f.fresh_reg();
        f.blocks[0].insts = vec![Inst::Call {
            func: FuncId(0),
            args: vec![],
            dst: Some(r),
        }];
        f.blocks[0].term = Terminator::Return(Some(r.into()));
        p.add_function(f);
        let out = execute(
            &p,
            &mut NullObserver,
            &ExecConfig {
                max_instructions: 1_000_000,
                max_call_depth: 32,
            },
        );
        assert!(!out.completed);
    }

    #[test]
    fn out_of_bounds_accesses_wrap_instead_of_panicking() {
        let mut p = Program::new();
        let g = p.add_global(Global::zeroed("g", 4));
        let mut f = Function::new("main");
        let r = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Store {
                src: Operand::ImmInt(9),
                addr: Address::global(g, 6),
                ty: Ty::Int,
            },
            Inst::Load {
                dst: r,
                addr: Address::global(g, 2),
                ty: Ty::Int,
            },
        ];
        f.blocks[0].term = Terminator::Return(Some(r.into()));
        p.add_function(f);
        let out = run(&p);
        assert_eq!(
            out.return_value,
            Some(Value::Int(9)),
            "index 6 wraps to 2 in a 4-element array"
        );
    }

    #[test]
    fn folded_memory_operands_read_memory() {
        let mut p = Program::new();
        let g = p.add_global(Global {
            name: "g".into(),
            elems: 4,
            ty: Ty::Int,
            init: bsg_ir::program::GlobalInit::Values(vec![Value::Int(10), Value::Int(32)]),
        });
        let mut f = Function::new("main");
        let r = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Load {
                dst: r,
                addr: Address::global(g, 0),
                ty: Ty::Int,
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: r,
                lhs: r.into(),
                rhs: Operand::Mem(Address::global(g, 1)),
            },
        ];
        f.blocks[0].term = Terminator::Return(Some(r.into()));
        p.add_function(f);
        let mut counter = CountingObserver::default();
        let out = execute(&p, &mut counter, &ExecConfig::default());
        assert_eq!(out.return_value, Some(Value::Int(42)));
        assert_eq!(
            counter.loads, 2,
            "the folded operand still counts as a memory read"
        );
    }

    #[test]
    fn int_bin_matches_eval_bin_for_every_op() {
        let samples = [i64::MIN, -17, -1, 0, 1, 2, 3, 63, 64, 65, 1 << 40, i64::MAX];
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::Eq,
            BinOp::Ne,
        ] {
            for a in samples {
                for b in samples {
                    assert_eq!(
                        Value::Int(int_bin(op, a, b)),
                        eval_bin(op, Ty::Int, Value::Int(a), Value::Int(b)),
                        "op {op:?} a {a} b {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn float_micro_ops_match_eval_bin_and_eval_un() {
        let samples = [-3.5f64, -0.0, 0.0, 0.25, 1.0, 2.5, 1e100, f64::INFINITY];
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Rem] {
            for a in samples {
                for b in samples {
                    // Compare bitwise so NaN results (e.g. inf - inf) count
                    // as agreement rather than tripping NaN != NaN.
                    let got = float_arith(op, a, b);
                    let want = match eval_bin(op, Ty::Float, Value::Float(a), Value::Float(b)) {
                        Value::Float(f) => f,
                        v => panic!("float arith produced {v:?}"),
                    };
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "op {op:?} a {a} b {b}: {got} vs {want}"
                    );
                }
            }
        }
        for op in [
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::Eq,
            BinOp::Ne,
        ] {
            for a in samples {
                for b in samples {
                    assert_eq!(
                        Value::Int(float_cmp(op, a, b)),
                        eval_bin(op, Ty::Float, Value::Float(a), Value::Float(b)),
                        "op {op:?} a {a} b {b}"
                    );
                }
            }
        }
        for v in [i64::MIN, -5, 0, 1, 77, i64::MAX] {
            assert_eq!(
                Value::Int(un_ii(UnOp::Neg, v)),
                eval_un(UnOp::Neg, Ty::Int, Value::Int(v))
            );
            assert_eq!(
                Value::Int(un_ii(UnOp::Not, v)),
                eval_un(UnOp::Not, Ty::Int, Value::Int(v))
            );
            assert_eq!(
                Value::Int(un_ii(UnOp::LogicalNot, v)),
                eval_un(UnOp::LogicalNot, Ty::Int, Value::Int(v))
            );
            assert_eq!(
                Value::Int(un_ii(UnOp::ToInt, v)),
                eval_un(UnOp::ToInt, Ty::Int, Value::Int(v))
            );
            assert_eq!(
                Value::Int(un_ii(UnOp::Abs, v)),
                eval_un(UnOp::Abs, Ty::Int, Value::Int(v))
            );
        }
        for v in [-2.0f64, -0.5, 0.0, 0.5, 4.0, 1e10] {
            for op in [
                UnOp::Neg,
                UnOp::Abs,
                UnOp::ToFloat,
                UnOp::Sqrt,
                UnOp::Sin,
                UnOp::Cos,
                UnOp::Log,
            ] {
                let ty = Ty::Float;
                assert_eq!(
                    Value::Float(un_ff(op, v)),
                    eval_un(op, ty, Value::Float(v)),
                    "op {op:?} v {v}"
                );
            }
        }
    }

    #[test]
    fn legacy_and_predecoded_agree_on_outcome() {
        for p in [simple_program(), loop_program()] {
            let new = execute(&p, &mut NullObserver, &ExecConfig::default());
            let old = execute_legacy(&p, &mut NullObserver, &ExecConfig::default());
            assert_eq!(new, old);
        }
    }

    #[test]
    fn dyn_wrapper_matches_generic_path() {
        let p = loop_program();
        let mut a = CountingObserver::default();
        let mut b = CountingObserver::default();
        let out_a = execute(&p, &mut a, &ExecConfig::default());
        let out_b = execute_dyn(&p, &mut b, &ExecConfig::default());
        assert_eq!(out_a, out_b);
        assert_eq!(a, b);
    }

    #[test]
    fn prebuilt_image_reruns_from_clean_state() {
        let p = simple_program();
        let image = ExecImage::new(&p);
        let first = execute_image(&image, &mut NullObserver, &ExecConfig::default());
        let second = execute_image(&image, &mut NullObserver, &ExecConfig::default());
        assert_eq!(first, second, "global state must reset between runs");
    }

    #[test]
    fn unfused_image_matches_fused_image() {
        let p = loop_program();
        let fused = ExecImage::new(&p);
        let unfused = ExecImage::unfused(&p);
        assert!(fused.num_fused() > 0);
        let a = execute_image(&fused, &mut NullObserver, &ExecConfig::default());
        let b = execute_image(&unfused, &mut NullObserver, &ExecConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn frame_pool_caps_length_and_retained_capacity() {
        let mut pool = FramePool::new();
        // Release far more frames than the cap, each with oversized buffers.
        for _ in 0..MAX_POOLED_FRAMES + 40 {
            let frame = FrameBuf {
                ints: Vec::with_capacity(MAX_RETAINED_CAPACITY * 8),
                floats: Vec::with_capacity(MAX_RETAINED_CAPACITY * 8),
                tagged: Vec::with_capacity(MAX_RETAINED_CAPACITY * 8),
                slots: Vec::with_capacity(MAX_RETAINED_CAPACITY * 8),
                slots_int: Vec::with_capacity(MAX_RETAINED_CAPACITY * 8),
                slots_float: Vec::with_capacity(MAX_RETAINED_CAPACITY * 8),
                nslots: 1,
            };
            pool.release(frame);
        }
        assert_eq!(pool.len(), MAX_POOLED_FRAMES, "pool length is capped");
        for f in &pool.frames {
            assert!(f.ints.capacity() <= MAX_RETAINED_CAPACITY);
            assert!(f.floats.capacity() <= MAX_RETAINED_CAPACITY);
            assert!(f.tagged.capacity() <= MAX_RETAINED_CAPACITY);
            assert!(f.slots.capacity() <= MAX_RETAINED_CAPACITY);
            assert!(f.slots_int.capacity() <= MAX_RETAINED_CAPACITY);
            assert!(f.slots_float.capacity() <= MAX_RETAINED_CAPACITY);
        }
    }

    #[test]
    fn deep_recursion_does_not_pin_oversized_frames() {
        // fib-style recursion with a large frame: after the run the engine is
        // dropped, but the pool behaviour is observable through FramePool
        // directly — acquire after releasing an oversized frame reuses a
        // freshly-shrunk buffer.
        let mut pool = FramePool::new();
        let big = FrameBuf {
            ints: Vec::with_capacity(1 << 20),
            floats: Vec::new(),
            tagged: Vec::new(),
            slots: Vec::new(),
            slots_int: Vec::new(),
            slots_float: Vec::new(),
            nslots: 1,
        };
        pool.release(big);
        let reused = pool.acquire(
            4,
            &FrameLayout {
                nslots: 4,
                has_int: false,
                has_float: false,
                has_tagged: true,
                zero_reg_ints: true,
                zero_reg_tagged: true,
                zero_slots_int: false,
                zero_slots_tagged: true,
            },
        );
        assert!(reused.ints.capacity() <= MAX_RETAINED_CAPACITY);
        assert_eq!(reused.ints.len(), 4);
        assert_eq!(reused.slots.len(), 4);
        assert_eq!(reused.nslots, 4);
        assert!(reused.slots_int.is_empty() && reused.slots_float.is_empty());
    }
}
