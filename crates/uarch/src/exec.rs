//! Functional execution of VISA programs with instrumentation hooks.
//!
//! The executor plays the role Pin plays in the paper (§III-A): it runs the
//! compiled workload and exposes every dynamic event — instruction executed,
//! basic block entered, control-flow edge traversed, conditional branch
//! outcome, memory address touched — to an [`Observer`].  The SFGL profiler,
//! the cache simulator, the branch predictors and the pipeline timing models
//! are all observers of the same execution.

use bsg_ir::eval::{eval_bin, eval_un};
use bsg_ir::program::MemoryLayout;
use bsg_ir::types::{BlockId, FuncId, GlobalId, Reg, Value, WORD_BYTES};
use bsg_ir::visa::{Address, Inst, InstClass, MemBase, Operand, Terminator};
use bsg_ir::Program;

/// Identifies a static instruction (profiling key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstSite {
    /// Enclosing function.
    pub func: FuncId,
    /// Enclosing block.
    pub block: BlockId,
    /// Index within the block (`usize::MAX` for the terminator).
    pub index: usize,
}

/// A dynamic instruction event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstEvent {
    /// Static location of the instruction.
    pub site: InstSite,
    /// Classification (load/store/branch/ALU/...).
    pub class: InstClass,
    /// Byte address read, if the instruction reads memory.
    pub mem_read: Option<u64>,
    /// Byte address written, if the instruction writes memory.
    pub mem_write: Option<u64>,
}

/// Observer of a program execution.  All methods have empty default bodies so
/// implementations only override what they need.
pub trait Observer {
    /// Called for every dynamic instruction.
    fn on_inst(&mut self, event: &InstEvent) {
        let _ = event;
    }
    /// Called when a basic block is entered.
    fn on_block(&mut self, func: FuncId, block: BlockId) {
        let _ = (func, block);
    }
    /// Called for every intra-function control-flow edge.
    fn on_edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {
        let _ = (func, from, to);
    }
    /// Called for every executed conditional branch.
    fn on_branch(&mut self, site: InstSite, taken: bool) {
        let _ = (site, taken);
    }
    /// Called when a function is entered via a call (not for the entry function).
    fn on_call(&mut self, caller: FuncId, callee: FuncId) {
        let _ = (caller, callee);
    }
}

/// The no-op observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Execution limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Stop after this many dynamic instructions (the run is then marked as
    /// not completed).  Defaults to `u64::MAX`.
    pub max_instructions: u64,
    /// Maximum call depth before the run is aborted.
    pub max_call_depth: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { max_instructions: u64::MAX, max_call_depth: 256 }
    }
}

/// The observable outcome of an execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Values printed by `Print` instructions, in order.
    pub printed: Vec<Value>,
    /// Value returned by the entry function.
    pub return_value: Option<Value>,
    /// Number of dynamic instructions executed.
    pub dynamic_instructions: u64,
    /// `false` if the instruction budget or call-depth limit was hit.
    pub completed: bool,
}

impl ExecOutcome {
    /// The observable behaviour of the run: return value plus print stream.
    /// Compiler correctness tests compare this across optimization levels.
    pub fn observable(&self) -> (Option<Value>, &[Value]) {
        (self.return_value, &self.printed)
    }
}

/// Executes `program` with the default configuration and no observer.
pub fn run(program: &Program) -> ExecOutcome {
    execute(program, &mut NullObserver, &ExecConfig::default())
}

/// Executes `program`, reporting every dynamic event to `observer`.
pub fn execute(program: &Program, observer: &mut dyn Observer, config: &ExecConfig) -> ExecOutcome {
    let mut machine = Machine::new(program, config);
    let ret = machine.call(program.entry, &[], observer, 0);
    ExecOutcome {
        printed: machine.printed,
        return_value: ret,
        dynamic_instructions: machine.instructions,
        completed: !machine.halted,
    }
}

/// Executes a program and also runs a secondary observer (convenience for the
/// experiment harness, which frequently pairs a profiler with a cache model).
pub fn execute_pair(
    program: &Program,
    first: &mut dyn Observer,
    second: &mut dyn Observer,
    config: &ExecConfig,
) -> ExecOutcome {
    let mut both = PairObserver { first, second };
    execute(program, &mut both, config)
}

/// Fans every event out to two observers.
pub struct PairObserver<'a> {
    /// First observer.
    pub first: &'a mut dyn Observer,
    /// Second observer.
    pub second: &'a mut dyn Observer,
}

impl Observer for PairObserver<'_> {
    fn on_inst(&mut self, event: &InstEvent) {
        self.first.on_inst(event);
        self.second.on_inst(event);
    }
    fn on_block(&mut self, func: FuncId, block: BlockId) {
        self.first.on_block(func, block);
        self.second.on_block(func, block);
    }
    fn on_edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {
        self.first.on_edge(func, from, to);
        self.second.on_edge(func, from, to);
    }
    fn on_branch(&mut self, site: InstSite, taken: bool) {
        self.first.on_branch(site, taken);
        self.second.on_branch(site, taken);
    }
    fn on_call(&mut self, caller: FuncId, callee: FuncId) {
        self.first.on_call(caller, callee);
        self.second.on_call(caller, callee);
    }
}

struct Machine<'a> {
    program: &'a Program,
    layout: MemoryLayout,
    globals: Vec<Vec<Value>>,
    printed: Vec<Value>,
    instructions: u64,
    halted: bool,
    config: ExecConfig,
}

struct Frame {
    regs: Vec<Value>,
    slots: Vec<Value>,
    depth: usize,
}

impl<'a> Machine<'a> {
    fn new(program: &'a Program, config: &ExecConfig) -> Self {
        Machine {
            program,
            layout: program.memory_layout(),
            globals: program.globals.iter().map(|g| g.initial_values()).collect(),
            printed: Vec::new(),
            instructions: 0,
            halted: false,
            config: *config,
        }
    }

    fn count_inst(&mut self) {
        self.instructions += 1;
        if self.instructions >= self.config.max_instructions {
            self.halted = true;
        }
    }

    fn call(
        &mut self,
        func_id: FuncId,
        args: &[Value],
        observer: &mut dyn Observer,
        depth: usize,
    ) -> Option<Value> {
        if depth >= self.config.max_call_depth {
            self.halted = true;
            return None;
        }
        let func = self.program.function(func_id);
        let mut frame = Frame {
            regs: vec![Value::default(); func.num_regs.max(1) as usize],
            slots: vec![Value::default(); (func.frame_words.max(1)) as usize],
            depth,
        };
        for (reg, value) in func.params.iter().zip(args) {
            frame.regs[reg.0 as usize] = *value;
        }

        let mut block_id = func.entry;
        observer.on_block(func_id, block_id);
        loop {
            if self.halted {
                return None;
            }
            let block = func.block(block_id);
            for (index, inst) in block.insts.iter().enumerate() {
                if self.halted {
                    return None;
                }
                let site = InstSite { func: func_id, block: block_id, index };
                self.step(inst, site, &mut frame, observer, func_id, depth);
            }
            // Terminator.
            let term_site = InstSite { func: func_id, block: block_id, index: usize::MAX };
            match &block.term {
                Terminator::Jump(next) => {
                    observer.on_edge(func_id, block_id, *next);
                    block_id = *next;
                    observer.on_block(func_id, block_id);
                }
                Terminator::Branch { cond, taken, not_taken } => {
                    self.count_inst();
                    let t = frame.regs[cond.0 as usize].is_true();
                    observer.on_inst(&InstEvent {
                        site: term_site,
                        class: InstClass::Branch,
                        mem_read: None,
                        mem_write: None,
                    });
                    observer.on_branch(term_site, t);
                    let next = if t { *taken } else { *not_taken };
                    observer.on_edge(func_id, block_id, next);
                    block_id = next;
                    observer.on_block(func_id, block_id);
                }
                Terminator::Return(v) => {
                    self.count_inst();
                    observer.on_inst(&InstEvent {
                        site: term_site,
                        class: InstClass::Branch,
                        mem_read: None,
                        mem_write: None,
                    });
                    let value = v.as_ref().map(|op| self.operand(op, &mut frame, None));
                    return value;
                }
            }
        }
    }

    fn step(
        &mut self,
        inst: &Inst,
        site: InstSite,
        frame: &mut Frame,
        observer: &mut dyn Observer,
        func_id: FuncId,
        depth: usize,
    ) {
        self.count_inst();
        let mut mem_read: Option<u64> = None;
        let mut mem_write: Option<u64> = None;
        match inst {
            Inst::Bin { op, ty, dst, lhs, rhs } => {
                let a = self.operand(lhs, frame, Some(&mut mem_read));
                let b = self.operand(rhs, frame, Some(&mut mem_read));
                frame.regs[dst.0 as usize] = eval_bin(*op, *ty, a, b);
            }
            Inst::Un { op, ty, dst, src } => {
                let v = self.operand(src, frame, Some(&mut mem_read));
                frame.regs[dst.0 as usize] = eval_un(*op, *ty, v);
            }
            Inst::Mov { dst, src } => {
                let v = self.operand(src, frame, Some(&mut mem_read));
                frame.regs[dst.0 as usize] = v;
            }
            Inst::Load { dst, addr, .. } => {
                let (value, byte_addr) = self.read_memory(addr, frame);
                mem_read = Some(byte_addr);
                frame.regs[dst.0 as usize] = value;
            }
            Inst::Store { src, addr, .. } => {
                let v = self.operand(src, frame, Some(&mut mem_read));
                let byte_addr = self.write_memory(addr, frame, v);
                mem_write = Some(byte_addr);
            }
            Inst::Call { func, args, dst } => {
                let arg_values: Vec<Value> =
                    args.iter().map(|a| self.operand(a, frame, Some(&mut mem_read))).collect();
                observer.on_inst(&InstEvent {
                    site,
                    class: InstClass::Call,
                    mem_read,
                    mem_write: None,
                });
                observer.on_call(func_id, *func);
                let ret = self.call(*func, &arg_values, observer, depth + 1);
                if let (Some(d), Some(v)) = (dst, ret) {
                    frame.regs[d.0 as usize] = v;
                }
                return; // the event was already emitted
            }
            Inst::Print { src } => {
                let v = self.operand(src, frame, Some(&mut mem_read));
                self.printed.push(v);
            }
            Inst::Nop => {}
        }
        observer.on_inst(&InstEvent { site, class: inst.class(), mem_read, mem_write });
    }

    fn operand(&mut self, op: &Operand, frame: &mut Frame, mem_read: Option<&mut Option<u64>>) -> Value {
        match op {
            Operand::Reg(r) => frame.regs[r.0 as usize],
            Operand::ImmInt(v) => Value::Int(*v),
            Operand::ImmFloat(v) => Value::Float(*v),
            Operand::Mem(addr) => {
                let (value, byte_addr) = self.read_memory(addr, frame);
                if let Some(slot) = mem_read {
                    *slot = Some(byte_addr);
                }
                value
            }
        }
    }

    fn element_index(addr: &Address, frame: &Frame) -> i64 {
        let idx = addr.index.map(|r: Reg| frame.regs[r.0 as usize].as_int()).unwrap_or(0);
        addr.offset + idx * addr.scale
    }

    fn read_memory(&mut self, addr: &Address, frame: &Frame) -> (Value, u64) {
        let elem = Self::element_index(addr, frame);
        match addr.base {
            MemBase::Global(g) => {
                let byte = self.layout.global_addr(g, elem);
                (self.global_get(g, elem), byte)
            }
            MemBase::Frame => {
                let byte = self.layout.frame_addr(frame.depth, elem);
                let n = frame.slots.len() as i64;
                let i = elem.rem_euclid(n) as usize;
                (frame.slots[i], byte)
            }
        }
    }

    fn write_memory(&mut self, addr: &Address, frame: &mut Frame, value: Value) -> u64 {
        let elem = Self::element_index(addr, frame);
        match addr.base {
            MemBase::Global(g) => {
                let byte = self.layout.global_addr(g, elem);
                self.global_set(g, elem, value);
                byte
            }
            MemBase::Frame => {
                let byte = self.layout.frame_addr(frame.depth, elem);
                let n = frame.slots.len() as i64;
                let i = elem.rem_euclid(n) as usize;
                frame.slots[i] = value;
                byte
            }
        }
    }

    fn global_get(&self, g: GlobalId, elem: i64) -> Value {
        let arr = &self.globals[g.index()];
        let n = arr.len() as i64;
        arr[elem.rem_euclid(n.max(1)) as usize]
    }

    fn global_set(&mut self, g: GlobalId, elem: i64, value: Value) {
        let arr = &mut self.globals[g.index()];
        let n = arr.len() as i64;
        let i = elem.rem_euclid(n.max(1)) as usize;
        arr[i] = value;
    }
}

/// Convenience: the dynamic instruction count of a full run.
pub fn dynamic_instruction_count(program: &Program) -> u64 {
    run(program).dynamic_instructions
}

/// An observer that simply counts events; useful as a cheap smoke check and
/// in tests.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CountingObserver {
    /// Dynamic instructions seen.
    pub instructions: u64,
    /// Loads seen.
    pub loads: u64,
    /// Stores seen.
    pub stores: u64,
    /// Conditional branches seen.
    pub branches: u64,
    /// Taken conditional branches seen.
    pub taken_branches: u64,
    /// Blocks entered.
    pub blocks: u64,
    /// Calls observed.
    pub calls: u64,
}

impl Observer for CountingObserver {
    fn on_inst(&mut self, event: &InstEvent) {
        self.instructions += 1;
        if event.mem_read.is_some() {
            self.loads += 1;
        }
        if event.mem_write.is_some() {
            self.stores += 1;
        }
    }
    fn on_block(&mut self, _func: FuncId, _block: BlockId) {
        self.blocks += 1;
    }
    fn on_branch(&mut self, _site: InstSite, taken: bool) {
        self.branches += 1;
        if taken {
            self.taken_branches += 1;
        }
    }
    fn on_call(&mut self, _caller: FuncId, _callee: FuncId) {
        self.calls += 1;
    }
}

// Keep WORD_BYTES referenced so the layout convention is visible here.
const _: () = assert!(WORD_BYTES == 4);

#[cfg(test)]
mod tests {
    use super::*;
    use bsg_ir::program::{Function, Global, Program};
    use bsg_ir::types::Ty;
    use bsg_ir::visa::BinOp;

    /// main: g[0]=5; g[1]=g[0]+2; print g[1]; return g[1]*2
    fn simple_program() -> Program {
        let mut p = Program::new();
        let g = p.add_global(Global::zeroed("g", 8));
        let mut f = Function::new("main");
        let r0 = f.fresh_reg();
        let r1 = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Store { src: Operand::ImmInt(5), addr: Address::global(g, 0), ty: Ty::Int },
            Inst::Load { dst: r0, addr: Address::global(g, 0), ty: Ty::Int },
            Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: r0, lhs: r0.into(), rhs: Operand::ImmInt(2) },
            Inst::Store { src: r0.into(), addr: Address::global(g, 1), ty: Ty::Int },
            Inst::Print { src: r0.into() },
            Inst::Bin { op: BinOp::Mul, ty: Ty::Int, dst: r1, lhs: r0.into(), rhs: Operand::ImmInt(2) },
        ];
        f.blocks[0].term = Terminator::Return(Some(r1.into()));
        p.add_function(f);
        p
    }

    #[test]
    fn executes_straight_line_code() {
        let p = simple_program();
        let out = run(&p);
        assert!(out.completed);
        assert_eq!(out.return_value, Some(Value::Int(14)));
        assert_eq!(out.printed, vec![Value::Int(7)]);
        assert_eq!(out.dynamic_instructions, 7, "6 instructions + return");
    }

    #[test]
    fn counting_observer_sees_memory_and_blocks() {
        let p = simple_program();
        let mut counter = CountingObserver::default();
        let out = execute(&p, &mut counter, &ExecConfig::default());
        assert_eq!(counter.instructions, out.dynamic_instructions);
        assert_eq!(counter.loads, 1);
        assert_eq!(counter.stores, 2);
        assert_eq!(counter.blocks, 1);
        assert_eq!(counter.branches, 0);
    }

    /// main: s=0; for(i=0;i<10;i++) s+=i; return s  — built directly in VISA.
    fn loop_program() -> Program {
        let mut p = Program::new();
        let mut f = Function::new("main");
        let s = f.fresh_reg();
        let i = f.fresh_reg();
        let c = f.fresh_reg();
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        f.blocks[0].insts = vec![
            Inst::Mov { dst: s, src: Operand::ImmInt(0) },
            Inst::Mov { dst: i, src: Operand::ImmInt(0) },
        ];
        f.blocks[0].term = Terminator::Jump(header);
        f.blocks[header.index()].insts = vec![Inst::Bin {
            op: BinOp::Lt,
            ty: Ty::Int,
            dst: c,
            lhs: i.into(),
            rhs: Operand::ImmInt(10),
        }];
        f.blocks[header.index()].term = Terminator::Branch { cond: c, taken: body, not_taken: exit };
        f.blocks[body.index()].insts = vec![
            Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: s, lhs: s.into(), rhs: i.into() },
            Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: i, lhs: i.into(), rhs: Operand::ImmInt(1) },
        ];
        f.blocks[body.index()].term = Terminator::Jump(header);
        f.blocks[exit.index()].term = Terminator::Return(Some(s.into()));
        p.add_function(f);
        p
    }

    #[test]
    fn loops_and_branch_events() {
        let p = loop_program();
        let mut counter = CountingObserver::default();
        let out = execute(&p, &mut counter, &ExecConfig::default());
        assert_eq!(out.return_value, Some(Value::Int(45)));
        assert_eq!(counter.branches, 11, "10 taken + 1 not-taken header branches");
        assert_eq!(counter.taken_branches, 10);
    }

    #[test]
    fn instruction_budget_halts_execution() {
        let p = loop_program();
        let out = execute(&p, &mut NullObserver, &ExecConfig { max_instructions: 20, max_call_depth: 8 });
        assert!(!out.completed);
        assert!(out.dynamic_instructions <= 21);
        assert_eq!(out.return_value, None);
    }

    #[test]
    fn function_calls_pass_arguments_and_return_values() {
        // add3(a, b, c) { return a + b + c; }  main { return add3(1, 2, 3); }
        let mut p = Program::new();
        let mut callee = Function::new("add3");
        let (a, b, c) = (callee.fresh_reg(), callee.fresh_reg(), callee.fresh_reg());
        let t = callee.fresh_reg();
        callee.params = vec![a, b, c];
        callee.blocks[0].insts = vec![
            Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: t, lhs: a.into(), rhs: b.into() },
            Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: t, lhs: t.into(), rhs: c.into() },
        ];
        callee.blocks[0].term = Terminator::Return(Some(t.into()));

        let mut main = Function::new("main");
        let r = main.fresh_reg();
        main.blocks[0].insts = vec![Inst::Call {
            func: FuncId(1),
            args: vec![Operand::ImmInt(1), Operand::ImmInt(2), Operand::ImmInt(3)],
            dst: Some(r),
        }];
        main.blocks[0].term = Terminator::Return(Some(r.into()));
        p.add_function(main);
        p.add_function(callee);

        let mut counter = CountingObserver::default();
        let out = execute(&p, &mut counter, &ExecConfig::default());
        assert_eq!(out.return_value, Some(Value::Int(6)));
        assert_eq!(counter.calls, 1);
    }

    #[test]
    fn call_depth_limit_aborts() {
        // f() { return f(); } — infinite recursion must be cut off.
        let mut p = Program::new();
        let mut f = Function::new("f");
        let r = f.fresh_reg();
        f.blocks[0].insts = vec![Inst::Call { func: FuncId(0), args: vec![], dst: Some(r) }];
        f.blocks[0].term = Terminator::Return(Some(r.into()));
        p.add_function(f);
        let out = execute(&p, &mut NullObserver, &ExecConfig { max_instructions: 1_000_000, max_call_depth: 32 });
        assert!(!out.completed);
    }

    #[test]
    fn out_of_bounds_accesses_wrap_instead_of_panicking() {
        let mut p = Program::new();
        let g = p.add_global(Global::zeroed("g", 4));
        let mut f = Function::new("main");
        let r = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Store { src: Operand::ImmInt(9), addr: Address::global(g, 6), ty: Ty::Int },
            Inst::Load { dst: r, addr: Address::global(g, 2), ty: Ty::Int },
        ];
        f.blocks[0].term = Terminator::Return(Some(r.into()));
        p.add_function(f);
        let out = run(&p);
        assert_eq!(out.return_value, Some(Value::Int(9)), "index 6 wraps to 2 in a 4-element array");
    }

    #[test]
    fn folded_memory_operands_read_memory() {
        let mut p = Program::new();
        let g = p.add_global(Global {
            name: "g".into(),
            elems: 4,
            ty: Ty::Int,
            init: bsg_ir::program::GlobalInit::Values(vec![Value::Int(10), Value::Int(32)]),
        });
        let mut f = Function::new("main");
        let r = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Load { dst: r, addr: Address::global(g, 0), ty: Ty::Int },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: r,
                lhs: r.into(),
                rhs: Operand::Mem(Address::global(g, 1)),
            },
        ];
        f.blocks[0].term = Terminator::Return(Some(r.into()));
        p.add_function(f);
        let mut counter = CountingObserver::default();
        let out = execute(&p, &mut counter, &ExecConfig::default());
        assert_eq!(out.return_value, Some(Value::Int(42)));
        assert_eq!(counter.loads, 2, "the folded operand still counts as a memory read");
    }
}
