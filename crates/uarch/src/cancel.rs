//! Cooperative cancellation for the dispatch loop.
//!
//! The scheduler's `DeadlineExceeded` started life as *detection*: the task
//! ran to completion and the overrun was recorded afterwards, so an
//! infinite-loop program under a 50 ms budget still pinned a worker forever.
//! This module makes deadlines *preemptive* without giving the executor any
//! notion of threads or time policy: a [`CancelToken`] is an atomic flag
//! plus an optional deadline instant, installed ambiently (thread-local) by
//! whoever owns the task boundary, and polled by `execute_image`'s bounded
//! dispatch loop every [`POLL_INTERVAL`] instructions.  When the token
//! trips, the engine sets its existing `halted` flag and unwinds through the
//! same sync-out paths an exhausted instruction budget uses, so the outcome
//! is an ordinary incomplete [`crate::exec::ExecOutcome`] — the scheduler
//! then converts the (now prompt) overrun into `DeadlineExceeded` exactly as
//! before.
//!
//! The unbounded fast path is untouched: with no ambient token and no
//! instruction budget, `execute_image` still selects the `BOUNDED = false`
//! loop where every poll compiles out (the zero-cost contract the
//! `interp_bench` null path depends on).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The dispatch loop polls the ambient token once every `POLL_INTERVAL`
/// retired instructions (a power of two, so the check is a mask compare).
/// At interpreter speeds (~10⁸ inst/s) this bounds preemption latency to
/// tens of microseconds while keeping the common case to one AND+branch.
pub const POLL_INTERVAL: u64 = 4096;

/// Mask form of [`POLL_INTERVAL`] for the dispatch loop's `instructions &
/// POLL_MASK == 0` check.
pub const POLL_MASK: u64 = POLL_INTERVAL - 1;

/// A shared cancellation token: an explicit flag, an optional wall-clock
/// deadline, and an optional parent (a batch-wide token that cancels every
/// per-task child at once).
#[derive(Debug)]
pub struct CancelToken {
    cancelled: AtomicBool,
    started: Instant,
    deadline: Option<Instant>,
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    /// A token with no deadline; trips only via [`CancelToken::cancel`] (or
    /// a parent).
    pub fn new() -> Self {
        CancelToken {
            cancelled: AtomicBool::new(false),
            started: Instant::now(),
            deadline: None,
            parent: None,
        }
    }

    /// A token that trips `budget` from now.
    pub fn with_deadline(budget: Duration) -> Self {
        let started = Instant::now();
        CancelToken {
            cancelled: AtomicBool::new(false),
            started,
            deadline: Some(started + budget),
            parent: None,
        }
    }

    /// A child of `parent` with its own deadline `budget` from now: the
    /// child trips when either its budget expires or the parent cancels.
    pub fn child_with_deadline(parent: &Arc<CancelToken>, budget: Option<Duration>) -> Self {
        let started = Instant::now();
        CancelToken {
            cancelled: AtomicBool::new(false),
            started,
            deadline: budget.map(|b| started + b),
            parent: Some(Arc::clone(parent)),
        }
    }

    /// Trips the token explicitly.  Idempotent, thread-safe, and observed by
    /// every poller (including children) at their next poll.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has tripped: explicitly cancelled, past its
    /// deadline, or descended from a tripped parent.
    pub fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                // Latch, so later polls skip the clock read.
                self.cancelled.store(true, Ordering::Release);
                return true;
            }
        }
        self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }

    /// Milliseconds since the token was created (the task's elapsed time,
    /// for rendering `DeadlineExceeded`).
    pub fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The configured budget in milliseconds, if a deadline is in force.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline
            .map(|d| d.saturating_duration_since(self.started).as_millis() as u64)
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

thread_local! {
    /// The ambient token for the current task, installed by the scheduler's
    /// isolation boundary around each task closure.
    static CURRENT: RefCell<Option<Arc<CancelToken>>> = const { RefCell::new(None) };
}

/// Restores the previously ambient token (if any) when dropped, so nested
/// task boundaries (inline nested sweeps) unwind correctly — including on
/// panic.
#[derive(Debug)]
pub struct InstallGuard {
    previous: Option<Arc<CancelToken>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.previous.take());
    }
}

/// Installs `token` as the current thread's ambient cancellation token until
/// the returned guard drops.  Every `execute_image` call on this thread (and
/// every store build it performs) observes the token.
pub fn install(token: Arc<CancelToken>) -> InstallGuard {
    InstallGuard {
        previous: CURRENT.with(|c| c.borrow_mut().replace(token)),
    }
}

/// The current thread's ambient token, if a task boundary installed one.
pub fn current() -> Option<Arc<CancelToken>> {
    CURRENT.with(|c| c.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_trips_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        assert!(t.is_cancelled(), "cancel latches");
    }

    #[test]
    fn deadline_trips_after_budget() {
        let t = CancelToken::with_deadline(Duration::from_millis(10));
        assert!(!t.is_cancelled());
        std::thread::sleep(Duration::from_millis(20));
        assert!(t.is_cancelled());
        assert_eq!(t.deadline_ms(), Some(10));
    }

    #[test]
    fn child_observes_parent_cancel() {
        let parent = Arc::new(CancelToken::new());
        let child = CancelToken::child_with_deadline(&parent, Some(Duration::from_secs(3600)));
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled(), "parent cancel reaches the child");
    }

    #[test]
    fn install_is_scoped_and_nestable() {
        assert!(current().is_none());
        let outer = Arc::new(CancelToken::new());
        {
            let _g1 = install(outer.clone());
            assert!(Arc::ptr_eq(&current().expect("installed"), &outer));
            let inner = Arc::new(CancelToken::new());
            {
                let _g2 = install(inner.clone());
                assert!(Arc::ptr_eq(&current().expect("installed"), &inner));
            }
            assert!(
                Arc::ptr_eq(&current().expect("restored"), &outer),
                "dropping the inner guard restores the outer token"
            );
        }
        assert!(current().is_none(), "dropping the last guard clears");
    }

    #[test]
    fn poll_interval_is_a_power_of_two() {
        assert!(POLL_INTERVAL.is_power_of_two());
        assert_eq!(POLL_MASK, POLL_INTERVAL - 1);
    }
}
