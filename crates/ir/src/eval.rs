//! Scalar evaluation semantics for VISA operations.
//!
//! These functions are the *single* definition of what each [`BinOp`] /
//! [`UnOp`] computes.  Both the functional executor (`bsg-uarch`) and the
//! compiler's constant folder (`bsg-compiler`) call into them, which is what
//! makes "optimization preserves observable behaviour" a testable property:
//! there is no second, slightly different arithmetic to drift out of sync.
//!
//! Division and remainder by zero yield zero (rather than trapping); shifts
//! mask their amount; integer overflow wraps.  All operations are total, so
//! the optimizer may freely speculate (hoist) them.

use crate::types::{Ty, Value};
use crate::visa::{BinOp, UnOp};

/// Evaluates a binary operation on two values with the given operation type.
pub fn eval_bin(op: BinOp, ty: Ty, lhs: Value, rhs: Value) -> Value {
    match ty {
        Ty::Int => {
            let a = lhs.as_int();
            let b = rhs.as_int();
            let v = match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        0
                    } else {
                        a.wrapping_div(b)
                    }
                }
                BinOp::Rem => {
                    if b == 0 {
                        0
                    } else {
                        a.wrapping_rem(b)
                    }
                }
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.wrapping_shl((b & 63) as u32),
                BinOp::Shr => a.wrapping_shr((b & 63) as u32),
                BinOp::Lt => (a < b) as i64,
                BinOp::Le => (a <= b) as i64,
                BinOp::Gt => (a > b) as i64,
                BinOp::Ge => (a >= b) as i64,
                BinOp::Eq => (a == b) as i64,
                BinOp::Ne => (a != b) as i64,
            };
            Value::Int(v)
        }
        Ty::Float => {
            let a = lhs.as_float();
            let b = rhs.as_float();
            match op {
                BinOp::Add => Value::Float(a + b),
                BinOp::Sub => Value::Float(a - b),
                BinOp::Mul => Value::Float(a * b),
                BinOp::Div => Value::Float(if b == 0.0 { 0.0 } else { a / b }),
                BinOp::Rem => Value::Float(if b == 0.0 { 0.0 } else { a % b }),
                // Bitwise operations on floats operate on the truncated integers.
                BinOp::And => Value::Int(lhs.as_int() & rhs.as_int()),
                BinOp::Or => Value::Int(lhs.as_int() | rhs.as_int()),
                BinOp::Xor => Value::Int(lhs.as_int() ^ rhs.as_int()),
                BinOp::Shl => Value::Int(lhs.as_int().wrapping_shl((rhs.as_int() & 63) as u32)),
                BinOp::Shr => Value::Int(lhs.as_int().wrapping_shr((rhs.as_int() & 63) as u32)),
                BinOp::Lt => Value::Int((a < b) as i64),
                BinOp::Le => Value::Int((a <= b) as i64),
                BinOp::Gt => Value::Int((a > b) as i64),
                BinOp::Ge => Value::Int((a >= b) as i64),
                BinOp::Eq => Value::Int((a == b) as i64),
                BinOp::Ne => Value::Int((a != b) as i64),
            }
        }
    }
}

/// Evaluates a unary operation.
pub fn eval_un(op: UnOp, ty: Ty, v: Value) -> Value {
    match op {
        UnOp::Neg => match ty {
            Ty::Int => Value::Int(v.as_int().wrapping_neg()),
            Ty::Float => Value::Float(-v.as_float()),
        },
        UnOp::Not => Value::Int(!v.as_int()),
        UnOp::LogicalNot => Value::Int(!v.is_true() as i64),
        UnOp::ToFloat => Value::Float(v.as_float()),
        UnOp::ToInt => Value::Int(v.as_int()),
        UnOp::Sqrt => {
            let x = v.as_float();
            Value::Float(if x < 0.0 { 0.0 } else { x.sqrt() })
        }
        UnOp::Sin => Value::Float(v.as_float().sin()),
        UnOp::Cos => Value::Float(v.as_float().cos()),
        UnOp::Log => {
            let x = v.as_float();
            Value::Float(if x <= 0.0 { 0.0 } else { x.ln() })
        }
        UnOp::Abs => match ty {
            Ty::Int => Value::Int(v.as_int().wrapping_abs()),
            Ty::Float => Value::Float(v.as_float().abs()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic_wraps_and_division_by_zero_is_zero() {
        assert_eq!(
            eval_bin(BinOp::Add, Ty::Int, Value::Int(i64::MAX), Value::Int(1)),
            Value::Int(i64::MIN)
        );
        assert_eq!(
            eval_bin(BinOp::Div, Ty::Int, Value::Int(10), Value::Int(0)),
            Value::Int(0)
        );
        assert_eq!(
            eval_bin(BinOp::Rem, Ty::Int, Value::Int(10), Value::Int(0)),
            Value::Int(0)
        );
        assert_eq!(
            eval_bin(BinOp::Div, Ty::Int, Value::Int(10), Value::Int(3)),
            Value::Int(3)
        );
        assert_eq!(
            eval_bin(BinOp::Shl, Ty::Int, Value::Int(1), Value::Int(65)),
            Value::Int(2)
        );
    }

    #[test]
    fn comparisons_yield_zero_or_one() {
        assert_eq!(
            eval_bin(BinOp::Lt, Ty::Int, Value::Int(1), Value::Int(2)),
            Value::Int(1)
        );
        assert_eq!(
            eval_bin(BinOp::Ge, Ty::Int, Value::Int(1), Value::Int(2)),
            Value::Int(0)
        );
        assert_eq!(
            eval_bin(BinOp::Eq, Ty::Float, Value::Float(1.5), Value::Float(1.5)),
            Value::Int(1)
        );
    }

    #[test]
    fn float_arithmetic() {
        assert_eq!(
            eval_bin(BinOp::Mul, Ty::Float, Value::Float(2.0), Value::Float(4.0)),
            Value::Float(8.0)
        );
        assert_eq!(
            eval_bin(BinOp::Div, Ty::Float, Value::Float(1.0), Value::Float(0.0)),
            Value::Float(0.0)
        );
        assert_eq!(
            eval_bin(BinOp::Add, Ty::Float, Value::Int(1), Value::Float(0.5)),
            Value::Float(1.5)
        );
    }

    #[test]
    fn shift_equivalence_with_multiplication() {
        // Strength reduction (x * 2^k  ->  x << k) relies on this equivalence.
        for x in [-7i64, -1, 0, 1, 5, 1 << 40, i64::MAX] {
            for k in [0u32, 1, 3, 7] {
                let mul = eval_bin(BinOp::Mul, Ty::Int, Value::Int(x), Value::Int(1 << k));
                let shl = eval_bin(BinOp::Shl, Ty::Int, Value::Int(x), Value::Int(k as i64));
                assert_eq!(mul, shl, "x={x} k={k}");
            }
        }
    }

    #[test]
    fn unary_operations() {
        assert_eq!(eval_un(UnOp::Neg, Ty::Int, Value::Int(5)), Value::Int(-5));
        assert_eq!(
            eval_un(UnOp::Neg, Ty::Float, Value::Float(2.0)),
            Value::Float(-2.0)
        );
        assert_eq!(eval_un(UnOp::Not, Ty::Int, Value::Int(0)), Value::Int(-1));
        assert_eq!(
            eval_un(UnOp::LogicalNot, Ty::Int, Value::Int(0)),
            Value::Int(1)
        );
        assert_eq!(
            eval_un(UnOp::LogicalNot, Ty::Int, Value::Int(7)),
            Value::Int(0)
        );
        assert_eq!(
            eval_un(UnOp::ToFloat, Ty::Float, Value::Int(3)),
            Value::Float(3.0)
        );
        assert_eq!(
            eval_un(UnOp::ToInt, Ty::Int, Value::Float(3.9)),
            Value::Int(3)
        );
        assert_eq!(
            eval_un(UnOp::Sqrt, Ty::Float, Value::Float(9.0)),
            Value::Float(3.0)
        );
        assert_eq!(
            eval_un(UnOp::Sqrt, Ty::Float, Value::Float(-1.0)),
            Value::Float(0.0)
        );
        assert_eq!(
            eval_un(UnOp::Log, Ty::Float, Value::Float(0.0)),
            Value::Float(0.0)
        );
        assert_eq!(eval_un(UnOp::Abs, Ty::Int, Value::Int(-4)), Value::Int(4));
        assert_eq!(
            eval_un(UnOp::Abs, Ty::Float, Value::Float(-4.5)),
            Value::Float(4.5)
        );
    }
}
