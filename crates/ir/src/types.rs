//! Fundamental identifier and value types shared by the HLL and VISA layers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual (or, after register allocation, architectural) register index.
///
/// Registers are function-local: register `r3` in one function is unrelated
/// to `r3` in another function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Index of a basic block within its [`Function`](crate::program::Function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Returns the block id as a `usize` for indexing into `Function::blocks`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Index of a function within a [`Program`](crate::program::Program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Returns the function id as a `usize` for indexing into `Program::functions`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// Index of a global (statically allocated array) within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GlobalId(pub u32);

impl GlobalId {
    /// Returns the global id as a `usize` for indexing into `Program::globals`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Scalar types supported by the virtual machine.
///
/// The paper targets 32-bit embedded machines (MiBench); we model integers as
/// 64-bit two's-complement values wrapping at 32 bits only where the workload
/// requires it, and floating point as IEEE-754 double precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Ty {
    /// Integer scalar (stored as `i64`).
    #[default]
    Int,
    /// Floating-point scalar (stored as `f64`).
    Float,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "int"),
            Ty::Float => write!(f, "double"),
        }
    }
}

/// A dynamic value manipulated by the functional executor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
}

impl Default for Value {
    fn default() -> Self {
        Value::Int(0)
    }
}

impl Value {
    /// Interprets the value as an integer, truncating floats toward zero.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(i) => i,
            Value::Float(f) => f as i64,
        }
    }

    /// Interprets the value as a float, converting integers exactly where possible.
    pub fn as_float(self) -> f64 {
        match self {
            Value::Int(i) => i as f64,
            Value::Float(f) => f,
        }
    }

    /// Returns `true` if the value is "truthy" (non-zero).
    pub fn is_true(self) -> bool {
        match self {
            Value::Int(i) => i != 0,
            Value::Float(f) => f != 0.0,
        }
    }

    /// The type of the value.
    pub fn ty(self) -> Ty {
        match self {
            Value::Int(_) => Ty::Int,
            Value::Float(_) => Ty::Float,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
        }
    }
}

/// Number of bytes per machine word assumed throughout the workspace.
///
/// The paper assumes a 32-bit architecture and a 32-byte cache line
/// (Table I); all addresses handed to the cache simulator are in units of
/// bytes with each scalar occupying one word.
pub const WORD_BYTES: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(7).as_int(), 7);
        assert_eq!(Value::Int(7).as_float(), 7.0);
        assert_eq!(Value::Float(2.5).as_int(), 2);
        assert_eq!(Value::Float(2.5).as_float(), 2.5);
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3.5f64), Value::Float(3.5));
    }

    #[test]
    fn value_truthiness() {
        assert!(Value::Int(1).is_true());
        assert!(!Value::Int(0).is_true());
        assert!(Value::Float(0.1).is_true());
        assert!(!Value::Float(0.0).is_true());
    }

    #[test]
    fn value_types() {
        assert_eq!(Value::Int(0).ty(), Ty::Int);
        assert_eq!(Value::Float(0.0).ty(), Ty::Float);
        assert_eq!(Value::default(), Value::Int(0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Reg(4).to_string(), "r4");
        assert_eq!(BlockId(2).to_string(), "bb2");
        assert_eq!(FuncId(1).to_string(), "fn1");
        assert_eq!(GlobalId(0).to_string(), "g0");
        assert_eq!(Ty::Int.to_string(), "int");
        assert_eq!(Ty::Float.to_string(), "double");
        assert_eq!(Value::Int(-3).to_string(), "-3");
    }

    #[test]
    fn id_indexing() {
        assert_eq!(BlockId(5).index(), 5);
        assert_eq!(FuncId(5).index(), 5);
        assert_eq!(GlobalId(5).index(), 5);
    }
}
