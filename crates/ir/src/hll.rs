//! The C-like high-level language (HLL) in which original workloads and
//! synthetic benchmark clones are expressed.
//!
//! The paper's central claim is that synthetic benchmarks generated *in a
//! high-level programming language* can be used across instruction-set
//! architectures **and** compilers.  In this reproduction the HLL plays the
//! role of C: the MiBench-like workloads (`bsg-workloads`) are written in it,
//! the synthesizer (`bsg-synth`) emits it, the compiler (`bsg-compiler`)
//! lowers it at optimization levels `O0`–`O3`, and [`crate::cemit`] renders it
//! as C source text for the plagiarism-detection experiments.

use crate::types::{Ty, Value};
use serde::{Deserialize, Serialize};

pub use crate::visa::{BinOp, UnOp};

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Scalar variable reference (local, parameter, or scalar global).
    Var(String),
    /// Array element `name[index]` of a global array.
    Index(String, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Call to a function that returns a value.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }

    /// Floating-point literal.
    pub fn float(v: f64) -> Expr {
        Expr::Float(v)
    }

    /// Variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Array indexing expression.
    pub fn index(array: impl Into<String>, idx: Expr) -> Expr {
        Expr::Index(array.into(), Box::new(idx))
    }

    /// Binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Unary operation.
    pub fn un(op: UnOp, e: Expr) -> Expr {
        Expr::Un(op, Box::new(e))
    }

    /// Function call expression.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call(name.into(), args)
    }

    /// Convenience: `lhs + rhs`.
    #[allow(clippy::should_implement_trait)] // static constructor, not an operator impl
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, lhs, rhs)
    }

    /// Convenience: `lhs - rhs`.
    #[allow(clippy::should_implement_trait)] // static constructor, not an operator impl
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, lhs, rhs)
    }

    /// Convenience: `lhs * rhs`.
    #[allow(clippy::should_implement_trait)] // static constructor, not an operator impl
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, lhs, rhs)
    }

    /// Convenience: `lhs < rhs`.
    pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Lt, lhs, rhs)
    }

    /// Convenience: `lhs == rhs`.
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, lhs, rhs)
    }

    /// Returns every variable name mentioned in the expression (scalars only,
    /// not array base names).
    pub fn referenced_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Int(_) | Expr::Float(_) => {}
            Expr::Var(v) => out.push(v.clone()),
            Expr::Index(_, idx) => idx.referenced_vars(out),
            Expr::Bin(_, a, b) => {
                a.referenced_vars(out);
                b.referenced_vars(out);
            }
            Expr::Un(_, a) => a.referenced_vars(out),
            Expr::Call(_, args) => {
                for a in args {
                    a.referenced_vars(out);
                }
            }
        }
    }

    /// Number of nodes in the expression tree (a rough size metric used by
    /// tests and by the synthesizer's statement-budget accounting).
    pub fn size(&self) -> usize {
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => 1,
            Expr::Index(_, idx) => 1 + idx.size(),
            Expr::Bin(_, a, b) => 1 + a.size() + b.size(),
            Expr::Un(_, a) => 1 + a.size(),
            Expr::Call(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
        }
    }
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// An element of a global array.
    Index(String, Box<Expr>),
}

impl LValue {
    /// Scalar variable l-value.
    pub fn var(name: impl Into<String>) -> LValue {
        LValue::Var(name.into())
    }

    /// Array element l-value.
    pub fn index(array: impl Into<String>, idx: Expr) -> LValue {
        LValue::Index(array.into(), Box::new(idx))
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `target = value;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Assigned value.
        value: Expr,
    },
    /// `if (cond) { then } else { otherwise }` (else may be empty).
    If {
        /// Branch condition.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) { body }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (var = init; var < limit; var = var + step) { body }`
    ///
    /// The canonical counted loop produced both by the workload builders and
    /// by the benchmark synthesizer (the paper's clones consist of `for`
    /// loops whose trip counts come from the scaled-down SFGL).
    For {
        /// Induction variable name.
        var: String,
        /// Initial value.
        init: Expr,
        /// Exclusive upper bound (loop runs while `var < limit`).
        limit: Expr,
        /// Step added each iteration (must evaluate to a positive value).
        step: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A call whose result (if any) is discarded or assigned.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Optional destination for the return value.
        dst: Option<LValue>,
    },
    /// `return expr;` / `return;`
    Return(Option<Expr>),
    /// `printf("%d", expr);` — the observable-output sink used to keep
    /// computation alive through compiler optimization (§III-B.4).
    Print(Expr),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

impl Stmt {
    /// `target = value;` convenience constructor.
    pub fn assign(target: LValue, value: Expr) -> Stmt {
        Stmt::Assign { target, value }
    }

    /// Assignment to a scalar variable.
    pub fn assign_var(name: impl Into<String>, value: Expr) -> Stmt {
        Stmt::Assign {
            target: LValue::var(name),
            value,
        }
    }

    /// Number of statements in this statement's subtree (including itself).
    pub fn size(&self) -> usize {
        match self {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => 1 + stmts_size(then_branch) + stmts_size(else_branch),
            Stmt::While { body, .. } | Stmt::For { body, .. } => 1 + stmts_size(body),
            _ => 1,
        }
    }
}

/// Total number of statements in a statement list (recursively).
pub fn stmts_size(stmts: &[Stmt]) -> usize {
    stmts.iter().map(Stmt::size).sum()
}

/// A global array declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HllGlobal {
    /// Array name.
    pub name: String,
    /// Number of elements.
    pub elems: usize,
    /// Element type.
    pub ty: Ty,
    /// Initial values (missing elements are zero).
    pub init: Vec<Value>,
    /// When `true`, elements are initialized to `0, 1, 2, ...` regardless of `init`.
    pub iota: bool,
}

impl HllGlobal {
    /// Zero-initialized integer array.
    pub fn zeroed(name: impl Into<String>, elems: usize) -> Self {
        HllGlobal {
            name: name.into(),
            elems,
            ty: Ty::Int,
            init: Vec::new(),
            iota: false,
        }
    }

    /// Integer array initialized to `0, 1, 2, ...`.
    pub fn iota(name: impl Into<String>, elems: usize) -> Self {
        HllGlobal {
            name: name.into(),
            elems,
            ty: Ty::Int,
            init: Vec::new(),
            iota: true,
        }
    }

    /// Integer array with explicit initial values.
    pub fn with_values(name: impl Into<String>, values: Vec<i64>) -> Self {
        HllGlobal {
            name: name.into(),
            elems: values.len(),
            ty: Ty::Int,
            init: values.into_iter().map(Value::Int).collect(),
            iota: false,
        }
    }

    /// Floating-point array with explicit initial values.
    pub fn with_float_values(name: impl Into<String>, values: Vec<f64>) -> Self {
        HllGlobal {
            name: name.into(),
            elems: values.len(),
            ty: Ty::Float,
            init: values.into_iter().map(Value::Float).collect(),
            iota: false,
        }
    }

    /// Zero-initialized floating-point array.
    pub fn float_zeroed(name: impl Into<String>, elems: usize) -> Self {
        HllGlobal {
            name: name.into(),
            elems,
            ty: Ty::Float,
            init: Vec::new(),
            iota: false,
        }
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HllFunction {
    /// Function name.
    pub name: String,
    /// Parameter names (all parameters are integer scalars unless listed in
    /// `float_vars`).
    pub params: Vec<String>,
    /// Names of variables (locals or params) that hold floating-point values.
    pub float_vars: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl HllFunction {
    /// Creates an empty function.
    pub fn new(name: impl Into<String>) -> Self {
        HllFunction {
            name: name.into(),
            params: Vec::new(),
            float_vars: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Total statement count (recursively).
    pub fn stmt_count(&self) -> usize {
        stmts_size(&self.body)
    }
}

/// A whole HLL program (translation unit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HllProgram {
    /// Global arrays.
    pub globals: Vec<HllGlobal>,
    /// Function definitions.
    pub functions: Vec<HllFunction>,
    /// Name of the entry function.
    pub entry: String,
}

impl HllProgram {
    /// Creates an empty program whose entry point is `main`.
    pub fn new() -> Self {
        HllProgram {
            globals: Vec::new(),
            functions: Vec::new(),
            entry: "main".to_string(),
        }
    }

    /// Creates a program consisting of a single entry function.
    pub fn with_main(main: HllFunction) -> Self {
        let entry = main.name.clone();
        HllProgram {
            globals: Vec::new(),
            functions: vec![main],
            entry,
        }
    }

    /// Adds a global array.
    pub fn add_global(&mut self, g: HllGlobal) -> &mut Self {
        self.globals.push(g);
        self
    }

    /// Adds a function definition.
    pub fn add_function(&mut self, f: HllFunction) -> &mut Self {
        self.functions.push(f);
        self
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&HllFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&HllGlobal> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Total statement count across all functions.
    pub fn stmt_count(&self) -> usize {
        self.functions.iter().map(HllFunction::stmt_count).sum()
    }
}

impl Default for HllProgram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_constructors_and_size() {
        let e = Expr::add(
            Expr::var("a"),
            Expr::mul(Expr::int(2), Expr::index("g", Expr::var("i"))),
        );
        assert_eq!(e.size(), 6);
        let mut vars = Vec::new();
        e.referenced_vars(&mut vars);
        assert_eq!(vars, vec!["a".to_string(), "i".to_string()]);
    }

    #[test]
    fn stmt_size_recurses() {
        let s = Stmt::For {
            var: "i".into(),
            init: Expr::int(0),
            limit: Expr::int(10),
            step: Expr::int(1),
            body: vec![
                Stmt::assign_var("x", Expr::var("i")),
                Stmt::If {
                    cond: Expr::lt(Expr::var("x"), Expr::int(5)),
                    then_branch: vec![Stmt::Print(Expr::var("x"))],
                    else_branch: vec![],
                },
            ],
        };
        assert_eq!(s.size(), 4);
        assert_eq!(stmts_size(&[s.clone(), Stmt::Return(None)]), 5);
    }

    #[test]
    fn program_lookup() {
        let mut p = HllProgram::new();
        p.add_global(HllGlobal::zeroed("buf", 32));
        let mut f = HllFunction::new("main");
        f.body.push(Stmt::Return(Some(Expr::int(0))));
        p.add_function(f);
        assert!(p.function("main").is_some());
        assert!(p.function("other").is_none());
        assert!(p.global("buf").is_some());
        assert!(p.global("nope").is_none());
        assert_eq!(p.stmt_count(), 1);
    }

    #[test]
    fn global_constructors() {
        let g = HllGlobal::with_values("t", vec![1, 2, 3]);
        assert_eq!(g.elems, 3);
        assert_eq!(g.ty, Ty::Int);
        let f = HllGlobal::with_float_values("f", vec![1.5]);
        assert_eq!(f.ty, Ty::Float);
        let z = HllGlobal::float_zeroed("z", 8);
        assert_eq!(z.elems, 8);
        assert!(HllGlobal::iota("i", 4).iota);
    }

    #[test]
    fn with_main_sets_entry() {
        let p = HllProgram::with_main(HllFunction::new("kernel"));
        assert_eq!(p.entry, "kernel");
        assert!(p.function("kernel").is_some());
    }
}
