//! Decoding counterpart of [`crate::canon`] — the disk artifact cache's
//! wire format.
//!
//! The canonical byte encoding was introduced for content addressing (hash
//! the stream, get a [`SourceId`](crate::canon)-style key).  Because it is
//! self-delimiting — every enum variant discriminant-tagged, every
//! collection length-prefixed — it is also a complete serialization, so the
//! disk tier of the artifact store persists artifacts as their canonical
//! bytes and decodes them with the [`Decanon`] trait defined here.
//!
//! Decoders are **total**: any byte stream either decodes to a value or
//! returns `None` — never a panic, never an out-of-bounds read, never an
//! unbounded allocation.  A truncated or bit-flipped cache file must degrade
//! to a rebuild, not take the harness down, so:
//!
//! * every read is bounds-checked against the remaining input;
//! * length prefixes are *not* trusted for pre-allocation (a corrupt length
//!   of `u64::MAX` reserves nothing; the element loop simply runs out of
//!   bytes and fails);
//! * unknown enum discriminants and invalid scalar encodings (`bool` bytes
//!   other than 0/1, non-UTF-8 strings) decode to `None`.
//!
//! The round-trip law, checked by the tests at the bottom and by the store's
//! own verification: for every `T: Canon + Decanon`,
//! `decanon(canon(x)) == Some(x)` and the decode consumes exactly the bytes
//! the encode produced.

use crate::canon::Canon;
use crate::hll::{Expr, HllFunction, HllGlobal, HllProgram, LValue, Stmt};
use crate::program::{Block, Function, Global, GlobalInit, Program};
use crate::types::{BlockId, FuncId, GlobalId, Reg, Ty, Value};
use crate::visa::{
    Address, BinOp, Inst, InstClass, MemBase, Operand, OperandKind, Terminator, UnOp,
};
use std::collections::{BTreeMap, BTreeSet};

/// Bounded cursor over a canonical byte stream.
pub struct CanonReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> CanonReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        CanonReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// `true` once every input byte has been consumed (decoders for
    /// top-level artifacts require this, so trailing garbage is corruption).
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// The next `n` bytes, or `None` past the end of input.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let chunk = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(chunk)
    }

    fn array<const N: usize>(&mut self) -> Option<[u8; N]> {
        self.take(N).map(|b| b.try_into().expect("exact length"))
    }

    /// One discriminant / scalar byte.
    pub fn byte(&mut self) -> Option<u8> {
        self.array::<1>().map(|[b]| b)
    }

    /// A little-endian length prefix.  The value is returned untrusted; use
    /// it only to bound a loop that itself reads (and therefore bounds-
    /// checks) each element.
    pub fn length_prefix(&mut self) -> Option<u64> {
        self.array::<8>().map(u64::from_le_bytes)
    }
}

/// Types decodable from their canonical byte encoding (see the module docs).
pub trait Decanon: Sized {
    /// Decodes one value, advancing the reader; `None` on any malformation.
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self>;
}

/// Encodes `value` to its canonical bytes.
pub fn to_canon_bytes<T: Canon + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.canon(&mut out);
    out
}

/// Decodes a value from a complete canonical byte stream, requiring every
/// input byte to be consumed (trailing garbage is treated as corruption).
pub fn from_canon_bytes<T: Decanon>(bytes: &[u8]) -> Option<T> {
    let mut r = CanonReader::new(bytes);
    let value = T::decanon(&mut r)?;
    r.is_exhausted().then_some(value)
}

macro_rules! impl_decanon_le {
    ($($t:ty),*) => {$(
        impl Decanon for $t {
            fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
                r.array().map(<$t>::from_le_bytes)
            }
        }
    )*};
}

impl_decanon_le!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Decanon for usize {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        usize::try_from(u64::decanon(r)?).ok()
    }
}

impl Decanon for bool {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        match r.byte()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Decanon for f64 {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        u64::decanon(r).map(f64::from_bits)
    }
}

impl Decanon for String {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        let len = usize::try_from(r.length_prefix()?).ok()?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl<T: Decanon> Decanon for Option<T> {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        match r.byte()? {
            0 => Some(None),
            1 => T::decanon(r).map(Some),
            _ => None,
        }
    }
}

impl<T: Decanon> Decanon for Vec<T> {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        let len = r.length_prefix()?;
        // Don't trust the prefix for allocation: a corrupt length fails in
        // the element loop when the input runs dry, having reserved at most
        // one read's worth of memory per element actually present.
        let mut out = Vec::new();
        for _ in 0..len {
            out.push(T::decanon(r)?);
        }
        Some(out)
    }
}

impl<T: Decanon> Decanon for Box<T> {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        T::decanon(r).map(Box::new)
    }
}

impl<A: Decanon, B: Decanon> Decanon for (A, B) {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some((A::decanon(r)?, B::decanon(r)?))
    }
}

impl<A: Decanon, B: Decanon, C: Decanon> Decanon for (A, B, C) {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some((A::decanon(r)?, B::decanon(r)?, C::decanon(r)?))
    }
}

impl<A: Decanon, B: Decanon, C: Decanon, D: Decanon> Decanon for (A, B, C, D) {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some((
            A::decanon(r)?,
            B::decanon(r)?,
            C::decanon(r)?,
            D::decanon(r)?,
        ))
    }
}

impl<K: Decanon + Ord, V: Decanon> Decanon for BTreeMap<K, V> {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        let len = r.length_prefix()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decanon(r)?;
            let v = V::decanon(r)?;
            // Canon writes keys in strictly ascending order; a duplicate
            // would silently collapse, so reject it as corruption.
            if out.insert(k, v).is_some() {
                return None;
            }
        }
        Some(out)
    }
}

impl<T: Decanon + Ord> Decanon for BTreeSet<T> {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        let len = r.length_prefix()?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            if !out.insert(T::decanon(r)?) {
                return None;
            }
        }
        Some(out)
    }
}

// ---------------------------------------------------------------------------
// IR scalar enums.
// ---------------------------------------------------------------------------

impl Decanon for Ty {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        match r.byte()? {
            0 => Some(Ty::Int),
            1 => Some(Ty::Float),
            _ => None,
        }
    }
}

impl Decanon for Value {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        match r.byte()? {
            0 => i64::decanon(r).map(Value::Int),
            1 => f64::decanon(r).map(Value::Float),
            _ => None,
        }
    }
}

impl Decanon for BinOp {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(match r.byte()? {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Mul,
            3 => BinOp::Div,
            4 => BinOp::Rem,
            5 => BinOp::And,
            6 => BinOp::Or,
            7 => BinOp::Xor,
            8 => BinOp::Shl,
            9 => BinOp::Shr,
            10 => BinOp::Lt,
            11 => BinOp::Le,
            12 => BinOp::Gt,
            13 => BinOp::Ge,
            14 => BinOp::Eq,
            15 => BinOp::Ne,
            _ => return None,
        })
    }
}

impl Decanon for UnOp {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(match r.byte()? {
            0 => UnOp::Neg,
            1 => UnOp::Not,
            2 => UnOp::LogicalNot,
            3 => UnOp::ToFloat,
            4 => UnOp::ToInt,
            5 => UnOp::Sqrt,
            6 => UnOp::Sin,
            7 => UnOp::Cos,
            8 => UnOp::Log,
            9 => UnOp::Abs,
            _ => return None,
        })
    }
}

impl Decanon for InstClass {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        InstClass::ALL.get(r.byte()? as usize).copied()
    }
}

impl Decanon for OperandKind {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        match r.byte()? {
            0 => Some(OperandKind::Register),
            1 => Some(OperandKind::Constant),
            2 => Some(OperandKind::Memory),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// HLL programs.
// ---------------------------------------------------------------------------

impl Decanon for Expr {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(match r.byte()? {
            0 => Expr::Int(i64::decanon(r)?),
            1 => Expr::Float(f64::decanon(r)?),
            2 => Expr::Var(String::decanon(r)?),
            3 => Expr::Index(String::decanon(r)?, Box::decanon(r)?),
            4 => Expr::Bin(BinOp::decanon(r)?, Box::decanon(r)?, Box::decanon(r)?),
            5 => Expr::Un(UnOp::decanon(r)?, Box::decanon(r)?),
            6 => Expr::Call(String::decanon(r)?, Vec::decanon(r)?),
            _ => return None,
        })
    }
}

impl Decanon for LValue {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(match r.byte()? {
            0 => LValue::Var(String::decanon(r)?),
            1 => LValue::Index(String::decanon(r)?, Box::decanon(r)?),
            _ => return None,
        })
    }
}

impl Decanon for Stmt {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(match r.byte()? {
            0 => Stmt::Assign {
                target: LValue::decanon(r)?,
                value: Expr::decanon(r)?,
            },
            1 => Stmt::If {
                cond: Expr::decanon(r)?,
                then_branch: Vec::decanon(r)?,
                else_branch: Vec::decanon(r)?,
            },
            2 => Stmt::While {
                cond: Expr::decanon(r)?,
                body: Vec::decanon(r)?,
            },
            3 => Stmt::For {
                var: String::decanon(r)?,
                init: Expr::decanon(r)?,
                limit: Expr::decanon(r)?,
                step: Expr::decanon(r)?,
                body: Vec::decanon(r)?,
            },
            4 => Stmt::Call {
                name: String::decanon(r)?,
                args: Vec::decanon(r)?,
                dst: Option::decanon(r)?,
            },
            5 => Stmt::Return(Option::decanon(r)?),
            6 => Stmt::Print(Expr::decanon(r)?),
            7 => Stmt::Break,
            8 => Stmt::Continue,
            _ => return None,
        })
    }
}

impl Decanon for HllGlobal {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(HllGlobal {
            name: String::decanon(r)?,
            elems: usize::decanon(r)?,
            ty: Ty::decanon(r)?,
            init: Vec::decanon(r)?,
            iota: bool::decanon(r)?,
        })
    }
}

impl Decanon for HllFunction {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(HllFunction {
            name: String::decanon(r)?,
            params: Vec::decanon(r)?,
            float_vars: Vec::decanon(r)?,
            body: Vec::decanon(r)?,
        })
    }
}

impl Decanon for HllProgram {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(HllProgram {
            globals: Vec::decanon(r)?,
            functions: Vec::decanon(r)?,
            entry: String::decanon(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// VISA programs.
// ---------------------------------------------------------------------------

macro_rules! impl_decanon_id {
    ($($t:ident),*) => {$(
        impl Decanon for $t {
            fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
                u32::decanon(r).map($t)
            }
        }
    )*};
}

impl_decanon_id!(Reg, BlockId, FuncId, GlobalId);

impl Decanon for MemBase {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        match r.byte()? {
            0 => GlobalId::decanon(r).map(MemBase::Global),
            1 => Some(MemBase::Frame),
            _ => None,
        }
    }
}

impl Decanon for Address {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(Address {
            base: MemBase::decanon(r)?,
            offset: i64::decanon(r)?,
            index: Option::decanon(r)?,
            scale: i64::decanon(r)?,
        })
    }
}

impl Decanon for Operand {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(match r.byte()? {
            0 => Operand::Reg(Reg::decanon(r)?),
            1 => Operand::ImmInt(i64::decanon(r)?),
            2 => Operand::ImmFloat(f64::decanon(r)?),
            3 => Operand::Mem(Address::decanon(r)?),
            _ => return None,
        })
    }
}

impl Decanon for Inst {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(match r.byte()? {
            0 => Inst::Bin {
                op: BinOp::decanon(r)?,
                ty: Ty::decanon(r)?,
                dst: Reg::decanon(r)?,
                lhs: Operand::decanon(r)?,
                rhs: Operand::decanon(r)?,
            },
            1 => Inst::Un {
                op: UnOp::decanon(r)?,
                ty: Ty::decanon(r)?,
                dst: Reg::decanon(r)?,
                src: Operand::decanon(r)?,
            },
            2 => Inst::Mov {
                dst: Reg::decanon(r)?,
                src: Operand::decanon(r)?,
            },
            3 => Inst::Load {
                dst: Reg::decanon(r)?,
                addr: Address::decanon(r)?,
                ty: Ty::decanon(r)?,
            },
            4 => Inst::Store {
                src: Operand::decanon(r)?,
                addr: Address::decanon(r)?,
                ty: Ty::decanon(r)?,
            },
            5 => Inst::Call {
                func: FuncId::decanon(r)?,
                args: Vec::decanon(r)?,
                dst: Option::decanon(r)?,
            },
            6 => Inst::Print {
                src: Operand::decanon(r)?,
            },
            7 => Inst::Nop,
            _ => return None,
        })
    }
}

impl Decanon for Terminator {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(match r.byte()? {
            0 => Terminator::Jump(BlockId::decanon(r)?),
            1 => Terminator::Branch {
                cond: Reg::decanon(r)?,
                taken: BlockId::decanon(r)?,
                not_taken: BlockId::decanon(r)?,
            },
            2 => Terminator::Return(Option::decanon(r)?),
            _ => return None,
        })
    }
}

impl Decanon for GlobalInit {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(match r.byte()? {
            0 => GlobalInit::Zero,
            1 => GlobalInit::Iota,
            2 => GlobalInit::Values(Vec::decanon(r)?),
            3 => GlobalInit::Random {
                seed: u64::decanon(r)?,
                modulus: i64::decanon(r)?,
            },
            _ => return None,
        })
    }
}

impl Decanon for Global {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(Global {
            name: String::decanon(r)?,
            elems: usize::decanon(r)?,
            ty: Ty::decanon(r)?,
            init: GlobalInit::decanon(r)?,
        })
    }
}

impl Decanon for Block {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(Block {
            insts: Vec::decanon(r)?,
            term: Terminator::decanon(r)?,
        })
    }
}

impl Decanon for Function {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(Function {
            name: String::decanon(r)?,
            blocks: Vec::decanon(r)?,
            entry: BlockId::decanon(r)?,
            num_regs: u32::decanon(r)?,
            params: Vec::decanon(r)?,
            frame_words: u32::decanon(r)?,
        })
    }
}

impl Decanon for Program {
    fn decanon(r: &mut CanonReader<'_>) -> Option<Self> {
        Some(Program {
            functions: Vec::decanon(r)?,
            globals: Vec::decanon(r)?,
            entry: FuncId::decanon(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::FunctionBuilder;

    fn roundtrip<T: Canon + Decanon + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = to_canon_bytes(value);
        let back: T = from_canon_bytes(&bytes).expect("decodes");
        assert_eq!(&back, value);
        assert_eq!(to_canon_bytes(&back), bytes, "re-encode is stable");
    }

    fn sample_hll() -> HllProgram {
        let mut p = HllProgram::new();
        p.add_global(HllGlobal::with_values("tbl", vec![1, 2, 3]));
        p.add_global(HllGlobal::float_zeroed("fs", 8));
        let mut f = FunctionBuilder::new("main");
        f.float_var("x");
        f.assign_var("x", Expr::float(-0.0));
        f.for_loop("i", Expr::int(0), Expr::int(10), |b| {
            b.assign_index(
                "tbl",
                Expr::var("i"),
                Expr::add(Expr::var("i"), Expr::int(7)),
            );
            b.if_then(Expr::lt(Expr::var("i"), Expr::int(5)), |t| {
                t.assign_var("s", Expr::add(Expr::var("s"), Expr::var("i")));
            });
        });
        f.print(Expr::var("s"));
        f.ret(Some(Expr::var("s")));
        p.add_function(f.finish());
        p
    }

    #[test]
    fn hll_programs_roundtrip() {
        roundtrip(&sample_hll());
    }

    #[test]
    fn visa_programs_roundtrip() {
        let compiled_shape = {
            let mut p = Program::new();
            let g = p.add_global(Global::zeroed("data", 64));
            let mut f = Function::new("main");
            let a = f.fresh_reg();
            let b = f.fresh_reg();
            let body = f.add_block();
            f.blocks[0].insts = vec![
                Inst::Mov {
                    dst: a,
                    src: Operand::ImmInt(0),
                },
                Inst::Un {
                    op: UnOp::ToFloat,
                    ty: Ty::Float,
                    dst: b,
                    src: a.into(),
                },
            ];
            f.blocks[0].term = Terminator::Jump(body);
            f.blocks[body.index()].insts = vec![
                Inst::Load {
                    dst: a,
                    addr: Address::global_indexed(g, 4, b, 2),
                    ty: Ty::Int,
                },
                Inst::Store {
                    src: Operand::ImmFloat(f64::NAN),
                    addr: Address::frame(3),
                    ty: Ty::Float,
                },
                Inst::Call {
                    func: FuncId(0),
                    args: vec![a.into(), Operand::ImmInt(-7)],
                    dst: Some(b),
                },
                Inst::Print { src: a.into() },
                Inst::Nop,
            ];
            f.blocks[body.index()].term = Terminator::Branch {
                cond: a,
                taken: BlockId(0),
                not_taken: body,
            };
            p.add_function(f);
            p
        };
        // NaN != NaN under PartialEq, so compare canonical bytes instead.
        let bytes = to_canon_bytes(&compiled_shape);
        let back: Program = from_canon_bytes(&bytes).expect("decodes");
        assert_eq!(to_canon_bytes(&back), bytes);
    }

    #[test]
    fn truncated_and_garbage_inputs_decode_to_none() {
        let bytes = to_canon_bytes(&sample_hll());
        for cut in [0, 1, 7, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                from_canon_bytes::<HllProgram>(&bytes[..cut]).is_none(),
                "truncation at {cut} must not decode"
            );
        }
        let mut garbage = bytes.clone();
        garbage.push(0);
        assert!(
            from_canon_bytes::<HllProgram>(&garbage).is_none(),
            "trailing bytes are corruption"
        );
        assert!(from_canon_bytes::<Stmt>(&[9]).is_none(), "bad discriminant");
        assert!(from_canon_bytes::<bool>(&[2]).is_none(), "bad bool");
    }

    #[test]
    fn corrupt_length_prefixes_do_not_allocate_unboundedly() {
        // A Vec claiming u64::MAX elements must fail fast when the input
        // runs dry, not reserve memory up front.
        let mut bytes = u64::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3]);
        assert!(from_canon_bytes::<Vec<u64>>(&bytes).is_none());
    }

    #[test]
    fn scalar_edge_cases_roundtrip() {
        roundtrip(&i64::MIN);
        roundtrip(&u64::MAX);
        roundtrip(&Value::Float(-0.0));
        roundtrip(&String::from("päper"));
        roundtrip(&Some(vec![(1u32, String::from("x"))]));
        let nan = f64::from_bits(0x7ff8_0000_0000_0001);
        let bytes = to_canon_bytes(&nan);
        let back: f64 = from_canon_bytes(&bytes).expect("decodes");
        assert_eq!(back.to_bits(), nan.to_bits(), "NaN payload preserved");
    }
}
