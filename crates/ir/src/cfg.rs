//! Control-flow-graph analyses over a [`Function`]: predecessors/successors,
//! reverse post-order, dominators and natural loops.
//!
//! These analyses are shared by the optimizing compiler (`bsg-compiler`) and
//! by the SFGL profiler (`bsg-profile`), which needs the loop structure to
//! annotate the statistical flow graph with loop-iteration information.

use crate::program::Function;
use crate::types::BlockId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Successor / predecessor adjacency for a function's CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgAdjacency {
    /// Successor blocks of each block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessor blocks of each block.
    pub preds: Vec<Vec<BlockId>>,
}

/// Computes successor and predecessor lists for every block.
pub fn adjacency(f: &Function) -> CfgAdjacency {
    let n = f.blocks.len();
    let mut succs = vec![Vec::new(); n];
    let mut preds = vec![Vec::new(); n];
    for (id, b) in f.iter_blocks() {
        for s in b.term.successors() {
            succs[id.index()].push(s);
            preds[s.index()].push(id);
        }
    }
    CfgAdjacency { succs, preds }
}

/// Blocks reachable from the entry, in reverse post-order.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut visited = vec![false; n];
    let mut postorder = Vec::with_capacity(n);
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry, 0)];
    visited[f.entry.index()] = true;
    while let Some(&(b, next)) = stack.last() {
        let succs = f.block(b).term.successors();
        if next < succs.len() {
            stack.last_mut().expect("stack is non-empty").1 += 1;
            let s = succs[next];
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            postorder.push(b);
            stack.pop();
        }
    }
    postorder.reverse();
    postorder
}

/// Blocks reachable from the entry block.
pub fn reachable(f: &Function) -> HashSet<BlockId> {
    let mut seen = HashSet::new();
    let mut queue = VecDeque::new();
    queue.push_back(f.entry);
    seen.insert(f.entry);
    while let Some(b) = queue.pop_front() {
        for s in f.block(b).term.successors() {
            if seen.insert(s) {
                queue.push_back(s);
            }
        }
    }
    seen
}

/// Immediate-dominator tree (Cooper–Harvey–Kennedy iterative algorithm).
///
/// `idom[b]` is the immediate dominator of `b`; the entry block is its own
/// immediate dominator.  Unreachable blocks have no entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    idom: HashMap<BlockId, BlockId>,
    rpo_index: HashMap<BlockId, usize>,
}

impl Dominators {
    /// Computes dominators for `f`.
    pub fn compute(f: &Function) -> Self {
        let rpo = reverse_postorder(f);
        let rpo_index: HashMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let adj = adjacency(f);
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(f.entry, f.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let preds: Vec<BlockId> = adj.preds[b.index()]
                    .iter()
                    .copied()
                    .filter(|p| idom.contains_key(p))
                    .collect();
                let Some(&first) = preds.first() else {
                    continue;
                };
                let mut new_idom = first;
                for &p in preds.iter().skip(1) {
                    new_idom = Self::intersect(&idom, &rpo_index, p, new_idom);
                }
                if idom.get(&b) != Some(&new_idom) {
                    idom.insert(b, new_idom);
                    changed = true;
                }
            }
        }
        Dominators { idom, rpo_index }
    }

    fn intersect(
        idom: &HashMap<BlockId, BlockId>,
        rpo_index: &HashMap<BlockId, usize>,
        mut a: BlockId,
        mut b: BlockId,
    ) -> BlockId {
        while a != b {
            while rpo_index[&a] > rpo_index[&b] {
                a = idom[&a];
            }
            while rpo_index[&b] > rpo_index[&a] {
                b = idom[&b];
            }
        }
        a
    }

    /// The immediate dominator of `b` (the entry dominates itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(&b).copied()
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.idom.contains_key(&b) || !self.idom.contains_key(&a) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let parent = self.idom[&cur];
            if parent == cur {
                return cur == a;
            }
            cur = parent;
        }
    }

    /// Reverse post-order position of `b`, if reachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        self.rpo_index.get(&b).copied()
    }
}

/// A natural loop: a back edge `latch -> header` where the header dominates
/// the latch, together with the set of blocks in the loop body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NaturalLoop {
    /// The loop header.
    pub header: BlockId,
    /// Latch blocks (sources of back edges to the header).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop (including header and latches).
    pub blocks: BTreeSet<BlockId>,
    /// Depth of nesting (1 = outermost).
    pub depth: usize,
    /// Index of the enclosing loop in the loop forest, if nested.
    pub parent: Option<usize>,
}

impl NaturalLoop {
    /// Returns `true` if the loop body contains `b`.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// The set of natural loops of a function, with nesting information.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LoopForest {
    /// Loops, outer loops before their nested loops.
    pub loops: Vec<NaturalLoop>,
}

impl LoopForest {
    /// Detects the natural loops of `f`.
    ///
    /// Loops sharing a header are merged (as is conventional).  Irreducible
    /// control flow (a cycle whose "header" does not dominate the rest of the
    /// cycle) is ignored: such edges simply do not produce loops, which is
    /// safe for both the optimizer (no transformation applied) and the SFGL
    /// (the blocks still appear with execution counts and edge
    /// probabilities).
    pub fn compute(f: &Function) -> Self {
        let doms = Dominators::compute(f);
        let adj = adjacency(f);
        let reachable = reachable(f);
        // Collect back edges grouped by header.
        let mut back_edges: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &b in &reachable {
            for s in f.block(b).term.successors() {
                if doms.dominates(s, b) {
                    back_edges.entry(s).or_default().push(b);
                }
            }
        }
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for (header, latches) in back_edges {
            // Natural-loop body: header plus all blocks that can reach a latch
            // without passing through the header.
            let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
            blocks.insert(header);
            let mut work: Vec<BlockId> = Vec::new();
            for &l in &latches {
                if blocks.insert(l) {
                    work.push(l);
                }
            }
            while let Some(b) = work.pop() {
                for &p in &adj.preds[b.index()] {
                    if reachable.contains(&p) && blocks.insert(p) {
                        work.push(p);
                    }
                }
            }
            let mut latches = latches;
            latches.sort();
            loops.push(NaturalLoop {
                header,
                latches,
                blocks,
                depth: 1,
                parent: None,
            });
        }
        // Sort outer loops first (larger body first; ties by header id for determinism).
        loops.sort_by(|a, b| {
            b.blocks
                .len()
                .cmp(&a.blocks.len())
                .then(a.header.cmp(&b.header))
        });
        // Compute nesting: a loop's parent is the smallest strictly-larger loop containing its header.
        let snapshot = loops.clone();
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for (j, cand) in snapshot.iter().enumerate() {
                if j == i {
                    continue;
                }
                if cand.blocks.len() > snapshot[i].blocks.len()
                    && cand.blocks.contains(&snapshot[i].header)
                    && cand.blocks.is_superset(&snapshot[i].blocks)
                {
                    match best {
                        None => best = Some(j),
                        Some(k) if cand.blocks.len() < snapshot[k].blocks.len() => best = Some(j),
                        _ => {}
                    }
                }
            }
            loops[i].parent = best;
        }
        // Depths follow the parent chain.
        for i in 0..loops.len() {
            let mut depth = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                depth += 1;
                cur = loops[p].parent;
            }
            loops[i].depth = depth;
        }
        LoopForest { loops }
    }

    /// The innermost loop containing `b`, if any (index into [`LoopForest::loops`]).
    pub fn innermost_containing(&self, b: BlockId) -> Option<usize> {
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contains(b))
            .max_by_key(|(_, l)| l.depth)
            .map(|(i, _)| i)
    }

    /// The loop headed at `header`, if any.
    pub fn loop_with_header(&self, header: BlockId) -> Option<&NaturalLoop> {
        self.loops.iter().find(|l| l.header == header)
    }

    /// Returns `true` if the edge `from -> to` is a back edge of some loop.
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.loops
            .iter()
            .any(|l| l.header == to && l.latches.contains(&from))
    }

    /// Loop-nesting depth of a block (0 when not in any loop).
    pub fn depth_of(&self, b: BlockId) -> usize {
        self.innermost_containing(b)
            .map(|i| self.loops[i].depth)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Block, Function};
    use crate::visa::{Inst, Operand, Terminator};

    /// Builds a diamond CFG:  0 -> 1, 2 ; 1 -> 3 ; 2 -> 3 ; 3 -> ret
    fn diamond() -> Function {
        let mut f = Function::new("diamond");
        let cond = f.fresh_reg();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        f.blocks[0].insts.push(Inst::Mov {
            dst: cond,
            src: Operand::ImmInt(1),
        });
        f.blocks[0].term = Terminator::Branch {
            cond,
            taken: b1,
            not_taken: b2,
        };
        f.blocks[b1.index()] = Block::jump_to(b3);
        f.blocks[b2.index()] = Block::jump_to(b3);
        f.blocks[b3.index()].term = Terminator::Return(None);
        f
    }

    /// Builds a doubly-nested loop:
    /// 0 -> 1 (outer header); 1 -> 2 (inner header) | 4(exit);
    /// 2 -> 3 | 1-latch? ; we use: 2 -> 2 (self latch) | 3 ; 3 -> 1 (outer latch)
    fn nested_loops() -> Function {
        let mut f = Function::new("nested");
        let c = f.fresh_reg();
        let outer = f.add_block(); // 1
        let inner = f.add_block(); // 2
        let latch = f.add_block(); // 3
        let exit = f.add_block(); // 4
        f.blocks[0].insts.push(Inst::Mov {
            dst: c,
            src: Operand::ImmInt(1),
        });
        f.blocks[0].term = Terminator::Jump(outer);
        f.blocks[outer.index()].term = Terminator::Branch {
            cond: c,
            taken: inner,
            not_taken: exit,
        };
        f.blocks[inner.index()].term = Terminator::Branch {
            cond: c,
            taken: inner,
            not_taken: latch,
        };
        f.blocks[latch.index()].term = Terminator::Jump(outer);
        f.blocks[exit.index()].term = Terminator::Return(None);
        f
    }

    #[test]
    fn rpo_visits_all_reachable_blocks_entry_first() {
        let f = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], f.entry);
        let f2 = nested_loops();
        let rpo2 = reverse_postorder(&f2);
        assert_eq!(rpo2.len(), 5);
        assert_eq!(rpo2[0], f2.entry);
    }

    #[test]
    fn adjacency_is_consistent() {
        let f = diamond();
        let adj = adjacency(&f);
        assert_eq!(adj.succs[0], vec![BlockId(1), BlockId(2)]);
        assert_eq!(adj.preds[3], vec![BlockId(1), BlockId(2)]);
        assert!(adj.preds[0].is_empty());
    }

    #[test]
    fn dominators_of_diamond() {
        let f = diamond();
        let d = Dominators::compute(&f);
        assert_eq!(d.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(d.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(d.idom(BlockId(3)), Some(BlockId(0)));
        assert!(d.dominates(BlockId(0), BlockId(3)));
        assert!(!d.dominates(BlockId(1), BlockId(3)));
        assert!(d.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn loop_forest_detects_nesting() {
        let f = nested_loops();
        let lf = LoopForest::compute(&f);
        assert_eq!(lf.loops.len(), 2);
        let outer = lf.loop_with_header(BlockId(1)).expect("outer loop");
        let inner = lf.loop_with_header(BlockId(2)).expect("inner loop");
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert!(outer.blocks.is_superset(&inner.blocks));
        assert!(lf.is_back_edge(BlockId(2), BlockId(2)));
        assert!(lf.is_back_edge(BlockId(3), BlockId(1)));
        assert!(!lf.is_back_edge(BlockId(0), BlockId(1)));
        assert_eq!(lf.depth_of(BlockId(2)), 2);
        assert_eq!(lf.depth_of(BlockId(4)), 0);
        assert_eq!(
            lf.innermost_containing(BlockId(3)),
            lf.loops.iter().position(|l| l.header == BlockId(1))
        );
    }

    #[test]
    fn diamond_has_no_loops() {
        let f = diamond();
        let lf = LoopForest::compute(&f);
        assert!(lf.loops.is_empty());
    }

    #[test]
    fn reachable_ignores_orphan_blocks() {
        let mut f = diamond();
        f.add_block(); // unreachable
        let r = reachable(&f);
        assert_eq!(r.len(), 4);
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo.len(), 4);
    }
}
