//! Human-readable textual dump of VISA programs, for debugging and for the
//! experiment binaries that want to show lowered code.

use crate::program::{Function, Program};
use crate::visa::{Inst, Terminator};
use std::fmt::Write;

/// Renders a whole program.
pub fn dump_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, g) in p.globals.iter().enumerate() {
        let _ = writeln!(out, "global g{i} {} [{} x {}]", g.name, g.elems, g.ty);
    }
    for f in &p.functions {
        out.push_str(&dump_function(f));
    }
    out
}

/// Renders a single function.
pub fn dump_function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f.params.iter().map(|r| r.to_string()).collect();
    let _ = writeln!(
        out,
        "fn {}({}) regs={} frame={} {{",
        f.name,
        params.join(", "),
        f.num_regs,
        f.frame_words
    );
    for (id, b) in f.iter_blocks() {
        let _ = writeln!(out, "{id}:");
        for inst in &b.insts {
            let _ = writeln!(out, "    {}", dump_inst(inst));
        }
        let _ = writeln!(out, "    {}", dump_terminator(&b.term));
    }
    out.push_str("}\n");
    out
}

/// Renders one instruction.
pub fn dump_inst(inst: &Inst) -> String {
    match inst {
        Inst::Bin {
            op,
            ty,
            dst,
            lhs,
            rhs,
        } => format!("{dst} = {lhs} {op} {rhs} ({ty})"),
        Inst::Un { op, ty, dst, src } => format!("{dst} = {op} {src} ({ty})"),
        Inst::Mov { dst, src } => format!("{dst} = {src}"),
        Inst::Load { dst, addr, ty } => format!("{dst} = load {addr} ({ty})"),
        Inst::Store { src, addr, ty } => format!("store {src} -> {addr} ({ty})"),
        Inst::Call { func, args, dst } => {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            match dst {
                Some(d) => format!("{d} = call {func}({})", args.join(", ")),
                None => format!("call {func}({})", args.join(", ")),
            }
        }
        Inst::Print { src } => format!("print {src}"),
        Inst::Nop => "nop".to_string(),
    }
}

/// Renders one terminator.
pub fn dump_terminator(term: &Terminator) -> String {
    match term {
        Terminator::Jump(b) => format!("jump {b}"),
        Terminator::Branch {
            cond,
            taken,
            not_taken,
        } => {
            format!("branch {cond} ? {taken} : {not_taken}")
        }
        Terminator::Return(Some(v)) => format!("return {v}"),
        Terminator::Return(None) => "return".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Global, Program};
    use crate::types::Ty;
    use crate::visa::{Address, BinOp, Operand};
    use crate::{Function, GlobalId};

    #[test]
    fn dump_contains_every_piece() {
        let mut p = Program::new();
        p.add_global(Global::zeroed("buf", 8));
        let mut f = Function::new("main");
        let r0 = f.fresh_reg();
        let r1 = f.fresh_reg();
        f.blocks[0].insts = vec![
            Inst::Mov {
                dst: r0,
                src: Operand::ImmInt(2),
            },
            Inst::Bin {
                op: BinOp::Mul,
                ty: Ty::Int,
                dst: r1,
                lhs: r0.into(),
                rhs: Operand::ImmInt(3),
            },
            Inst::Load {
                dst: r0,
                addr: Address::global(GlobalId(0), 1),
                ty: Ty::Int,
            },
            Inst::Store {
                src: r1.into(),
                addr: Address::global(GlobalId(0), 0),
                ty: Ty::Int,
            },
            Inst::Print { src: r1.into() },
            Inst::Nop,
            Inst::Call {
                func: crate::FuncId(0),
                args: vec![],
                dst: Some(r0),
            },
        ];
        f.blocks[0].term = Terminator::Return(Some(r1.into()));
        p.add_function(f);
        let text = dump_program(&p);
        assert!(text.contains("global g0 buf"));
        assert!(text.contains("fn main"));
        assert!(text.contains("r1 = r0 * 3"));
        assert!(text.contains("load"));
        assert!(text.contains("store"));
        assert!(text.contains("print"));
        assert!(text.contains("nop"));
        assert!(text.contains("call"));
        assert!(text.contains("return r1"));
        // Display impl on Program goes through dump_program.
        assert_eq!(text, p.to_string());
    }

    #[test]
    fn terminator_rendering() {
        assert_eq!(
            dump_terminator(&Terminator::Jump(crate::BlockId(3))),
            "jump bb3"
        );
        assert_eq!(dump_terminator(&Terminator::Return(None)), "return");
        let b = Terminator::Branch {
            cond: crate::Reg(1),
            taken: crate::BlockId(2),
            not_taken: crate::BlockId(4),
        };
        assert_eq!(dump_terminator(&b), "branch r1 ? bb2 : bb4");
    }
}
