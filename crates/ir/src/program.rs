//! VISA program containers: [`Program`], [`Function`], [`Block`] and [`Global`].

use crate::types::{BlockId, FuncId, GlobalId, Reg, Ty, Value, WORD_BYTES};
use crate::visa::{Inst, MemBase, Operand, Terminator};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Initial contents of a global array.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum GlobalInit {
    /// All elements zero.
    #[default]
    Zero,
    /// Elements `0, 1, 2, ...` (useful for table-driven kernels).
    Iota,
    /// Explicit values; missing elements are zero.
    Values(Vec<Value>),
    /// Pseudo-random values from a fixed seed (deterministic).
    Random {
        /// Seed for the generator.
        seed: u64,
        /// Values are generated in `0..modulus` (integers) or `[0, 1)` scaled
        /// by `modulus` (floats).
        modulus: i64,
    },
}

/// A statically allocated global array of scalars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Global {
    /// Name (used by the C emitter and for debugging).
    pub name: String,
    /// Number of elements.
    pub elems: usize,
    /// Element type.
    pub ty: Ty,
    /// Initial contents.
    pub init: GlobalInit,
}

impl Global {
    /// Creates a zero-initialized integer array.
    pub fn zeroed(name: impl Into<String>, elems: usize) -> Self {
        Global {
            name: name.into(),
            elems,
            ty: Ty::Int,
            init: GlobalInit::Zero,
        }
    }

    /// Materializes the initial contents as a vector of values.
    pub fn initial_values(&self) -> Vec<Value> {
        match &self.init {
            GlobalInit::Zero => vec![Value::default(); self.elems],
            GlobalInit::Iota => (0..self.elems as i64)
                .map(|i| match self.ty {
                    Ty::Int => Value::Int(i),
                    Ty::Float => Value::Float(i as f64),
                })
                .collect(),
            GlobalInit::Values(vs) => {
                let mut out = vs.clone();
                out.resize(self.elems, Value::default());
                out.truncate(self.elems);
                out
            }
            GlobalInit::Random { seed, modulus } => {
                // xorshift64* keeps this deterministic and dependency-free.
                let mut state = seed.wrapping_mul(2685821657736338717).max(1);
                let m = (*modulus).max(1);
                (0..self.elems)
                    .map(|_| {
                        state ^= state >> 12;
                        state ^= state << 25;
                        state ^= state >> 27;
                        let v = state.wrapping_mul(2685821657736338717);
                        match self.ty {
                            Ty::Int => Value::Int((v % m as u64) as i64),
                            Ty::Float => {
                                Value::Float((v % 1_000_000) as f64 / 1_000_000.0 * m as f64)
                            }
                        }
                    })
                    .collect()
            }
        }
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Instructions in program order.
    pub insts: Vec<Inst>,
    /// Control transfer ending the block.
    pub term: Terminator,
}

impl Block {
    /// A block that just jumps to `target`.
    pub fn jump_to(target: BlockId) -> Self {
        Block {
            insts: Vec::new(),
            term: Terminator::Jump(target),
        }
    }
}

/// A function: a CFG of basic blocks over a private virtual register file and
/// stack frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// Entry block (by convention block 0, but kept explicit).
    pub entry: BlockId,
    /// Number of virtual registers used (all ids are `< num_regs`).
    pub num_regs: u32,
    /// Registers holding the parameters on entry.
    pub params: Vec<Reg>,
    /// Stack-frame size in words (O0 locals and spill slots).
    pub frame_words: u32,
}

impl Function {
    /// Creates an empty function with a single entry block returning nothing.
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            blocks: vec![Block {
                insts: Vec::new(),
                term: Terminator::Return(None),
            }],
            entry: BlockId(0),
            num_regs: 0,
            params: Vec::new(),
            frame_words: 0,
        }
    }

    /// Allocates a fresh virtual register.
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.num_regs);
        self.num_regs += 1;
        r
    }

    /// Allocates a fresh frame slot (word offset).
    pub fn fresh_frame_slot(&mut self) -> i64 {
        let s = self.frame_words as i64;
        self.frame_words += 1;
        s
    }

    /// Appends an empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            insts: Vec::new(),
            term: Terminator::Return(None),
        });
        id
    }

    /// Shared accessor for a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable accessor for a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterator over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total number of static instructions (excluding terminators).
    pub fn static_inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A whole program: functions, globals and a designated entry function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Functions, indexed by [`FuncId`].
    pub functions: Vec<Function>,
    /// Global arrays, indexed by [`GlobalId`].
    pub globals: Vec<Global>,
    /// Entry function (the `main` of the workload).
    pub entry: FuncId,
}

impl Program {
    /// Creates an empty program with no functions.
    pub fn new() -> Self {
        Program {
            functions: Vec::new(),
            globals: Vec::new(),
            entry: FuncId(0),
        }
    }

    /// Adds a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(f);
        id
    }

    /// Adds a global, returning its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(g);
        id
    }

    /// Shared accessor for a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable accessor for a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Shared accessor for a global.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Total static instruction count across all functions.
    pub fn static_inst_count(&self) -> usize {
        self.functions.iter().map(Function::static_inst_count).sum()
    }

    /// Computes the byte base address of each global in a flat address space.
    ///
    /// Globals are laid out consecutively starting at address 4096 (so that
    /// address 0 is never valid data), each aligned to a 64-byte boundary so
    /// that distinct arrays never share a cache line.
    pub fn memory_layout(&self) -> MemoryLayout {
        let mut bases = Vec::with_capacity(self.globals.len());
        let mut next: u64 = 4096;
        for g in &self.globals {
            bases.push(next);
            let size = (g.elems as u64) * WORD_BYTES;
            next += size.div_ceil(64) * 64 + 64;
        }
        MemoryLayout {
            global_bases: bases,
            frame_base: next.div_ceil(64) * 64 + 4096,
            frame_stride: 4096,
        }
    }

    /// Structural validation: every referenced block, register, function and
    /// global exists.  Returns a list of human-readable problems (empty when
    /// the program is well formed).
    pub fn validate(&self) -> Vec<String> {
        let mut errors = Vec::new();
        if self.functions.is_empty() {
            errors.push("program has no functions".to_string());
            return errors;
        }
        if self.entry.index() >= self.functions.len() {
            errors.push(format!("entry {} out of range", self.entry));
        }
        for (fi, f) in self.functions.iter().enumerate() {
            let fname = &f.name;
            if f.blocks.is_empty() {
                errors.push(format!("function {fname} has no blocks"));
                continue;
            }
            if f.entry.index() >= f.blocks.len() {
                errors.push(format!("function {fname}: entry {} out of range", f.entry));
            }
            for p in &f.params {
                if p.0 >= f.num_regs {
                    errors.push(format!("function {fname}: param {p} out of range"));
                }
            }
            for (bi, b) in f.blocks.iter().enumerate() {
                for succ in b.term.successors() {
                    if succ.index() >= f.blocks.len() {
                        errors.push(format!(
                            "function {fname} bb{bi}: successor {succ} out of range"
                        ));
                    }
                }
                let check_reg = |r: Reg, what: &str, errors: &mut Vec<String>| {
                    if r.0 >= f.num_regs {
                        errors.push(format!(
                            "function {fname} bb{bi}: {what} register {r} >= num_regs {}",
                            f.num_regs
                        ));
                    }
                };
                let check_operand = |op: &Operand, errors: &mut Vec<String>| {
                    if let Operand::Mem(a) = op {
                        if let MemBase::Global(g) = a.base {
                            if g.index() >= self.globals.len() {
                                errors.push(format!(
                                    "function {fname} bb{bi}: memory operand references unknown {g}"
                                ));
                            }
                        }
                    }
                };
                for (ii, inst) in b.insts.iter().enumerate() {
                    if let Some(d) = inst.def() {
                        check_reg(d, "def", &mut errors);
                    }
                    for u in inst.uses() {
                        check_reg(u, "use", &mut errors);
                    }
                    match inst {
                        Inst::Call { func, .. } => {
                            if func.index() >= self.functions.len() {
                                errors.push(format!(
                                    "function {fname} bb{bi} inst {ii}: call to unknown {func}"
                                ));
                            } else {
                                let callee = &self.functions[func.index()];
                                if let Inst::Call { args, .. } = inst {
                                    if args.len() != callee.params.len() {
                                        errors.push(format!(
                                            "function {fname} bb{bi} inst {ii}: call to {} with {} args, expected {}",
                                            callee.name,
                                            args.len(),
                                            callee.params.len()
                                        ));
                                    }
                                }
                            }
                        }
                        Inst::Load { addr, .. } | Inst::Store { addr, .. } => {
                            if let MemBase::Global(g) = addr.base {
                                if g.index() >= self.globals.len() {
                                    errors.push(format!(
                                        "function {fname} bb{bi} inst {ii}: unknown {g}"
                                    ));
                                }
                            }
                        }
                        _ => {}
                    }
                    match inst {
                        Inst::Bin { lhs, rhs, .. } => {
                            check_operand(lhs, &mut errors);
                            check_operand(rhs, &mut errors);
                        }
                        Inst::Un { src, .. } | Inst::Mov { src, .. } | Inst::Print { src } => {
                            check_operand(src, &mut errors)
                        }
                        _ => {}
                    }
                }
                for u in b.term.uses() {
                    if u.0 >= f.num_regs {
                        errors.push(format!(
                            "function {} bb{bi}: terminator register {u} >= num_regs {}",
                            self.functions[fi].name, f.num_regs
                        ));
                    }
                }
            }
        }
        // Duplicate function names break name-based lookup.
        let mut seen = HashMap::new();
        for f in &self.functions {
            *seen.entry(f.name.clone()).or_insert(0u32) += 1;
        }
        for (name, count) in seen {
            if count > 1 {
                errors.push(format!(
                    "duplicate function name {name} ({count} definitions)"
                ));
            }
        }
        errors
    }
}

impl Default for Program {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::dump_program(self))
    }
}

/// Byte-address layout of a program's data memory, used by the executor and
/// the cache simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryLayout {
    /// Base byte address of each global.
    pub global_bases: Vec<u64>,
    /// Base byte address of the first stack frame.
    pub frame_base: u64,
    /// Byte distance between consecutive call frames.
    pub frame_stride: u64,
}

impl MemoryLayout {
    /// Byte address of a word within a global.
    pub fn global_addr(&self, g: GlobalId, word: i64) -> u64 {
        self.global_bases[g.index()].wrapping_add((word as u64).wrapping_mul(WORD_BYTES))
    }

    /// Byte address of a frame slot at the given call depth.
    pub fn frame_addr(&self, depth: usize, word: i64) -> u64 {
        self.frame_base
            .wrapping_add(self.frame_stride.wrapping_mul(depth as u64))
            .wrapping_add((word as u64).wrapping_mul(WORD_BYTES))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visa::BinOp;

    fn tiny_program() -> Program {
        let mut p = Program::new();
        let mut f = Function::new("main");
        let r0 = f.fresh_reg();
        let r1 = f.fresh_reg();
        let g = GlobalId(0);
        f.blocks[0].insts = vec![
            Inst::Mov {
                dst: r0,
                src: Operand::ImmInt(1),
            },
            Inst::Bin {
                op: BinOp::Add,
                ty: Ty::Int,
                dst: r1,
                lhs: r0.into(),
                rhs: Operand::ImmInt(2),
            },
            Inst::Store {
                src: r1.into(),
                addr: crate::visa::Address::global(g, 0),
                ty: Ty::Int,
            },
        ];
        f.blocks[0].term = Terminator::Return(Some(r1.into()));
        p.add_global(Global::zeroed("buf", 16));
        p.add_function(f);
        p
    }

    #[test]
    fn valid_program_passes_validation() {
        let p = tiny_program();
        assert!(p.validate().is_empty(), "{:?}", p.validate());
        assert_eq!(p.static_inst_count(), 3);
        assert_eq!(p.function_by_name("main"), Some(FuncId(0)));
        assert_eq!(p.function_by_name("nope"), None);
    }

    #[test]
    fn validation_catches_bad_register() {
        let mut p = tiny_program();
        p.functions[0].blocks[0].insts.push(Inst::Mov {
            dst: Reg(99),
            src: Operand::ImmInt(0),
        });
        assert!(!p.validate().is_empty());
    }

    #[test]
    fn validation_catches_bad_successor() {
        let mut p = tiny_program();
        p.functions[0].blocks[0].term = Terminator::Jump(BlockId(42));
        assert!(p.validate().iter().any(|e| e.contains("successor")));
    }

    #[test]
    fn validation_catches_bad_call_arity() {
        let mut p = tiny_program();
        let mut callee = Function::new("callee");
        let pr = callee.fresh_reg();
        callee.params = vec![pr];
        callee.blocks[0].term = Terminator::Return(Some(pr.into()));
        let callee_id = p.add_function(callee);
        p.functions[0].blocks[0].insts.push(Inst::Call {
            func: callee_id,
            args: vec![],
            dst: None,
        });
        assert!(p.validate().iter().any(|e| e.contains("args")));
    }

    #[test]
    fn validation_catches_duplicate_names() {
        let mut p = tiny_program();
        p.add_function(Function::new("main"));
        assert!(p.validate().iter().any(|e| e.contains("duplicate")));
    }

    #[test]
    fn memory_layout_is_nonoverlapping_and_aligned() {
        let mut p = tiny_program();
        p.add_global(Global::zeroed("buf2", 100));
        let layout = p.memory_layout();
        assert_eq!(layout.global_bases.len(), 2);
        assert!(layout.global_bases[0].is_multiple_of(64));
        assert!(layout.global_bases[1] >= layout.global_bases[0] + 16 * WORD_BYTES);
        assert!(layout.frame_base > layout.global_bases[1]);
        assert_eq!(
            layout.global_addr(GlobalId(0), 2),
            layout.global_bases[0] + 8
        );
        assert!(layout.frame_addr(1, 0) > layout.frame_addr(0, 0));
    }

    #[test]
    fn global_initializers() {
        let z = Global::zeroed("z", 4);
        assert_eq!(z.initial_values(), vec![Value::Int(0); 4]);
        let iota = Global {
            name: "i".into(),
            elems: 3,
            ty: Ty::Int,
            init: GlobalInit::Iota,
        };
        assert_eq!(
            iota.initial_values(),
            vec![Value::Int(0), Value::Int(1), Value::Int(2)]
        );
        let vals = Global {
            name: "v".into(),
            elems: 3,
            ty: Ty::Int,
            init: GlobalInit::Values(vec![Value::Int(7)]),
        };
        assert_eq!(
            vals.initial_values(),
            vec![Value::Int(7), Value::Int(0), Value::Int(0)]
        );
        let r1 = Global {
            name: "r".into(),
            elems: 8,
            ty: Ty::Int,
            init: GlobalInit::Random {
                seed: 1,
                modulus: 100,
            },
        };
        let r2 = Global {
            name: "r".into(),
            elems: 8,
            ty: Ty::Int,
            init: GlobalInit::Random {
                seed: 1,
                modulus: 100,
            },
        };
        assert_eq!(
            r1.initial_values(),
            r2.initial_values(),
            "random init must be deterministic"
        );
        for v in r1.initial_values() {
            let x = v.as_int();
            assert!((0..100).contains(&x));
        }
    }

    #[test]
    fn fresh_allocation_helpers() {
        let mut f = Function::new("f");
        assert_eq!(f.fresh_reg(), Reg(0));
        assert_eq!(f.fresh_reg(), Reg(1));
        assert_eq!(f.fresh_frame_slot(), 0);
        assert_eq!(f.fresh_frame_slot(), 1);
        let b = f.add_block();
        assert_eq!(b, BlockId(1));
        assert_eq!(f.blocks.len(), 2);
    }
}
