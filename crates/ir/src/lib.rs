//! # bsg-ir — program representations for benchmark synthesis
//!
//! This crate provides the two program representations used throughout the
//! benchmark-synthesis workspace (a reproduction of *Van Ertvelde & Eeckhout,
//! "Benchmark Synthesis for Architecture and Compiler Exploration", IISWC
//! 2010*):
//!
//! * a C-like **high-level language** ([`hll`]) in which both the original
//!   workloads and the generated synthetic benchmark clones are expressed,
//!   together with a builder API ([`build`]) and a C source emitter
//!   ([`cemit`]); and
//! * a **virtual instruction-set architecture** ([`visa`]) with a
//!   control-flow-graph program container ([`program`]) that the compiler
//!   crate lowers the HLL into and that the microarchitecture simulators
//!   execute.
//!
//! The crate also contains the CFG analyses ([`cfg`]: dominators, natural
//! loops, reverse post-order) shared by the optimizing compiler and by the
//! SFGL profiler.
//!
//! # Example
//!
//! ```
//! use bsg_ir::build::FunctionBuilder;
//! use bsg_ir::hll::{BinOp, Expr, HllProgram};
//!
//! // Build `int main() { s = 0; for (i = 0; i < 10; i++) s = s + i; return s; }`
//! let mut f = FunctionBuilder::new("main");
//! f.assign_var("s", Expr::int(0));
//! f.for_loop("i", Expr::int(0), Expr::int(10), |b| {
//!     b.assign_var("s", Expr::bin(BinOp::Add, Expr::var("s"), Expr::var("i")));
//! });
//! f.ret(Some(Expr::var("s")));
//! let program = HllProgram::with_main(f.finish());
//! let c_source = bsg_ir::cemit::emit_c(&program);
//! assert!(c_source.contains("for ("));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod canon;
pub mod cemit;
pub mod cfg;
pub mod codec;
pub mod eval;
pub mod hll;
pub mod pretty;
pub mod program;
pub mod types;
pub mod visa;

pub use program::{Block, Function, Global, Program};
pub use types::{BlockId, FuncId, GlobalId, Reg, Ty, Value};
pub use visa::{Address, BinOp, Inst, InstClass, MemBase, Operand, Terminator, UnOp};
