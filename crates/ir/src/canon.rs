//! Canonical byte encoding for content addressing.
//!
//! The artifact store (`bsg-runtime`) keys compiled programs, profiles and
//! synthesis results by a structural hash of their source.  Hashing a
//! `Debug` rendering — the original scheme — is not injective: every `f64`
//! NaN payload renders as the three characters `NaN`, so two sources that
//! differ only in NaN bits share one rendering (and therefore one cache
//! entry, silently serving the wrong artifact).  String-ish renderings are
//! also only as unambiguous as the formatter's escaping happens to be.
//!
//! [`Canon`] instead emits an explicit, self-delimiting byte encoding:
//!
//! * every enum variant writes a **discriminant byte** before its fields;
//! * every variable-length collection (strings, vectors, maps) writes its
//!   **length as a little-endian `u64` prefix** before its elements;
//! * scalars write their fixed-width little-endian bytes; floats write
//!   `to_bits()`, so every NaN payload, signed zero and subnormal is
//!   distinct.
//!
//! Two values of the same type produce the same byte stream iff they are
//! structurally equal, so a 128-bit hash of the stream is a sound content
//! address (up to hash collisions).  The encoding is independent of
//! formatter internals and stable across processes and platforms.

use crate::hll::{Expr, HllFunction, HllGlobal, HllProgram, LValue, Stmt};
use crate::program::{Block, Function, Global, GlobalInit, Program};
use crate::types::{BlockId, FuncId, GlobalId, Reg, Ty, Value};
use crate::visa::{
    Address, BinOp, Inst, InstClass, MemBase, Operand, OperandKind, Terminator, UnOp,
};
use std::collections::{BTreeMap, BTreeSet};

/// Byte sink for the canonical encoding (implemented by hashers).
pub trait CanonWrite {
    /// Consumes the next chunk of the canonical byte stream.
    fn write(&mut self, bytes: &[u8]);
}

/// A `Vec<u8>` sink, convenient for tests and debugging.
impl CanonWrite for Vec<u8> {
    fn write(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

/// Types with a canonical, injective byte encoding (see the module docs).
pub trait Canon {
    /// Writes `self`'s canonical bytes to `w`.
    fn canon(&self, w: &mut dyn CanonWrite);
}

/// Writes a length prefix (little-endian `u64`).
pub fn put_len(w: &mut dyn CanonWrite, len: usize) {
    w.write(&(len as u64).to_le_bytes());
}

macro_rules! impl_canon_le {
    ($($t:ty),*) => {$(
        impl Canon for $t {
            fn canon(&self, w: &mut dyn CanonWrite) {
                w.write(&self.to_le_bytes());
            }
        }
    )*};
}

impl_canon_le!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Canon for usize {
    fn canon(&self, w: &mut dyn CanonWrite) {
        w.write(&(*self as u64).to_le_bytes());
    }
}

impl Canon for bool {
    fn canon(&self, w: &mut dyn CanonWrite) {
        w.write(&[u8::from(*self)]);
    }
}

impl Canon for f64 {
    fn canon(&self, w: &mut dyn CanonWrite) {
        // to_bits distinguishes every NaN payload and -0.0 from 0.0 — the
        // injectivity holes of the Debug rendering.
        w.write(&self.to_bits().to_le_bytes());
    }
}

impl Canon for str {
    fn canon(&self, w: &mut dyn CanonWrite) {
        put_len(w, self.len());
        w.write(self.as_bytes());
    }
}

impl Canon for String {
    fn canon(&self, w: &mut dyn CanonWrite) {
        self.as_str().canon(w);
    }
}

impl<T: Canon> Canon for Option<T> {
    fn canon(&self, w: &mut dyn CanonWrite) {
        match self {
            None => w.write(&[0]),
            Some(v) => {
                w.write(&[1]);
                v.canon(w);
            }
        }
    }
}

impl<T: Canon> Canon for [T] {
    fn canon(&self, w: &mut dyn CanonWrite) {
        put_len(w, self.len());
        for v in self {
            v.canon(w);
        }
    }
}

impl<T: Canon> Canon for Vec<T> {
    fn canon(&self, w: &mut dyn CanonWrite) {
        self.as_slice().canon(w);
    }
}

impl<T: Canon + ?Sized> Canon for &T {
    fn canon(&self, w: &mut dyn CanonWrite) {
        (**self).canon(w);
    }
}

impl<T: Canon> Canon for Box<T> {
    fn canon(&self, w: &mut dyn CanonWrite) {
        (**self).canon(w);
    }
}

impl<A: Canon, B: Canon> Canon for (A, B) {
    fn canon(&self, w: &mut dyn CanonWrite) {
        self.0.canon(w);
        self.1.canon(w);
    }
}

impl<A: Canon, B: Canon, C: Canon> Canon for (A, B, C) {
    fn canon(&self, w: &mut dyn CanonWrite) {
        self.0.canon(w);
        self.1.canon(w);
        self.2.canon(w);
    }
}

impl<A: Canon, B: Canon, C: Canon, D: Canon> Canon for (A, B, C, D) {
    fn canon(&self, w: &mut dyn CanonWrite) {
        self.0.canon(w);
        self.1.canon(w);
        self.2.canon(w);
        self.3.canon(w);
    }
}

impl<K: Canon, V: Canon> Canon for BTreeMap<K, V> {
    fn canon(&self, w: &mut dyn CanonWrite) {
        put_len(w, self.len());
        for (k, v) in self {
            k.canon(w);
            v.canon(w);
        }
    }
}

impl<T: Canon> Canon for BTreeSet<T> {
    fn canon(&self, w: &mut dyn CanonWrite) {
        put_len(w, self.len());
        for v in self {
            v.canon(w);
        }
    }
}

impl Canon for Ty {
    fn canon(&self, w: &mut dyn CanonWrite) {
        w.write(&[match self {
            Ty::Int => 0,
            Ty::Float => 1,
        }]);
    }
}

impl Canon for Value {
    fn canon(&self, w: &mut dyn CanonWrite) {
        match self {
            Value::Int(v) => {
                w.write(&[0]);
                v.canon(w);
            }
            Value::Float(v) => {
                w.write(&[1]);
                v.canon(w);
            }
        }
    }
}

impl Canon for BinOp {
    fn canon(&self, w: &mut dyn CanonWrite) {
        w.write(&[match self {
            BinOp::Add => 0,
            BinOp::Sub => 1,
            BinOp::Mul => 2,
            BinOp::Div => 3,
            BinOp::Rem => 4,
            BinOp::And => 5,
            BinOp::Or => 6,
            BinOp::Xor => 7,
            BinOp::Shl => 8,
            BinOp::Shr => 9,
            BinOp::Lt => 10,
            BinOp::Le => 11,
            BinOp::Gt => 12,
            BinOp::Ge => 13,
            BinOp::Eq => 14,
            BinOp::Ne => 15,
        }]);
    }
}

impl Canon for UnOp {
    fn canon(&self, w: &mut dyn CanonWrite) {
        w.write(&[match self {
            UnOp::Neg => 0,
            UnOp::Not => 1,
            UnOp::LogicalNot => 2,
            UnOp::ToFloat => 3,
            UnOp::ToInt => 4,
            UnOp::Sqrt => 5,
            UnOp::Sin => 6,
            UnOp::Cos => 7,
            UnOp::Log => 8,
            UnOp::Abs => 9,
        }]);
    }
}

impl Canon for InstClass {
    fn canon(&self, w: &mut dyn CanonWrite) {
        w.write(&[self.index() as u8]);
    }
}

impl Canon for OperandKind {
    fn canon(&self, w: &mut dyn CanonWrite) {
        w.write(&[match self {
            OperandKind::Register => 0,
            OperandKind::Constant => 1,
            OperandKind::Memory => 2,
        }]);
    }
}

impl Canon for Expr {
    fn canon(&self, w: &mut dyn CanonWrite) {
        match self {
            Expr::Int(v) => {
                w.write(&[0]);
                v.canon(w);
            }
            Expr::Float(v) => {
                w.write(&[1]);
                v.canon(w);
            }
            Expr::Var(n) => {
                w.write(&[2]);
                n.canon(w);
            }
            Expr::Index(n, idx) => {
                w.write(&[3]);
                n.canon(w);
                idx.canon(w);
            }
            Expr::Bin(op, a, b) => {
                w.write(&[4]);
                op.canon(w);
                a.canon(w);
                b.canon(w);
            }
            Expr::Un(op, a) => {
                w.write(&[5]);
                op.canon(w);
                a.canon(w);
            }
            Expr::Call(n, args) => {
                w.write(&[6]);
                n.canon(w);
                args.canon(w);
            }
        }
    }
}

impl Canon for LValue {
    fn canon(&self, w: &mut dyn CanonWrite) {
        match self {
            LValue::Var(n) => {
                w.write(&[0]);
                n.canon(w);
            }
            LValue::Index(n, idx) => {
                w.write(&[1]);
                n.canon(w);
                idx.canon(w);
            }
        }
    }
}

impl Canon for Stmt {
    fn canon(&self, w: &mut dyn CanonWrite) {
        match self {
            Stmt::Assign { target, value } => {
                w.write(&[0]);
                target.canon(w);
                value.canon(w);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                w.write(&[1]);
                cond.canon(w);
                then_branch.canon(w);
                else_branch.canon(w);
            }
            Stmt::While { cond, body } => {
                w.write(&[2]);
                cond.canon(w);
                body.canon(w);
            }
            Stmt::For {
                var,
                init,
                limit,
                step,
                body,
            } => {
                w.write(&[3]);
                var.canon(w);
                init.canon(w);
                limit.canon(w);
                step.canon(w);
                body.canon(w);
            }
            Stmt::Call { name, args, dst } => {
                w.write(&[4]);
                name.canon(w);
                args.canon(w);
                dst.canon(w);
            }
            Stmt::Return(v) => {
                w.write(&[5]);
                v.canon(w);
            }
            Stmt::Print(e) => {
                w.write(&[6]);
                e.canon(w);
            }
            Stmt::Break => w.write(&[7]),
            Stmt::Continue => w.write(&[8]),
        }
    }
}

impl Canon for HllGlobal {
    fn canon(&self, w: &mut dyn CanonWrite) {
        self.name.canon(w);
        self.elems.canon(w);
        self.ty.canon(w);
        self.init.canon(w);
        self.iota.canon(w);
    }
}

impl Canon for HllFunction {
    fn canon(&self, w: &mut dyn CanonWrite) {
        self.name.canon(w);
        self.params.canon(w);
        self.float_vars.canon(w);
        self.body.canon(w);
    }
}

impl Canon for HllProgram {
    fn canon(&self, w: &mut dyn CanonWrite) {
        self.globals.canon(w);
        self.functions.canon(w);
        self.entry.canon(w);
    }
}

// ---------------------------------------------------------------------------
// VISA programs (the compiled form, persisted by the disk artifact cache).
// ---------------------------------------------------------------------------

macro_rules! impl_canon_id {
    ($($t:ty),*) => {$(
        impl Canon for $t {
            fn canon(&self, w: &mut dyn CanonWrite) {
                self.0.canon(w);
            }
        }
    )*};
}

impl_canon_id!(Reg, BlockId, FuncId, GlobalId);

impl Canon for MemBase {
    fn canon(&self, w: &mut dyn CanonWrite) {
        match self {
            MemBase::Global(g) => {
                w.write(&[0]);
                g.canon(w);
            }
            MemBase::Frame => w.write(&[1]),
        }
    }
}

impl Canon for Address {
    fn canon(&self, w: &mut dyn CanonWrite) {
        self.base.canon(w);
        self.offset.canon(w);
        self.index.canon(w);
        self.scale.canon(w);
    }
}

impl Canon for Operand {
    fn canon(&self, w: &mut dyn CanonWrite) {
        match self {
            Operand::Reg(r) => {
                w.write(&[0]);
                r.canon(w);
            }
            Operand::ImmInt(v) => {
                w.write(&[1]);
                v.canon(w);
            }
            Operand::ImmFloat(v) => {
                w.write(&[2]);
                v.canon(w);
            }
            Operand::Mem(a) => {
                w.write(&[3]);
                a.canon(w);
            }
        }
    }
}

impl Canon for Inst {
    fn canon(&self, w: &mut dyn CanonWrite) {
        match self {
            Inst::Bin {
                op,
                ty,
                dst,
                lhs,
                rhs,
            } => {
                w.write(&[0]);
                op.canon(w);
                ty.canon(w);
                dst.canon(w);
                lhs.canon(w);
                rhs.canon(w);
            }
            Inst::Un { op, ty, dst, src } => {
                w.write(&[1]);
                op.canon(w);
                ty.canon(w);
                dst.canon(w);
                src.canon(w);
            }
            Inst::Mov { dst, src } => {
                w.write(&[2]);
                dst.canon(w);
                src.canon(w);
            }
            Inst::Load { dst, addr, ty } => {
                w.write(&[3]);
                dst.canon(w);
                addr.canon(w);
                ty.canon(w);
            }
            Inst::Store { src, addr, ty } => {
                w.write(&[4]);
                src.canon(w);
                addr.canon(w);
                ty.canon(w);
            }
            Inst::Call { func, args, dst } => {
                w.write(&[5]);
                func.canon(w);
                args.canon(w);
                dst.canon(w);
            }
            Inst::Print { src } => {
                w.write(&[6]);
                src.canon(w);
            }
            Inst::Nop => w.write(&[7]),
        }
    }
}

impl Canon for Terminator {
    fn canon(&self, w: &mut dyn CanonWrite) {
        match self {
            Terminator::Jump(b) => {
                w.write(&[0]);
                b.canon(w);
            }
            Terminator::Branch {
                cond,
                taken,
                not_taken,
            } => {
                w.write(&[1]);
                cond.canon(w);
                taken.canon(w);
                not_taken.canon(w);
            }
            Terminator::Return(v) => {
                w.write(&[2]);
                v.canon(w);
            }
        }
    }
}

impl Canon for GlobalInit {
    fn canon(&self, w: &mut dyn CanonWrite) {
        match self {
            GlobalInit::Zero => w.write(&[0]),
            GlobalInit::Iota => w.write(&[1]),
            GlobalInit::Values(v) => {
                w.write(&[2]);
                v.canon(w);
            }
            GlobalInit::Random { seed, modulus } => {
                w.write(&[3]);
                seed.canon(w);
                modulus.canon(w);
            }
        }
    }
}

impl Canon for Global {
    fn canon(&self, w: &mut dyn CanonWrite) {
        self.name.canon(w);
        self.elems.canon(w);
        self.ty.canon(w);
        self.init.canon(w);
    }
}

impl Canon for Block {
    fn canon(&self, w: &mut dyn CanonWrite) {
        self.insts.canon(w);
        self.term.canon(w);
    }
}

impl Canon for Function {
    fn canon(&self, w: &mut dyn CanonWrite) {
        self.name.canon(w);
        self.blocks.canon(w);
        self.entry.canon(w);
        self.num_regs.canon(w);
        self.params.canon(w);
        self.frame_words.canon(w);
    }
}

impl Canon for Program {
    fn canon(&self, w: &mut dyn CanonWrite) {
        self.functions.canon(w);
        self.globals.canon(w);
        self.entry.canon(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes<T: Canon + ?Sized>(v: &T) -> Vec<u8> {
        let mut out = Vec::new();
        v.canon(&mut out);
        out
    }

    #[test]
    fn scalars_are_fixed_width_and_strings_length_prefixed() {
        assert_eq!(bytes(&1u64).len(), 8);
        assert_eq!(bytes(&(-1i64)).len(), 8);
        assert_eq!(bytes(&1.5f64).len(), 8);
        assert_eq!(bytes("ab").len(), 8 + 2);
        assert_ne!(bytes("ab"), bytes("ba"));
    }

    #[test]
    fn nan_payloads_are_distinct() {
        let a = f64::from_bits(0x7ff8_0000_0000_0000);
        let b = f64::from_bits(0x7ff8_0000_0000_0001);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "Debug collides");
        assert_ne!(bytes(&a), bytes(&b), "canonical encoding must not");
    }

    #[test]
    fn adjacent_strings_do_not_merge() {
        // Without length prefixes, ("ab", "c") and ("a", "bc") would emit
        // identical byte streams.
        let x = (String::from("ab"), String::from("c"));
        let y = (String::from("a"), String::from("bc"));
        assert_ne!(bytes(&x), bytes(&y));
    }

    #[test]
    fn enum_variants_are_discriminated() {
        assert_ne!(bytes(&Expr::Int(0)), bytes(&Expr::Float(0.0)));
        assert_ne!(bytes(&Value::Int(0)), bytes(&Value::Float(0.0)));
        assert_ne!(bytes(&Stmt::Break), bytes(&Stmt::Continue));
    }

    #[test]
    fn programs_encode_structurally() {
        let mut p = HllProgram::new();
        p.add_global(HllGlobal::zeroed("g", 4));
        let mut f = HllFunction::new("main");
        f.body.push(Stmt::Return(Some(Expr::int(1))));
        p.add_function(f);
        assert_eq!(bytes(&p), bytes(&p.clone()));
        let mut q = p.clone();
        q.functions[0].body[0] = Stmt::Return(Some(Expr::int(2)));
        assert_ne!(bytes(&p), bytes(&q));
    }
}
